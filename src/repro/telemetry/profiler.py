"""Host-side profiling of the simulator itself.

The other telemetry modules observe *simulated* time; this one observes
*wall-clock* time spent by the host Python process, which is what any
future performance PR needs as its baseline. Two tools:

* :class:`PhaseTimer` — coarse wall-clock phase accounting (build /
  simulate / export), cheap enough to always run under ``repro trace``;
* :class:`RunProfiler` — a ``cProfile`` wrapper that profiles a callable
  and reports the hottest functions by cumulative time.
"""

from __future__ import annotations

import cProfile
import io
import pstats
import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Optional, TypeVar

T = TypeVar("T")


class PhaseTimer:
    """Named wall-clock phases; nested use is additive per name."""

    def __init__(self) -> None:
        self._order: list[str] = []
        self._seconds: dict[str, float] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            if name not in self._seconds:
                self._order.append(name)
                self._seconds[name] = 0.0
            self._seconds[name] += elapsed

    def seconds(self, name: str) -> float:
        return self._seconds.get(name, 0.0)

    def report(self) -> dict[str, float]:
        """Phase -> seconds, in first-use order."""
        return {name: self._seconds[name] for name in self._order}

    def format_report(self) -> str:
        total = sum(self._seconds.values())
        lines = ["phase timings (wall clock):"]
        for name in self._order:
            secs = self._seconds[name]
            share = 100.0 * secs / total if total else 0.0
            lines.append(f"  {name:<20} {secs:8.3f}s  {share:5.1f}%")
        lines.append(f"  {'total':<20} {total:8.3f}s")
        return "\n".join(lines)


class RunProfiler:
    """Profile one callable with ``cProfile`` and summarise the result."""

    def __init__(self) -> None:
        self._profile: Optional[cProfile.Profile] = None

    def run(self, fn: Callable[..., T], *args: Any, **kwargs: Any) -> T:
        profile = cProfile.Profile()
        profile.enable()
        try:
            return fn(*args, **kwargs)
        finally:
            profile.disable()
            self._profile = profile

    def _stats(self) -> pstats.Stats:
        if self._profile is None:
            raise ValueError("RunProfiler.run() has not been called")
        return pstats.Stats(self._profile)

    def top_functions(self, limit: int = 15) -> list[dict[str, Any]]:
        """Hottest functions by cumulative time, JSON-ready."""
        stats = self._stats()
        rows: list[dict[str, Any]] = []
        for func, data in stats.stats.items():  # type: ignore[attr-defined]
            filename, lineno, name = func
            calls, _prim_calls, total_time, cum_time, _callers = data
            rows.append(
                {
                    "function": f"{filename}:{lineno}({name})",
                    "calls": calls,
                    "total_time": total_time,
                    "cumulative_time": cum_time,
                }
            )
        rows.sort(key=lambda r: (-r["cumulative_time"], r["function"]))
        return rows[:limit]

    def format_report(self, limit: int = 15) -> str:
        if self._profile is None:
            raise ValueError("RunProfiler.run() has not been called")
        buffer = io.StringIO()
        stats = pstats.Stats(self._profile, stream=buffer)
        stats.sort_stats("cumulative").print_stats(limit)
        return buffer.getvalue()

    def dump(self, path: str) -> None:
        """Write raw profile data (``snakeviz``/``pstats`` compatible)."""
        if self._profile is None:
            raise ValueError("RunProfiler.run() has not been called")
        self._profile.dump_stats(path)
