"""The telemetry hub: one object wiring every instrumentation point.

Construct a :class:`TelemetryHub`, pass it to
:class:`repro.sm.simulator.GPUSimulator` (or ``simulate(...,
telemetry=hub)``), and the simulator binds it at build time: each SM gets
an :class:`SMTelemetry` proxy (shared with its scheduler, prefetcher and
L1), the shared L2 and DRAM get the hub itself, and the stall engine and
interval collector are created against the run's stats.

The overhead contract: a simulator built *without* a hub carries
``telemetry is None`` attributes, so instrumented code paths pay exactly
one attribute load and one identity test per hook — no event objects, no
dispatch. Event construction is additionally gated on ``tel.events``
(are there any event sinks?) so a stalls-only run skips it too.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from repro.telemetry.export import ChromeTraceBuilder, TelemetrySink
from repro.telemetry.intervals import DEFAULT_WINDOW, IntervalCollector
from repro.telemetry.stalls import StallEngine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sm.simulator import GPUSimulator
    from repro.stats.counters import SimStats


class SMTelemetry:
    """Per-SM view of the hub, handed to one SM's pipeline + engines.

    Slotted and tiny: the pipeline calls these methods on hot paths, so
    they do nothing but forward with the SM id pre-bound.
    """

    __slots__ = ("hub", "sm_id", "stalls", "events")

    def __init__(self, hub: "TelemetryHub", sm_id: int, stalls: StallEngine):
        self.hub = hub
        self.sm_id = sm_id
        self.stalls = stalls
        #: Mirror of ``hub.events``: event construction is worth it.
        self.events = hub.events

    def emit(self, event: Any) -> None:
        self.hub.emit(event)

    def on_issue(self) -> None:
        self.stalls.on_issue(self.sm_id)

    def on_idle(self, sm: Any, now: int, mshr_gated: int) -> None:
        self.stalls.on_idle(self.sm_id, sm, now, mshr_gated)

    def on_throttle(self, now: int) -> None:
        self.stalls.on_throttle(self.sm_id, now)


class TelemetryHub:  # simlint: boundary[epoch-serialized telemetry fan-in]
    """Aggregates the stall engine, interval collector, and sinks."""

    def __init__(self, window: int = DEFAULT_WINDOW, trace: bool = False):
        self.window = window
        self.trace: Optional[ChromeTraceBuilder] = (
            ChromeTraceBuilder() if trace else None
        )
        self._event_sinks: list[TelemetrySink] = []
        self._interval_sinks: list[TelemetrySink] = []
        if self.trace is not None:
            self._event_sinks.append(self.trace)
            self._interval_sinks.append(self.trace)
        self.events = bool(self._event_sinks)
        self.events_emitted = 0
        self.num_sms = 0
        self.stalls: Optional[StallEngine] = None
        self.intervals: Optional[IntervalCollector] = None
        self._finished = False

    # ------------------------------------------------------------------
    # Configuration (before bind)
    # ------------------------------------------------------------------

    def add_event_sink(self, sink: TelemetrySink) -> None:
        self._event_sinks.append(sink)
        self.events = True

    def add_interval_sink(self, sink: TelemetrySink) -> None:
        self._interval_sinks.append(sink)
        if self.intervals is not None:
            self.intervals.add_sink(sink)

    # ------------------------------------------------------------------
    # Binding (called by GPUSimulator.__init__)
    # ------------------------------------------------------------------

    def bind(self, simulator: "GPUSimulator") -> None:
        """Wire this hub into a freshly built simulator."""
        if self.stalls is not None:
            raise ValueError(
                "a TelemetryHub binds to exactly one simulator; build a new "
                "hub per run"
            )
        subsystem = simulator.subsystem
        self.num_sms = len(simulator.sms)
        self.stalls = StallEngine(self.num_sms, subsystem.dram)
        self.intervals = IntervalCollector(
            simulator.stats,
            subsystem.l1s,
            window=self.window,
            num_sms=self.num_sms,
            stalls=self.stalls,
        )
        for sink in self._interval_sinks:
            self.intervals.add_sink(sink)
        if self.trace is not None and simulator.sms:
            self.trace.set_topology(self.num_sms, len(simulator.sms[0].warps))
        for sm in simulator.sms:
            sm.attach_telemetry(SMTelemetry(self, sm.sm_id, self.stalls))
        subsystem.l2.telemetry = self
        subsystem.dram.telemetry = self

    def bind_shard(
        self,
        *,
        num_sms: int,
        warps_per_sm: int,
        dram: Any,
        stats: Any,
        l1s: list[Any],
    ) -> None:
        """Wire this hub as the parent-side merge target of a sharded run.

        The shard engine owns no ``GPUSimulator``: lanes record into
        per-lane buffers and the
        :class:`~repro.shard.telemetry.ShardTelemetryCoordinator` feeds
        the merge through this hub. ``stats``/``l1s`` are the
        coordinator's barrier-updated view objects, exposing exactly the
        attributes the interval collector reads.
        """
        if self.stalls is not None:
            raise ValueError(
                "a TelemetryHub binds to exactly one simulator; build a new "
                "hub per run"
            )
        self.num_sms = num_sms
        self.stalls = StallEngine(num_sms, dram)
        self.intervals = IntervalCollector(
            stats, l1s, window=self.window, num_sms=num_sms, stalls=self.stalls
        )
        for sink in self._interval_sinks:
            self.intervals.add_sink(sink)
        if self.trace is not None:
            self.trace.set_topology(num_sms, warps_per_sm)

    def unbind(self) -> None:
        """Detach from a failed sharded attempt so the hub can rebind.

        A lost shard worker triggers a retry (or serial degradation); the
        replacement run must start from clean telemetry, so this drops
        the stall/interval state and resets every sink that buffered or
        wrote partial output.
        """
        self.num_sms = 0
        self.stalls = None
        self.intervals = None
        self.events_emitted = 0
        self._finished = False
        reset: list[TelemetrySink] = []
        for sink in self._event_sinks + self._interval_sinks:
            if any(sink is done for done in reset):
                continue
            reset.append(sink)
            sink.reset()

    # ------------------------------------------------------------------
    # Run-time hooks (called by the simulator main loop)
    # ------------------------------------------------------------------

    def emit(self, event: Any) -> None:
        self.events_emitted += 1
        for sink in self._event_sinks:
            sink.on_event(event)

    def on_tick(self, now: int) -> None:
        assert self.intervals is not None
        self.intervals.on_tick(now)

    def on_skip(self, skipped: int) -> None:
        assert self.stalls is not None
        self.stalls.on_skip(skipped)

    def finish(self, stats: "SimStats") -> None:
        """The run completed; flush the last window and close sinks."""
        if self._finished:
            return
        self._finished = True
        if self.intervals is not None:
            self.intervals.finish(stats.cycles)
        closed: list[TelemetrySink] = []
        for sink in self._event_sinks + self._interval_sinks:
            if any(sink is done for done in closed):
                continue  # e.g. the trace builder sits on both channels
            closed.append(sink)
            sink.finish(stats.cycles)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def stall_report(self, stats: "SimStats") -> dict[str, Any]:
        assert self.stalls is not None
        return self.stalls.report(stats, self.num_sms)

    def reconcile(self, stats: "SimStats") -> dict[str, Any]:
        """Stall report, with the SimStats identities enforced."""
        assert self.stalls is not None
        return self.stalls.reconcile(stats, self.num_sms)

    def stall_summary(self, stats: "SimStats") -> dict[str, Any]:
        """Compact reconciled stall summary for registry records.

        The full report carries the reconciliation proof; registry records
        only need the attribution itself plus the dominant cause, so this
        is what ``repro run``/``repro sweep`` embed under ``stalls``.
        """
        report = self.reconcile(stats)
        by_cause = {k: v for k, v in report["by_cause"].items() if v}
        top_cause = max(by_cause, key=by_cause.__getitem__) if by_cause else None
        total = report["stall_cycles"] or 1
        return {
            "by_cause": by_cause,
            "issue_cycles": report["issue_cycles"],
            "stall_cycles": report["stall_cycles"],
            "top_cause": top_cause,
            "top_share": (by_cause[top_cause] / total) if top_cause else 0.0,
        }
