"""Telemetry sinks and exporters.

Sinks receive telemetry from two channels: discrete events (one
:class:`~repro.telemetry.events.TelemetryEvent` per ``on_event``) and
interval records (one windowed-metrics dict per ``on_interval``; see
:mod:`repro.telemetry.intervals`). The hub fans both out; a sink
implements whichever it cares about.

The flagship exporter is :class:`ChromeTraceBuilder`, which renders a run
as Chrome trace-event JSON — load the file in ``chrome://tracing`` or
https://ui.perfetto.dev. Each SM becomes a process row, each warp a
thread row; issued instructions are duration slices (a load's slice
spans issue to last-fill wake-up), per-static-load flow arrows connect
dynamic executions of the same load PC, and the interval metrics become
counter tracks. Timestamps are simulated cycles presented as
microseconds (the trace format's native unit).

All sinks pickle: file-backed sinks drop their OS handle on
``__getstate__`` and lazily reopen in append mode, so a checkpointed
simulator with live telemetry can be snapshotted and resumed.
"""

from __future__ import annotations

import json
import sys
import time
from typing import Any, Optional, TextIO

from repro.telemetry.intervals import INTERVAL_METRICS

#: ``ph`` values the validator accepts (the subset this exporter emits).
_ALLOWED_PHASES = ("B", "E", "X", "i", "s", "t", "C", "M")


class TelemetrySink:
    """Base sink: override the channels you consume."""

    def on_event(self, event: Any) -> None:
        pass

    def on_interval(self, record: dict[str, Any]) -> None:
        pass

    def finish(self, final_cycle: int) -> None:
        """The run completed at ``final_cycle``; flush and close."""

    def reset(self) -> None:
        """Drop partial output from a failed attempt (shard retry path)."""


class InMemorySink(TelemetrySink):
    """Buffers everything; the test suite's window into a run."""

    def __init__(self) -> None:
        self.events: list[Any] = []
        self.intervals: list[dict[str, Any]] = []
        self.final_cycle: Optional[int] = None

    def reset(self) -> None:
        self.events.clear()
        self.intervals.clear()
        self.final_cycle = None

    def on_event(self, event: Any) -> None:
        self.events.append(event)

    def on_interval(self, record: dict[str, Any]) -> None:
        self.intervals.append(record)

    def finish(self, final_cycle: int) -> None:
        self.final_cycle = final_cycle

    def events_of_kind(self, kind: str) -> list[Any]:
        return [e for e in self.events if type(e).kind == kind]


class IntervalJSONLWriter(TelemetrySink):
    """Streams interval records to a JSONL file, one object per line."""

    def __init__(self, path: str):
        self.path = path
        self.records_written = 0
        self._fh: Optional[TextIO] = None

    def on_interval(self, record: dict[str, Any]) -> None:
        if self._fh is None:
            # Lazy open (append mode) so a restored checkpoint continues
            # the same file instead of truncating it.
            self._fh = open(self.path, "a", encoding="utf-8")
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self.records_written += 1

    def finish(self, final_cycle: int) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def reset(self) -> None:
        """Discard records from a failed sharded attempt (truncate)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        if self.records_written:
            open(self.path, "w", encoding="utf-8").close()
            self.records_written = 0

    def __getstate__(self) -> dict[str, Any]:
        state = dict(self.__dict__)
        state["_fh"] = None
        return state


class HeartbeatSink(TelemetrySink):
    """Periodic progress line on a live run (one per interval window).

    Reports simulated cycles, host throughput (cycles/s of wall time),
    windowed simulated IPC, and progress against the cycle budget. Driven
    by the interval window, so the cadence is in *simulated* time — a
    memory-bound phase that fast-forwards prints faster, which is itself
    informative.
    """

    def __init__(
        self,
        cycle_budget: int = 0,
        stream: Optional[TextIO] = None,
    ):
        self._budget = cycle_budget
        self._stream = stream
        self._last_wall: Optional[float] = None
        self._last_cycle = 0
        self.lines_printed = 0

    def on_interval(self, record: dict[str, Any]) -> None:
        now_wall = time.monotonic()
        end = record["cycle_end"]
        rate = ""
        if self._last_wall is not None:
            elapsed = now_wall - self._last_wall
            if elapsed > 0:
                cps = (end - self._last_cycle) / elapsed
                rate = f" | {cps / 1e3:,.0f} kcyc/s"
        self._last_wall = now_wall
        self._last_cycle = end
        budget = ""
        if self._budget:
            budget = f" | {100.0 * end / self._budget:.1f}% of budget"
        line = (
            f"[telemetry] cycle {end:,} | IPC {record['ipc']:.3f} "
            f"(cum {record['ipc_cum']:.3f}){rate}{budget}"
        )
        print(line, file=self._stream if self._stream is not None else sys.stderr)
        self.lines_printed += 1

    def __getstate__(self) -> dict[str, Any]:
        state = dict(self.__dict__)
        # A custom stream (tests) and the wall-clock anchor don't restore.
        state["_stream"] = None
        state["_last_wall"] = None
        return state


class ChromeTraceBuilder(TelemetrySink):
    """Builds a ``chrome://tracing`` / Perfetto trace from the event stream."""

    def __init__(self) -> None:
        self._trace_events: list[dict[str, Any]] = []
        #: (sm, warp) -> cycle of the load slice currently open on that row.
        self._open_loads: dict[tuple[int, int], int] = {}
        #: Static-load PCs that already emitted their flow-start.
        self._flow_started: dict[int, bool] = {}
        self._mem_pid = 1 << 20  # overridden by set_topology
        self._counter_pid = (1 << 20) + 1

    # ------------------------------------------------------------------
    # Topology / metadata
    # ------------------------------------------------------------------

    def set_topology(self, num_sms: int, warps_per_sm: int) -> None:
        """Name the process/thread rows; call before the run starts."""
        self._mem_pid = num_sms
        self._counter_pid = num_sms + 1
        meta = self._trace_events
        for sm in range(num_sms):
            meta.append(self._metadata("process_name", sm, args={"name": f"SM {sm}"}))
            meta.append(self._metadata("process_sort_index", sm, args={"sort_index": sm}))
            for warp in range(warps_per_sm):
                meta.append(
                    self._metadata(
                        "thread_name", sm, tid=warp, args={"name": f"warp {warp}"}
                    )
                )
        meta.append(
            self._metadata("process_name", self._mem_pid, args={"name": "Memory"})
        )
        meta.append(
            self._metadata(
                "process_name", self._counter_pid, args={"name": "Interval metrics"}
            )
        )

    @staticmethod
    def _metadata(
        name: str, pid: int, tid: int = 0, args: Optional[dict[str, Any]] = None
    ) -> dict[str, Any]:
        return {"ph": "M", "name": name, "pid": pid, "tid": tid, "args": args or {}}

    # ------------------------------------------------------------------
    # Sink interface
    # ------------------------------------------------------------------

    def on_event(self, event: Any) -> None:
        kind = type(event).kind
        handler = getattr(self, f"_on_{kind}", None)
        if handler is not None:
            handler(event)
        else:
            self._instant(event)

    def on_interval(self, record: dict[str, Any]) -> None:
        ts = record["cycle_start"]
        for name in INTERVAL_METRICS:
            self._trace_events.append(
                {
                    "ph": "C",
                    "name": name,
                    "pid": self._counter_pid,
                    "tid": 0,
                    "ts": ts,
                    "args": {name: record[name]},
                }
            )

    def finish(self, final_cycle: int) -> None:
        """Close load slices left open (budget-stopped or failed runs)."""
        for (sm, warp), _start in sorted(self._open_loads.items()):
            self._trace_events.append(
                {
                    "ph": "E",
                    "name": "LOAD",
                    "cat": "warp",
                    "pid": sm,
                    "tid": warp,
                    "ts": final_cycle,
                }
            )
        self._open_loads.clear()

    def reset(self) -> None:
        """Drop a failed sharded attempt's events; topology is re-added
        when the hub rebinds."""
        self._trace_events.clear()
        self._open_loads.clear()
        self._flow_started.clear()

    # ------------------------------------------------------------------
    # Event renderers (one per kind that gets special treatment)
    # ------------------------------------------------------------------

    def _on_issue(self, event: Any) -> None:
        if event.dur is None:
            # A load: open a duration slice, closed by mem_complete.
            key = (event.sm, event.warp)
            if key not in self._open_loads:
                self._open_loads[key] = event.cycle
                self._trace_events.append(
                    {
                        "ph": "B",
                        "name": "LOAD",
                        "cat": "warp",
                        "pid": event.sm,
                        "tid": event.warp,
                        "ts": event.cycle,
                        "args": {"pc": event.pc},
                    }
                )
            return
        self._trace_events.append(
            {
                "ph": "X",
                "name": event.op,
                "cat": "warp",
                "pid": event.sm,
                "tid": event.warp,
                "ts": event.cycle,
                "dur": event.dur,
                "args": {"pc": event.pc},
            }
        )

    def _on_mem_complete(self, event: Any) -> None:
        key = (event.sm, event.warp)
        start = self._open_loads.pop(key, None)
        if start is None:
            return  # hit-latency wake of an already-closed load
        self._trace_events.append(
            {
                "ph": "E",
                "name": "LOAD",
                "cat": "warp",
                "pid": event.sm,
                "tid": event.warp,
                "ts": max(event.cycle, start),
            }
        )

    def _on_load_issue(self, event: Any) -> None:
        # Flow arrows chain every dynamic execution of one static load.
        started = self._flow_started.get(event.pc, False)
        self._flow_started[event.pc] = True
        self._trace_events.append(
            {
                "ph": "s" if not started else "t",
                "name": f"load_pc_{event.pc}",
                "cat": "static_load",
                "id": event.pc,
                "pid": event.sm,
                "tid": event.warp,
                "ts": event.cycle,
                "args": {"primary_addr": event.primary_addr, "lines": event.num_lines},
            }
        )

    # ------------------------------------------------------------------
    # Generic fallback: everything else is an instant event
    # ------------------------------------------------------------------

    def _instant(self, event: Any) -> None:
        record = event.as_dict()
        kind = record.pop("kind")
        ts = record.pop("cycle")
        pid = record.pop("sm", self._mem_pid)
        tid = record.pop("warp", 0)
        if "warps" in record:  # tuples are not JSON; keep args serialisable
            record["warps"] = list(record["warps"])
        self._trace_events.append(
            {
                "ph": "i",
                "name": kind,
                "cat": kind,
                "s": "t",
                "pid": pid,
                "tid": tid,
                "ts": ts,
                "args": record,
            }
        )

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------

    @property
    def num_trace_events(self) -> int:
        return len(self._trace_events)

    def build(self) -> dict[str, Any]:
        """The complete trace object (JSON-ready)."""
        return {
            "traceEvents": list(self._trace_events),
            "displayTimeUnit": "ms",
            "otherData": {
                "schema": "repro-telemetry-chrome-trace",
                "schema_version": 1,
                "ts_unit": "simulated cycles",
            },
        }

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.build(), fh)
            fh.write("\n")


def validate_chrome_trace(trace: Any) -> list[str]:
    """Schema check for an exported trace (golden test and CI smoke job).

    Validates the envelope, per-phase required fields, and that B/E
    duration slices balance on every (pid, tid) row.
    """
    problems: list[str] = []
    if not isinstance(trace, dict):
        return [f"trace is {type(trace).__name__}, expected object"]
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    other = trace.get("otherData")
    if not isinstance(other, dict) or other.get("schema") != "repro-telemetry-chrome-trace":
        problems.append("otherData.schema missing or wrong")
    depth: dict[tuple[Any, Any], int] = {}
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            problems.append(f"traceEvents[{i}] is not an object")
            continue
        ph = ev.get("ph")
        if ph not in _ALLOWED_PHASES:
            problems.append(f"traceEvents[{i}] has unknown ph {ph!r}")
            continue
        if not isinstance(ev.get("name"), str):
            problems.append(f"traceEvents[{i}] ({ph}) has no name")
        if not isinstance(ev.get("pid"), int):
            problems.append(f"traceEvents[{i}] ({ph}) has no integer pid")
        if ph == "M":
            continue
        if not isinstance(ev.get("ts"), (int, float)):
            problems.append(f"traceEvents[{i}] ({ph}) has no numeric ts")
        if ph == "X" and not isinstance(ev.get("dur"), (int, float)):
            problems.append(f"traceEvents[{i}] (X) has no numeric dur")
        if ph in ("s", "t") and "id" not in ev:
            problems.append(f"traceEvents[{i}] ({ph}) flow event has no id")
        if ph in ("B", "E"):
            row = (ev.get("pid"), ev.get("tid"))
            depth[row] = depth.get(row, 0) + (1 if ph == "B" else -1)
            if depth[row] < 0:
                problems.append(f"traceEvents[{i}]: E without matching B on row {row}")
                depth[row] = 0
    for row, open_count in sorted(depth.items()):
        if open_count:
            problems.append(f"{open_count} unclosed B slice(s) on row {row}")
    return problems
