"""repro.telemetry — cycle-attributed tracing, interval metrics, profiling.

The observability layer for the simulator: typed events from every
pipeline and memory component, an exclusive-cause stall-attribution
engine that reconciles exactly against ``SimStats``, windowed interval
metrics as JSONL time-series, a Chrome trace-event exporter, and
host-side profilers. A simulator built without a hub pays one
``is None`` test per instrumentation point — telemetry off is the
default and is effectively free.

Entry points: ``python -m repro trace``, or ``--telemetry`` /
``--trace-out`` on ``run`` and ``sweep``. See DESIGN.md ("Telemetry").
"""

from repro.telemetry.events import EVENT_TYPES, TelemetryEvent, validate_event_registry
from repro.telemetry.export import (
    ChromeTraceBuilder,
    HeartbeatSink,
    InMemorySink,
    IntervalJSONLWriter,
    TelemetrySink,
    validate_chrome_trace,
)
from repro.telemetry.hub import SMTelemetry, TelemetryHub
from repro.telemetry.intervals import (
    DEFAULT_WINDOW,
    INTERVAL_METRICS,
    IntervalCollector,
    validate_interval_record,
)
from repro.telemetry.profiler import PhaseTimer, RunProfiler
from repro.telemetry.stalls import STALL_CAUSES, StallEngine

__all__ = [
    "DEFAULT_WINDOW",
    "EVENT_TYPES",
    "INTERVAL_METRICS",
    "STALL_CAUSES",
    "ChromeTraceBuilder",
    "HeartbeatSink",
    "InMemorySink",
    "IntervalCollector",
    "IntervalJSONLWriter",
    "PhaseTimer",
    "RunProfiler",
    "SMTelemetry",
    "StallEngine",
    "TelemetryEvent",
    "TelemetryHub",
    "TelemetrySink",
    "validate_chrome_trace",
    "validate_event_registry",
    "validate_interval_record",
]
