"""Run-wide metrics registry: typed counters, gauges and histograms.

Where the stall engine and interval collector describe *one simulated
kernel*, this registry describes *the harness itself*: how many epoch
windows the shard engine ran, how often pool workers were requeued, how
the runner's memo cache is hitting. Every metric has a stable dotted
name declared in :data:`METRICS` — the single source of truth, mirroring
what :data:`repro.telemetry.events.EVENT_TYPES` is to telemetry events.
simlint's SL011 pass cross-checks every ``counter(...)`` /
``gauge(...)`` / ``histogram(...)`` call site in the tree against this
dict, so a metric cannot be emitted unregistered or declared and never
emitted.

Export is pull-style: :func:`write_metrics` renders the process-wide
registry as canonical JSON plus a Prometheus text-format twin
(``<path>.prom``), which is what a scrape-based service mode consumes
without any new dependency.
"""

from __future__ import annotations

import json
import os
from typing import Any, Optional, Union

#: Central declaration of every metric the harness may emit:
#: dotted name -> (type, help text). Types are ``counter`` (monotonic),
#: ``gauge`` (set-to-current) and ``histogram`` (observation summary).
#: simlint SL011 keeps emit sites and this dict in lockstep.
METRICS: dict[str, tuple[str, str]] = {
    "shard.windows.run": (
        "counter", "epoch windows executed by the sharded engine"),
    "shard.barrier.entries": (
        "counter", "boundary log entries merged and replayed at barriers"),
    "shard.barrier.wait_cycles": (
        "counter", "simulated cycles fast-forwarded between epoch windows"),
    "shard.fills.delivered": (
        "counter", "barrier-resolved fills delivered back into shard lanes"),
    "shard.fills.clamped": (
        "counter", "relaxed-mode fills clamped to the next window start"),
    "shard.worker.lost": (
        "counter", "shard workers declared lost (crash or missed deadline)"),
    "shard.runs.degraded": (
        "counter", "sharded runs that degraded to the serial engine"),
    "shard.window.span_cycles": (
        "histogram", "simulated cycles covered per epoch window (incl. jumps)"),
    "pool.worker.requeues": (
        "counter", "sweep points requeued after a pool worker failure"),
    "pool.worker.deaths": (
        "counter", "pool worker processes that crashed or hung"),
    "pool.worker.quarantines": (
        "counter", "sweep points quarantined after exhausting attempts"),
    "pool.workers.alive": (
        "gauge", "live worker processes in the supervised pool"),
    "registry.cache.hits": (
        "counter", "runner memo-cache hits (registry-identical results reused)"),
    "registry.cache.misses": (
        "counter", "runner memo-cache misses (points actually simulated)"),
    "resilience.retries": (
        "counter", "transient-failure retries across shard and sweep layers"),
    "telemetry.events.merged": (
        "counter", "lane-recorded telemetry events merged by the parent hub"),
    "flight.dumps.written": (
        "counter", "crash flight-recorder dumps written to disk"),
}


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: Union[int, float] = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount


class Gauge:
    """Set-to-current value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def set(self, value: Union[int, float]) -> None:
        self.value = value


class Histogram:
    """Observation summary: count / sum / min / max.

    Full bucketing is deliberately out of scope — the consumers here
    (bench tables, the Prometheus textfile) need the summary moments,
    and a bucket scheme would be a schema commitment with no reader.
    """

    __slots__ = ("name", "count", "sum", "min", "max")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.sum = 0
        self.min: Optional[Union[int, float]] = None
        self.max: Optional[Union[int, float]] = None

    def observe(self, value: Union[int, float]) -> None:
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value


class MetricsRegistry:
    """One process's metric instruments, resolved by declared dotted name.

    ``counter``/``gauge``/``histogram`` lazily create the instrument on
    first use and reject names missing from :data:`METRICS` (or declared
    with a different type) — the runtime twin of simlint SL011.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, Any] = {}

    def _get(self, name: str, metric_type: str, factory) -> Any:
        declared = METRICS.get(name)
        if declared is None:
            raise KeyError(
                f"metric {name!r} is not declared in "
                "repro.telemetry.metrics.METRICS; add it there (SL011)"
            )
        if declared[0] != metric_type:
            raise TypeError(
                f"metric {name!r} is declared as a {declared[0]}, "
                f"not a {metric_type}"
            )
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = factory(name)
            self._instruments[name] = instrument
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, "counter", Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, "gauge", Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, "histogram", Histogram)

    def reset(self) -> None:
        """Drop every instrument (tests; a fresh service epoch)."""
        self._instruments.clear()

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready snapshot of every touched metric, name-sorted."""
        out: dict[str, Any] = {}
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            metric_type, help_text = METRICS[name]
            entry: dict[str, Any] = {"type": metric_type, "help": help_text}
            if isinstance(instrument, Histogram):
                entry.update(
                    count=instrument.count,
                    sum=instrument.sum,
                    min=instrument.min,
                    max=instrument.max,
                )
            else:
                entry["value"] = instrument.value
            out[name] = entry
        return {
            "schema": "repro-telemetry-metrics",
            "schema_version": 1,
            "metrics": out,
        }

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (dots become underscores)."""
        lines: list[str] = []
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            metric_type, help_text = METRICS[name]
            flat = name.replace(".", "_")
            lines.append(f"# HELP {flat} {help_text}")
            if isinstance(instrument, Histogram):
                # Render as Prometheus summary-ish gauges: _count/_sum.
                lines.append(f"# TYPE {flat} summary")
                lines.append(f"{flat}_count {instrument.count}")
                lines.append(f"{flat}_sum {instrument.sum}")
            else:
                lines.append(f"# TYPE {flat} {metric_type}")
                lines.append(f"{flat} {instrument.value}")
        return "\n".join(lines) + ("\n" if lines else "")


#: Process-wide default registry; every instrumentation point in the
#: tree writes here unless handed an explicit registry.
_DEFAULT = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide metrics registry."""
    return _DEFAULT


def write_metrics(path: str, registry: Optional[MetricsRegistry] = None) -> str:
    """Write the registry as JSON to ``path`` and Prometheus text next to it.

    Returns the Prometheus twin's path (``<path>.prom``). Writes are
    atomic (tmp + rename) so a scraper never reads a torn file.
    """
    reg = registry if registry is not None else _DEFAULT
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(reg.as_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)
    prom_path = path + ".prom"
    tmp = prom_path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(reg.to_prometheus())
    os.replace(tmp, prom_path)
    return prom_path


def validate_metrics_export(payload: Any) -> list[str]:
    """Schema check for a :func:`write_metrics` JSON export (tests/CI)."""
    problems: list[str] = []
    if not isinstance(payload, dict):
        return [f"metrics export is {type(payload).__name__}, expected object"]
    if payload.get("schema") != "repro-telemetry-metrics":
        problems.append("schema missing or wrong")
    metrics = payload.get("metrics")
    if not isinstance(metrics, dict):
        return problems + ["metrics missing or not an object"]
    for name, entry in metrics.items():
        declared = METRICS.get(name)
        if declared is None:
            problems.append(f"metric {name!r} is not declared in METRICS")
            continue
        if not isinstance(entry, dict) or entry.get("type") != declared[0]:
            problems.append(f"metric {name!r} has wrong or missing type")
    return problems
