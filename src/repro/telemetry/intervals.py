"""Windowed interval metrics: time-series over the life of a run.

End-of-run aggregates hide phases: a kernel that streams for its first
half and thrashes for its second reports the same totals as one that
interleaves both. Interval metrics window the counters every
``window`` simulated cycles and emit one JSONL record per window, which
is what makes cache-behaviour claims inspectable over time (and what
drives the CLI heartbeat and the Chrome-trace counter track).

The :data:`INTERVAL_METRICS` registry is the single source of truth for
metric names. Each name resolves to an ``IntervalCollector._metric_<name>``
method; simlint's SL004 extension checks the mapping in both directions,
so a metric cannot be silently renamed or left uncomputed.

Windows are aligned to the simulator's ticks: the event-queue
fast-forward can jump the clock past a boundary, in which case the
window is flushed at the first tick after the jump and its
``cycle_end - cycle_start`` span is simply longer than ``window``.
Records always tile the run exactly: the first starts at cycle 0, each
starts where the previous ended, and the final (flushed at completion)
ends at ``stats.cycles``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mem.cache import L1Cache
    from repro.stats.counters import SimStats
    from repro.telemetry.stalls import StallEngine

#: Default window length in simulated cycles.
DEFAULT_WINDOW = 5_000

#: Registry of interval metrics: name -> what the value means. Every name
#: has a matching ``_metric_<name>`` method on :class:`IntervalCollector`
#: (enforced by simlint SL004).
INTERVAL_METRICS: dict[str, str] = {
    "ipc": "instructions per cycle within the window",
    "ipc_cum": "instructions per cycle from cycle 0 to the window's end",
    "instructions": "instructions issued within the window",
    "l1_accesses": "L1 demand accesses within the window",
    "l1_miss_rate": "L1 demand miss rate within the window",
    "mshr_occupancy": "mean L1 MSHR occupancy ratio sampled at the window end",
    "prefetch_accuracy": (
        "prefetched lines that served a demand (hit or MSHR merge) over "
        "prefetches issued, within the window"
    ),
    "l2_miss_rate": "L2 miss rate within the window (0.0 without L2 traffic)",
    "stall_frac_mshr_full": (
        "fraction of the window's SM-cycles stalled on mshr_full "
        "(exclusive-cause attribution; 0.0 without a stall engine)"
    ),
    "stall_frac_dram_queue": (
        "fraction of the window's SM-cycles stalled on dram_queue"
    ),
    "stall_frac_l1_pending": (
        "fraction of the window's SM-cycles stalled on l1_pending"
    ),
    "stall_frac_scoreboard": (
        "fraction of the window's SM-cycles stalled on scoreboard"
    ),
    "stall_frac_sched_throttle": (
        "fraction of the window's SM-cycles stalled on sched_throttle"
    ),
    "stall_frac_no_warp": (
        "fraction of the window's SM-cycles stalled on no_warp"
    ),
}


class IntervalCollector:
    """Accumulates counter deltas per window and emits records to sinks."""

    def __init__(
        self,
        stats: "SimStats",
        l1s: Sequence["L1Cache"],
        window: int = DEFAULT_WINDOW,
        num_sms: int = 1,
        *,
        stalls: Optional["StallEngine"] = None,
    ):
        if window < 1:
            raise ValueError("interval window must be >= 1 cycle")
        self.window = window
        self._stats = stats
        self._l1s = l1s
        self._num_sms = num_sms
        #: Memory-side (L2/DRAM) counters; the sharded engine's stats view
        #: exposes the parent-held authoritative bundle under the same name.
        self._memory = getattr(stats, "memory", None)
        #: Stall engine for the exclusive-cause fraction metrics; a
        #: collector built without one reports those fractions as 0.0.
        self._stalls = stalls
        self._sinks: list[Any] = []
        self.records_emitted = 0
        self._start = 0
        self._next_boundary = window
        self._span = 0
        # Cumulative-counter snapshot at the current window's start.
        self._instructions = 0
        self._accesses = 0
        self._misses = 0
        self._prefetch_issued = 0
        self._prefetch_useful = 0
        self._l2_accesses = 0
        self._l2_hits = 0
        self._stall_by_cause: tuple[int, ...] = ()
        self._issue_cycles = 0

    def add_sink(self, sink: Any) -> None:
        self._sinks.append(sink)

    # ------------------------------------------------------------------
    # Simulator-facing hooks
    # ------------------------------------------------------------------

    def on_tick(self, now: int) -> None:
        """Flush the window when the clock has reached its boundary."""
        if now < self._next_boundary:
            return
        self._flush(now)
        self._next_boundary = now + self.window

    def finish(self, final_cycle: int) -> None:
        """Flush the residual partial window at the end of the run."""
        if final_cycle > self._start:
            self._flush(final_cycle)

    # ------------------------------------------------------------------
    # Window computation
    # ------------------------------------------------------------------

    def _flush(self, end: int) -> None:
        self._span = end - self._start
        record: dict[str, Any] = {"cycle_start": self._start, "cycle_end": end}
        for name in INTERVAL_METRICS:
            record[name] = getattr(self, f"_metric_{name}")()
        self._snapshot(end)
        self.records_emitted += 1
        for sink in self._sinks:
            sink.on_interval(record)

    def _snapshot(self, end: int) -> None:
        stats = self._stats
        self._start = end
        self._instructions = stats.instructions
        self._accesses = stats.l1.accesses
        self._misses = stats.l1.misses
        self._prefetch_issued = stats.l1.prefetch_issued
        self._prefetch_useful = (
            stats.l1.prefetch_useful + stats.l1.prefetch_demand_merged
        )
        memory = self._memory
        if memory is not None:
            self._l2_accesses = memory.l2_accesses
            self._l2_hits = memory.l2_hits
        stalls = self._stalls
        if stalls is not None:
            self._stall_by_cause = tuple(stalls.by_cause().values())
            self._issue_cycles = stalls.issue_cycles

    # Metric methods — one per INTERVAL_METRICS entry (lint-enforced). ---

    def _metric_ipc(self) -> float:
        sm_cycles = self._span * self._num_sms
        delta = self._stats.instructions - self._instructions
        return delta / sm_cycles if sm_cycles else 0.0

    def _metric_ipc_cum(self) -> float:
        end = self._start + self._span
        sm_cycles = end * self._num_sms
        return self._stats.instructions / sm_cycles if sm_cycles else 0.0

    def _metric_instructions(self) -> int:
        return self._stats.instructions - self._instructions

    def _metric_l1_accesses(self) -> int:
        return self._stats.l1.accesses - self._accesses

    def _metric_l1_miss_rate(self) -> float:
        accesses = self._stats.l1.accesses - self._accesses
        misses = self._stats.l1.misses - self._misses
        return misses / accesses if accesses else 0.0

    def _metric_mshr_occupancy(self) -> float:
        if not self._l1s:
            return 0.0
        return sum(l1.mshr_occupancy for l1 in self._l1s) / len(self._l1s)

    def _metric_prefetch_accuracy(self) -> float:
        issued = self._stats.l1.prefetch_issued - self._prefetch_issued
        useful = (
            self._stats.l1.prefetch_useful
            + self._stats.l1.prefetch_demand_merged
            - self._prefetch_useful
        )
        return useful / issued if issued else 0.0

    def _metric_l2_miss_rate(self) -> float:
        memory = self._memory
        if memory is None:
            return 0.0
        accesses = memory.l2_accesses - self._l2_accesses
        hits = memory.l2_hits - self._l2_hits
        return (accesses - hits) / accesses if accesses else 0.0

    def _stall_frac(self, index: int) -> float:
        """One cause's share of the window's issue+stall SM-cycles.

        Normalising by the window's *observed* issue+stall deltas (rather
        than ``span * num_sms``) keeps the fractions exact at flush ticks,
        where the boundary tick's charges land before the flush in both
        the serial loop and the sharded barrier merge.
        """
        stalls = self._stalls
        if stalls is None:
            return 0.0
        by = tuple(stalls.by_cause().values())
        prev = self._stall_by_cause or (0,) * len(by)
        delta = by[index] - prev[index]
        total = sum(by) - sum(prev)
        total += stalls.issue_cycles - self._issue_cycles
        return delta / total if total else 0.0

    # Indices follow STALL_CAUSES declaration order (the stable contract;
    # see repro/telemetry/stalls.py and repro/shard/telemetry.py).

    def _metric_stall_frac_mshr_full(self) -> float:
        return self._stall_frac(0)

    def _metric_stall_frac_dram_queue(self) -> float:
        return self._stall_frac(1)

    def _metric_stall_frac_l1_pending(self) -> float:
        return self._stall_frac(2)

    def _metric_stall_frac_scoreboard(self) -> float:
        return self._stall_frac(3)

    def _metric_stall_frac_sched_throttle(self) -> float:
        return self._stall_frac(4)

    def _metric_stall_frac_no_warp(self) -> float:
        return self._stall_frac(5)


def validate_interval_record(record: Any) -> list[str]:
    """Schema check for one interval record (tests and the CI smoke job)."""
    problems: list[str] = []
    if not isinstance(record, dict):
        return [f"interval record is {type(record).__name__}, expected object"]
    for key in ("cycle_start", "cycle_end"):
        if not isinstance(record.get(key), int):
            problems.append(f"missing or non-integer {key!r}")
    if not problems and record["cycle_end"] <= record["cycle_start"]:
        problems.append(
            f"empty window: cycle_end {record['cycle_end']} <= "
            f"cycle_start {record['cycle_start']}"
        )
    for name in INTERVAL_METRICS:
        value = record.get(name)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            problems.append(f"metric {name!r} missing or non-numeric")
    extras = set(record) - set(INTERVAL_METRICS) - {"cycle_start", "cycle_end"}
    for extra in sorted(extras):
        problems.append(f"unknown field {extra!r} (not in INTERVAL_METRICS)")
    return problems
