"""Crash flight recorder: a bounded ring of recent engine events.

Every process that runs simulation work — the parent, supervised pool
workers, shard child processes — keeps a small in-memory ring buffer of
recent noteworthy events (epoch barriers, deliveries, worker kills,
retries). It costs a dict append per event and nothing on disk until
something goes wrong: the watchdog, the pool's kill-and-requeue path,
and the shard backend's lost-worker path call :func:`dump` to write the
ring as structured JSON next to the existing quarantine artifacts,
turning "worker died, requeued" into a replayable postmortem.

The recorder is deliberately decoupled from the telemetry hub: it must
work when telemetry is off, inside forked children, and during the very
failures that tear the hub down.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from typing import Any, Optional

#: Default ring capacity. Sized so a dump stays a few KiB of JSON while
#: still covering hundreds of barrier rounds of context.
DEFAULT_CAPACITY = 256

#: Schema stamped into every dump file.
DUMP_SCHEMA = "repro-flight-recorder"
DUMP_SCHEMA_VERSION = 1


class FlightRecorder:
    """Bounded ring buffer of ``{"seq", "wall_s", "kind", ...}`` events."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        self.capacity = capacity
        self._ring: deque[dict[str, Any]] = deque(maxlen=capacity)
        self._seq = 0
        self.events_recorded = 0
        self.dumps_written = 0

    def record(self, kind: str, /, **fields: Any) -> None:
        """Append one event; oldest events fall off the ring."""
        entry: dict[str, Any] = {
            "seq": self._seq,
            "wall_s": round(time.time(), 6),
            "kind": kind,
        }
        entry.update(fields)
        self._ring.append(entry)
        self._seq += 1
        self.events_recorded += 1

    def snapshot(self) -> list[dict[str, Any]]:
        """The ring's current contents, oldest first."""
        return list(self._ring)

    def clear(self) -> None:
        self._ring.clear()

    def dump(self, reason: str, *, directory: Optional[str] = None,
             details: Optional[dict[str, Any]] = None) -> Optional[str]:
        """Write the ring as structured JSON; returns the file path.

        ``directory`` falls back to ``$REPRO_DUMP_DIR`` — the same
        resolution the watchdog uses, so flight dumps land beside
        watchdog and quarantine artifacts. With neither set the dump is
        skipped (returns ``None``) rather than littering the working
        directory. The write is atomic (tmp + rename) because it happens
        on crash paths where a second failure mid-write is plausible.
        """
        out_dir = directory or os.environ.get("REPRO_DUMP_DIR")
        if not out_dir:
            return None
        os.makedirs(out_dir, exist_ok=True)
        safe_reason = "".join(
            ch if ch.isalnum() or ch in "-_" else "-" for ch in reason
        )
        name = f"flight-{safe_reason}-pid{os.getpid()}-{self.dumps_written}.json"
        path = os.path.join(out_dir, name)
        payload = {
            "schema": DUMP_SCHEMA,
            "schema_version": DUMP_SCHEMA_VERSION,
            "reason": reason,
            "pid": os.getpid(),
            "details": details or {},
            "events_recorded": self.events_recorded,
            "events": self.snapshot(),
        }
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True, default=repr)
            fh.write("\n")
        os.replace(tmp, path)
        self.dumps_written += 1
        try:
            from repro.telemetry.metrics import get_registry
            get_registry().counter("flight.dumps.written").inc()
        except Exception:  # pragma: no cover - metrics must never mask a dump
            pass
        return path


#: Per-process recorder. Forked children inherit the parent's recent
#: history (useful context in a child postmortem) and diverge from there.
_RECORDER = FlightRecorder()


def recorder() -> FlightRecorder:
    """The process-wide flight recorder."""
    return _RECORDER


def record(kind: str, /, **fields: Any) -> None:
    """Convenience: record into the process-wide ring."""
    _RECORDER.record(kind, **fields)


def dump(reason: str, *, directory: Optional[str] = None,
         details: Optional[dict[str, Any]] = None) -> Optional[str]:
    """Convenience: dump the process-wide ring."""
    return _RECORDER.dump(reason, directory=directory, details=details)


def validate_flight_dump(payload: Any) -> list[str]:
    """Schema check for a flight-recorder dump (tests/CI)."""
    problems: list[str] = []
    if not isinstance(payload, dict):
        return [f"dump is {type(payload).__name__}, expected object"]
    if payload.get("schema") != DUMP_SCHEMA:
        problems.append("schema missing or wrong")
    events = payload.get("events")
    if not isinstance(events, list):
        return problems + ["events missing or not a list"]
    last_seq = -1
    for i, event in enumerate(events):
        if not isinstance(event, dict) or "kind" not in event:
            problems.append(f"event {i} malformed")
            continue
        seq = event.get("seq", -1)
        if seq <= last_seq:
            problems.append(f"event {i} seq not increasing")
        last_seq = seq
    return problems
