"""Stall attribution: charge every non-issuing SM cycle to one cause.

APRES's argument is temporal — LAWS/SAP change *when* warps stall on L1
misses — so end-of-run aggregates alone cannot show whether a mechanism
worked. This engine gives every SM cycle exactly one label:

* the SM issued an instruction (an *issue cycle*), or
* it stalled, and the stall is charged to exactly one cause from
  :data:`STALL_CAUSES`.

Attribution is exclusive by a fixed priority (structural hazards first,
then memory, then dependencies), so the per-cause totals are a partition
of the idle cycles and reconcile *exactly* against ``SimStats``::

    issue_cycles                 == stats.instructions
    sum(stalls per cause)        == stats.idle_cycles
    issue_cycles + stall_cycles  == stats.cycles * num_sms

:meth:`StallEngine.reconcile` enforces those identities; the telemetry
test suite runs it over multiple workloads and schedulers, and
``python -m repro trace`` prints the result. Fast-forwarded (event-queue
skipped) cycles are charged to the cause each SM exhibited at the tick
before the jump — nothing can change an SM's state between ticks, so the
cause provably persists across the skipped span.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.errors import InvariantError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mem.dram import DRAMModel
    from repro.sm.pipeline import SMCore
    from repro.stats.counters import SimStats

#: Exclusive stall causes, in attribution-priority order (first match
#: wins). The registry is the single source of truth for cause names:
#: reports, JSON exports and the CLI table all iterate it.
STALL_CAUSES: dict[str, str] = {
    "mshr_full": (
        "a ready warp's memory instruction was gated because the LSU "
        "replay queue is full — L1 MSHR reservations are failing"
    ),
    "dram_queue": (
        "all unfinished warps wait on memory while DRAM partitions are "
        "saturated — bandwidth queuing, not latency, is the bottleneck"
    ),
    "l1_pending": (
        "all unfinished warps wait on in-flight L1 fills (miss latency, "
        "no DRAM bandwidth backlog)"
    ),
    "scoreboard": (
        "warps exist but each waits out its dependent-issue latency "
        "(ALU chains / store retire)"
    ),
    "sched_throttle": (
        "ready warps were offered but the scheduling policy declined to "
        "issue (CCWS/MASCAR-style throttling)"
    ),
    "no_warp": "every warp of this SM has retired its last instruction",
}

_MSHR_FULL = 0
_DRAM_QUEUE = 1
_L1_PENDING = 2
_SCOREBOARD = 3
_SCHED_THROTTLE = 4
_NO_WARP = 5

_CAUSE_NAMES = tuple(STALL_CAUSES)


class StallEngine:
    """Per-SM issue/stall accounting for one simulation run."""

    def __init__(self, num_sms: int, dram: "DRAMModel"):
        n = len(_CAUSE_NAMES)
        self._stalls = [[0] * n for _ in range(num_sms)]
        self._issues = [0] * num_sms
        #: Cause recorded at the most recent tick, per SM; fast-forward
        #: charges skipped cycles to it. ``no_warp`` is a safe default:
        #: a skip can only follow a tick in which every SM recorded.
        self._last_cause = [_NO_WARP] * num_sms
        self._dram = dram
        #: Memoised DRAM-saturation probe for the current tick.
        self._dram_probe: tuple[int, bool] = (-1, False)

    # ------------------------------------------------------------------
    # Hooks (called from the SM pipeline via the telemetry proxy)
    # ------------------------------------------------------------------

    def on_issue(self, sm_id: int) -> None:
        self._issues[sm_id] += 1

    def on_throttle(self, sm_id: int, now: int) -> None:
        """The scheduler declined every offered candidate this cycle."""
        self._charge(sm_id, _SCHED_THROTTLE)

    def on_idle(self, sm_id: int, sm: "SMCore", now: int, mshr_gated: int) -> None:
        """No candidate could be offered; classify why (exclusive)."""
        if mshr_gated:
            self._charge(sm_id, _MSHR_FULL)
            return
        waiting_mem = False
        waiting_dep = False
        for warp in sm.warps:
            if warp.finished:
                continue
            if warp.outstanding:
                waiting_mem = True
                break
            waiting_dep = True
        if waiting_mem:
            cause = _DRAM_QUEUE if self._dram_saturated(now) else _L1_PENDING
        elif waiting_dep:
            cause = _SCOREBOARD
        elif sm.done:
            cause = _NO_WARP
        else:
            # Replay queue holds loads of unfinished warps only; with every
            # warp context finished this cannot happen, but never misfile.
            cause = _L1_PENDING
        self._charge(sm_id, cause)

    def on_skip(self, skipped: int) -> None:
        """The clock fast-forwarded ``skipped`` cycles with every SM stalled."""
        for sm_id, cause in enumerate(self._last_cause):
            self._stalls[sm_id][cause] += skipped

    def charge(self, sm_id: int, cause: int) -> None:
        """Directly charge one stall cycle by cause index.

        Used by the sharded barrier merge, where the lane-side recorder
        already classified the tick and the parent only needs to book it
        (indices follow :data:`STALL_CAUSES` order).
        """
        self._charge(sm_id, cause)

    def close_residual(self, total_cycles: int) -> None:
        """Charge each SM's unaccounted cycles to its last-known cause.

        Relaxed-epoch sharding (``epoch_cycles > 1``) lets lanes skip
        ticks independently inside a window, so some SM-cycles are never
        observed by any hook. Closing them against the SM's most recent
        cause keeps the exclusive-cause reconciliation identities exact;
        the attribution of those cycles is approximate by contract.
        """
        for sm_id, cause in enumerate(self._last_cause):
            residual = total_cycles - self._issues[sm_id] - sum(self._stalls[sm_id])
            if residual > 0:
                self._stalls[sm_id][cause] += residual

    def _charge(self, sm_id: int, cause: int) -> None:
        self._stalls[sm_id][cause] += 1
        self._last_cause[sm_id] = cause

    def _dram_saturated(self, now: int) -> bool:
        probe_cycle, busy = self._dram_probe
        if probe_cycle != now:
            busy = self._dram.busy_partitions(now) > 0
            self._dram_probe = (now, busy)
        return busy

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    @property
    def issue_cycles(self) -> int:
        return sum(self._issues)

    @property
    def stall_cycles(self) -> int:
        return sum(sum(row) for row in self._stalls)

    def by_cause(self) -> dict[str, int]:
        """Aggregate stall cycles per cause (all SMs)."""
        return {
            name: sum(row[i] for row in self._stalls)
            for i, name in enumerate(_CAUSE_NAMES)
        }

    def per_sm(self) -> list[dict[str, Any]]:
        """Per-SM breakdown, JSON-ready."""
        return [
            {
                "sm": sm_id,
                "issue_cycles": self._issues[sm_id],
                "stalls": {
                    name: row[i] for i, name in enumerate(_CAUSE_NAMES)
                },
            }
            for sm_id, row in enumerate(self._stalls)
        ]

    def report(self, stats: "SimStats", num_sms: int) -> dict[str, Any]:
        """Full attribution report including the SimStats reconciliation."""
        by_cause = self.by_cause()
        total_sm_cycles = stats.cycles * num_sms
        return {
            "schema": "repro-telemetry-stalls",
            "schema_version": 1,
            "causes": dict(STALL_CAUSES),
            "by_cause": by_cause,
            "issue_cycles": self.issue_cycles,
            "stall_cycles": self.stall_cycles,
            "per_sm": self.per_sm(),
            "reconciliation": {
                "cycles": stats.cycles,
                "num_sms": num_sms,
                "total_sm_cycles": total_sm_cycles,
                "instructions": stats.instructions,
                "idle_cycles": stats.idle_cycles,
                "issue_matches_instructions": self.issue_cycles == stats.instructions,
                "stalls_match_idle": self.stall_cycles == stats.idle_cycles,
                "partition_complete": (
                    self.issue_cycles + self.stall_cycles == total_sm_cycles
                ),
            },
        }

    def reconcile(self, stats: "SimStats", num_sms: int) -> dict[str, Any]:
        """Assert the attribution partitions SimStats' cycle accounting.

        Returns the :meth:`report`; raises :class:`InvariantError` when
        any identity is off — drift here means an issue/stall path gained
        a branch the engine does not see.
        """
        report = self.report(stats, num_sms)
        rec = report["reconciliation"]
        if not (
            rec["issue_matches_instructions"]
            and rec["stalls_match_idle"]
            and rec["partition_complete"]
        ):
            raise InvariantError(
                "stall attribution does not reconcile with SimStats: "
                f"issue={self.issue_cycles} vs instructions={stats.instructions}, "
                f"stalls={self.stall_cycles} vs idle={stats.idle_cycles}, "
                f"total={self.issue_cycles + self.stall_cycles} vs "
                f"SM-cycles={rec['total_sm_cycles']}",
                details={"invariant": "stall attribution", "report": report},
            )
        return report
