"""Typed telemetry events and their registry.

Every discrete occurrence the simulator can report — an instruction
issue, an L1 access, a DRAM request, a LAWS group decision — is one event
class here. The :data:`EVENT_TYPES` registry is the single source of
truth for what events exist: simlint's SL003 extension cross-checks that
every class below is registered, that every ``emit(...)`` site in the
tree constructs a registered class, and that no registered event is
orphaned (declared but never emitted). Adding an event therefore means
adding the class *and* its registry entry, or the lint job fails.

Events are plain slotted dataclasses so constructing one costs a few
attribute stores; they are only ever constructed behind an
``is not None`` telemetry guard, so a run without telemetry never pays
for them. ``cycle`` is always the simulated cycle the event describes,
never wall-clock time.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, ClassVar, Optional


@dataclass(slots=True)
class TelemetryEvent:
    """Base class: every event carries the simulated cycle it happened at."""

    #: Registry key; also the ``"kind"`` field of the exported record.
    kind: ClassVar[str] = ""

    cycle: int

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready record including the event's registry kind."""
        record: dict[str, Any] = {"kind": type(self).kind}
        record.update(dataclasses.asdict(self))
        return record


# ----------------------------------------------------------------------
# SM pipeline
# ----------------------------------------------------------------------


@dataclass(slots=True)
class WarpIssueEvent(TelemetryEvent):
    """One warp-instruction issued by an SM.

    ``dur`` is the dependent-issue latency when it is known at issue time
    (ALU chains, stores); loads leave it ``None`` — their duration is the
    issue-to-:class:`MemCompleteEvent` span.
    """

    kind: ClassVar[str] = "issue"

    sm: int
    warp: int
    pc: int
    op: str
    dur: Optional[int]


@dataclass(slots=True)
class LoadIssueEvent(TelemetryEvent):
    """A load entered the LSU: coalesced line requests head for the L1."""

    kind: ClassVar[str] = "load_issue"

    sm: int
    warp: int
    pc: int
    primary_addr: int
    num_lines: int


@dataclass(slots=True)
class LoadOutcomeEvent(TelemetryEvent):
    """The primary request of a load committed: the LSU feedback signal."""

    kind: ClassVar[str] = "load_outcome"

    sm: int
    warp: int
    pc: int
    hit: bool


@dataclass(slots=True)
class MemCompleteEvent(TelemetryEvent):
    """The last outstanding request of a warp returned; the warp wakes."""

    kind: ClassVar[str] = "mem_complete"

    sm: int
    warp: int


# ----------------------------------------------------------------------
# L1 / MSHR
# ----------------------------------------------------------------------


@dataclass(slots=True)
class L1AccessEvent(TelemetryEvent):
    """One demand access: outcome is hit / miss / merged / stall."""

    kind: ClassVar[str] = "l1_access"

    sm: int
    line_addr: int
    outcome: str


@dataclass(slots=True)
class L1FillEvent(TelemetryEvent):
    """A line fill landed in an L1 (demand or prefetch initiated)."""

    kind: ClassVar[str] = "l1_fill"

    sm: int
    line_addr: int
    prefetch: bool


@dataclass(slots=True)
class L1EvictEvent(TelemetryEvent):
    """A resident line was evicted (replacement or store invalidation)."""

    kind: ClassVar[str] = "l1_evict"

    sm: int
    line_addr: int
    prefetched: bool
    referenced: bool


@dataclass(slots=True)
class PrefetchIssueEvent(TelemetryEvent):
    """A prefetch actually started an L1 fill."""

    kind: ClassVar[str] = "prefetch_issue"

    sm: int
    line_addr: int
    target_warp: Optional[int]


@dataclass(slots=True)
class PrefetchDropEvent(TelemetryEvent):
    """A prefetch candidate was rejected before starting a fill."""

    kind: ClassVar[str] = "prefetch_drop"

    sm: int
    line_addr: int
    #: ``mshr_pressure`` (pipeline throttle), ``resident``, ``in_flight``
    #: or ``no_mshr`` (cache-side drops).
    reason: str


# ----------------------------------------------------------------------
# L2 / DRAM
# ----------------------------------------------------------------------


@dataclass(slots=True)
class L2AccessEvent(TelemetryEvent):
    """An L1 miss reached the shared L2."""

    kind: ClassVar[str] = "l2_access"

    line_addr: int
    hit: bool


@dataclass(slots=True)
class DRAMRequestEvent(TelemetryEvent):
    """An L2 miss reached a DRAM partition; ``queue_delay`` is the cycles
    the request waited for the partition before service began."""

    kind: ClassVar[str] = "dram_request"

    line_addr: int
    partition: int
    queue_delay: int


# ----------------------------------------------------------------------
# Scheduler / APRES mechanisms
# ----------------------------------------------------------------------


@dataclass(slots=True)
class SchedGroupEvent(TelemetryEvent):
    """A LAWS priority-queue action on a warp group.

    ``action`` is ``head`` (grouped load hit — group promoted), ``tail``
    (grouped load missed — group demoted) or ``promote`` (warps that
    received a SAP prefetch moved to the head).
    """

    kind: ClassVar[str] = "sched_group"

    sm: int
    action: str
    warps: tuple[int, ...]


@dataclass(slots=True)
class SAPDecisionEvent(TelemetryEvent):
    """SAP evaluated a grouped miss: did the inter-warp stride confirm,
    and how many group prefetches were generated?"""

    kind: ClassVar[str] = "sap_decision"

    sm: int
    pc: int
    stride: Optional[int]
    confirmed: bool
    num_targets: int


#: Registry of every telemetry event: ``kind`` string -> event class.
#: simlint (SL003 telemetry pass) keeps this in lockstep with the classes
#: above and with every ``emit(...)`` site in the tree.
EVENT_TYPES: dict[str, type] = {
    "issue": WarpIssueEvent,
    "load_issue": LoadIssueEvent,
    "load_outcome": LoadOutcomeEvent,
    "mem_complete": MemCompleteEvent,
    "l1_access": L1AccessEvent,
    "l1_fill": L1FillEvent,
    "l1_evict": L1EvictEvent,
    "prefetch_issue": PrefetchIssueEvent,
    "prefetch_drop": PrefetchDropEvent,
    "l2_access": L2AccessEvent,
    "dram_request": DRAMRequestEvent,
    "sched_group": SchedGroupEvent,
    "sap_decision": SAPDecisionEvent,
}


def validate_event_registry() -> list[str]:
    """Runtime twin of the SL003 telemetry pass (used by tests).

    Returns a list of problems; empty means the registry, the classes and
    their ``kind`` strings are coherent.
    """
    problems: list[str] = []
    for key, cls in EVENT_TYPES.items():
        if not (isinstance(cls, type) and issubclass(cls, TelemetryEvent)):
            problems.append(f"EVENT_TYPES[{key!r}] is not a TelemetryEvent subclass")
            continue
        if cls.kind != key:
            problems.append(
                f"EVENT_TYPES[{key!r}] maps to {cls.__name__} whose kind is "
                f"{cls.kind!r}"
            )
    registered = set(EVENT_TYPES.values())
    for cls in TelemetryEvent.__subclasses__():
        if cls not in registered:
            problems.append(f"{cls.__name__} is not registered in EVENT_TYPES")
    return problems
