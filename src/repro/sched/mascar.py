"""MASCAR: Memory Aware Scheduling and Cache Access Re-execution
(Sethia et al., HPCA '15).

When the memory subsystem saturates, interleaving more memory warps only
lengthens queues. MASCAR switches to a *memory phase*: exactly one owner
warp may issue memory operations (running ahead and pipelining its misses)
while every other warp is restricted to compute, draining the queues.
Saturation is detected from L1 MSHR occupancy with hysteresis.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.sched.base import IssueCandidate, WarpScheduler


class MASCARScheduler(WarpScheduler):
    """Saturation-gated owner-warp memory scheduling."""

    name = "mascar"

    def __init__(self, saturate_on: float = 0.9, saturate_off: float = 0.5):
        super().__init__()
        if not 0.0 <= saturate_off <= saturate_on <= 1.0:
            raise ValueError("need 0 <= saturate_off <= saturate_on <= 1")
        self._sat_on = saturate_on
        self._sat_off = saturate_off
        self._saturated = False
        self._owner: Optional[int] = None
        self._owner_busy = False
        self._next = 0

    def reset(self, num_warps: int) -> None:
        super().reset(num_warps)
        self._saturated = False
        self._owner = None
        self._owner_busy = False
        self._next = 0

    @property
    def in_memory_phase(self) -> bool:
        return self._saturated

    def _update_saturation(self) -> None:
        if self._l1 is None:
            return
        occupancy = self._l1.mshr_occupancy
        if not self._saturated and occupancy >= self._sat_on:
            self._saturated = True
        elif self._saturated and occupancy <= self._sat_off:
            self._saturated = False
            self._owner = None
            self._owner_busy = False

    def select(self, candidates: Sequence[IssueCandidate], cycle: int) -> Optional[int]:
        if not candidates:
            return None
        self._update_saturation()
        if not self._saturated:
            return self._round_robin(candidates)

        mem = sorted(c.warp_id for c in candidates if c.is_mem)
        compute = sorted(c.warp_id for c in candidates if not c.is_mem)
        if self._owner is None or (self._owner not in mem and not self._owner_busy):
            self._owner = mem[0] if mem else None
        # Owner's memory work leads; everyone else may only compute.
        if self._owner is not None and self._owner in mem:
            return self._owner
        if compute:
            return compute[0]
        return None

    def _round_robin(self, candidates: Sequence[IssueCandidate]) -> Optional[int]:
        ready = {c.warp_id for c in candidates}
        n = self._num_warps
        for offset in range(n):
            wid = (self._next + offset) % n
            if wid in ready:
                self._next = (wid + 1) % n
                return wid
        return None

    def notify_issue(self, warp_id: int, is_mem: bool, cycle: int) -> None:
        if is_mem and warp_id == self._owner:
            self._owner_busy = True

    def notify_mem_complete(self, warp_id: int, cycle: int) -> None:
        if warp_id == self._owner:
            self._owner_busy = False

    def notify_warp_finished(self, warp_id: int) -> None:
        if warp_id == self._owner:
            self._owner = None
            self._owner_busy = False
