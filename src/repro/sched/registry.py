"""Name-based scheduler construction used by the experiment harness."""

from __future__ import annotations

from typing import Callable

from repro.sched.base import WarpScheduler
from repro.sched.cawa import CAWAScheduler
from repro.sched.ccws import CCWSScheduler
from repro.sched.gto import GTOScheduler
from repro.sched.lrr import LRRScheduler
from repro.sched.mascar import MASCARScheduler
from repro.sched.pa import PAScheduler
from repro.sched.twolevel import TwoLevelScheduler

SCHEDULERS: dict[str, Callable[[], WarpScheduler]] = {
    "lrr": LRRScheduler,
    "gto": GTOScheduler,
    "twolevel": TwoLevelScheduler,
    "ccws": CCWSScheduler,
    "mascar": MASCARScheduler,
    "pa": PAScheduler,
    "cawa": CAWAScheduler,
}


def make_scheduler(name: str) -> WarpScheduler:
    """Instantiate a scheduler by its registry name.

    LAWS is constructed through :func:`repro.core.apres.build_apres`
    because it is paired with a prefetch engine.
    """
    try:
        factory = SCHEDULERS[name]
    except KeyError:
        known = ", ".join(sorted(SCHEDULERS))
        raise ValueError(f"unknown scheduler {name!r}; known: {known}") from None
    return factory()
