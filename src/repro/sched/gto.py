"""Greedy-Then-Oldest scheduling."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.sched.base import IssueCandidate, WarpScheduler


class GTOScheduler(WarpScheduler):
    """Keep issuing the same warp until it stalls, then fall back to the oldest.

    Greedy runs concentrate one warp's working set in time, which trims
    inter-warp cache interference relative to LRR (Rogers et al., MICRO-45).
    """

    name = "gto"

    def __init__(self) -> None:
        super().__init__()
        self._current: Optional[int] = None

    def reset(self, num_warps: int) -> None:
        super().reset(num_warps)
        self._current = None

    def select(self, candidates: Sequence[IssueCandidate], cycle: int) -> Optional[int]:
        if not candidates:
            return None
        ready = {c.warp_id for c in candidates}
        if self._current in ready:
            return self._current
        oldest = min(ready)
        self._current = oldest
        return oldest

    def notify_warp_finished(self, warp_id: int) -> None:
        if self._current == warp_id:
            self._current = None
