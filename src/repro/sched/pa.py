"""Prefetch-Aware scheduling (Jog et al., ISCA '13 / OWL).

The OWL family schedules warps in fetch groups whose members are
*non-consecutive*, so concurrently-executing warps touch spread-out memory
regions. That spreads demand across DRAM banks and — with a prefetcher —
lets one group's demand accesses cover the next group's lines. We model it
as a two-level scheduler with interleaved group membership.
"""

from __future__ import annotations

from repro.sched.twolevel import TwoLevelScheduler


class PAScheduler(TwoLevelScheduler):
    """Two-level scheduling over interleaved (non-consecutive) warp groups."""

    name = "pa"

    def __init__(self, group_size: int = 8):
        super().__init__(group_size=group_size, interleaved=True)
