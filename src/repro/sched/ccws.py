"""Cache-Conscious Wavefront Scheduling (Rogers et al., MICRO-45).

CCWS detects *lost intra-warp locality*: each warp owns a small victim tag
array (VTA) recording lines that warp brought into L1 and later lost. A
miss that hits the warp's VTA means the warp would have hit with less
contention, so its lost-locality score (LLS) is bumped. Warps are ranked
by score and the lowest-scored warps lose the right to issue loads until
the cumulative score fits under a fixed cutoff — effectively shrinking the
set of warps competing for the cache.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.mem.victim import VictimTagArray
from repro.sched.base import IssueCandidate, WarpScheduler


class CCWSScheduler(WarpScheduler):
    """Lost-locality-scored load throttling with greedy-then-oldest ordering."""

    name = "ccws"

    #: Every warp's resting score; the cutoff is ``num_warps * BASE_SCORE``.
    BASE_SCORE = 100

    def __init__(
        self,
        lld_gain: int = 300,
        decay_per_cycle: float = 0.25,
        score_cap: int = 600,
        min_active: int = 18,
        vta_sets: int = 8,
        vta_assoc: int = 8,
    ):
        super().__init__()
        self._gain = lld_gain
        self._decay = decay_per_cycle
        self._cap = score_cap
        self._min_active = min_active
        self._vta_sets = vta_sets
        self._vta_assoc = vta_assoc
        self._vtas: list[VictimTagArray] = []
        self._scores: list[float] = []
        self._score_cycle: list[int] = []
        self._finished: set[int] = set()
        self._next = 0
        self._allowed_cache: Optional[set[int]] = None
        self._allowed_cache_cycle = -1
        #: Cycles the allowed-set cache stays valid absent score changes.
        self._refresh_interval = 32

    def reset(self, num_warps: int) -> None:
        super().reset(num_warps)
        self._vtas = [
            VictimTagArray(self._vta_sets, self._vta_assoc) for _ in range(num_warps)
        ]
        self._scores = [float(self.BASE_SCORE)] * num_warps
        self._score_cycle = [0] * num_warps
        self._finished = set()
        self._next = 0
        self._allowed_cache = None
        self._allowed_cache_cycle = -1

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------

    def score(self, warp_id: int, cycle: int) -> float:
        """Current (lazily decayed) lost-locality score of a warp."""
        if warp_id in self._finished:
            return 0.0
        raw = self._scores[warp_id] - self._decay * (cycle - self._score_cycle[warp_id])
        return max(float(self.BASE_SCORE), raw)

    def _settle(self, warp_id: int, cycle: int) -> None:
        self._scores[warp_id] = self.score(warp_id, cycle)
        self._score_cycle[warp_id] = cycle

    def load_allowed_warps(self, cycle: int) -> set[int]:
        """Warps currently eligible to issue loads (cached between changes).

        Warps are sorted by score (descending); warps are admitted while
        the cumulative score stays within ``num_warps * BASE_SCORE``. With
        no lost locality every warp is admitted.
        """
        if (
            self._allowed_cache is not None
            and cycle - self._allowed_cache_cycle < self._refresh_interval
        ):
            return self._allowed_cache
        allowed = self._compute_allowed(cycle)
        self._allowed_cache = allowed
        self._allowed_cache_cycle = cycle
        return allowed

    def _compute_allowed(self, cycle: int) -> set[int]:
        live = [w for w in range(self._num_warps) if w not in self._finished]
        order = sorted(live, key=lambda w: (-self.score(w, cycle), w))
        cutoff = self._num_warps * self.BASE_SCORE
        allowed: set[int] = set()
        total = 0.0
        for wid in order:
            total += self.score(wid, cycle)
            if total > cutoff and len(allowed) >= self._min_active:
                break
            allowed.add(wid)
        return allowed

    # ------------------------------------------------------------------
    # Scheduler interface
    # ------------------------------------------------------------------

    def select(self, candidates: Sequence[IssueCandidate], cycle: int) -> Optional[int]:
        if not candidates:
            return None
        allowed_loads = self.load_allowed_warps(cycle)
        eligible = {
            c.warp_id for c in candidates if not c.is_mem or c.warp_id in allowed_loads
        }
        self.events += 1
        if not eligible:
            return None
        # Round-robin among eligible warps: CCWS gates *which* warps may
        # issue loads; within that set it keeps the baseline's fairness.
        n = self._num_warps
        for offset in range(n):
            wid = (self._next + offset) % n
            if wid in eligible:
                self._next = (wid + 1) % n
                return wid
        return None

    def notify_load_result(self, access) -> None:
        if access.primary_hit:
            return
        wid = access.warp_id
        line = access.line_addrs[0]
        if self._vtas[wid].probe(line):
            self._settle(wid, access.cycle)
            self._scores[wid] = min(self._scores[wid] + self._gain, float(self._cap))
            self._allowed_cache = None
            self.events += 1

    def notify_eviction(self, filler_warp: int, line_addr: int) -> None:
        if 0 <= filler_warp < len(self._vtas):
            self._vtas[filler_warp].record_eviction(line_addr)
            self.events += 1

    def notify_warp_finished(self, warp_id: int) -> None:
        # A finished warp should not hold score (and cache quota) hostage.
        self._finished.add(warp_id)
        self._allowed_cache = None
