"""Loose Round-Robin — the paper's baseline scheduler."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.sched.base import IssueCandidate, WarpScheduler


class LRRScheduler(WarpScheduler):
    """Equal priority for all warps, scanned circularly from the last issuer.

    All ready warps get a turn before any warp gets a second one, which
    makes every warp reach long-latency loads at roughly the same time —
    the behaviour Section VI blames for memory contention.
    """

    name = "lrr"

    def __init__(self) -> None:
        super().__init__()
        self._next = 0

    def reset(self, num_warps: int) -> None:
        super().reset(num_warps)
        self._next = 0

    def select(self, candidates: Sequence[IssueCandidate], cycle: int) -> Optional[int]:
        if not candidates:
            return None
        ready = {c.warp_id for c in candidates}
        n = self._num_warps
        for offset in range(n):
            wid = (self._next + offset) % n
            if wid in ready:
                self._next = (wid + 1) % n
                return wid
        return None
