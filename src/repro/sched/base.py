"""Warp-scheduler interface.

Every cycle the SM pipeline offers the scheduler the set of issue-ready
warps (with a flag saying whether each warp's next instruction is a memory
operation, so throttling policies like CCWS/MASCAR can gate loads without
gating arithmetic). The load-store unit feeds back per-load cache outcomes
— the signal LAWS builds its groups on — and the L1 reports evictions for
CCWS's victim tags.
"""

from __future__ import annotations

import abc
from typing import NamedTuple, Optional, Sequence

from repro.mem.cache import L1Cache
from repro.mem.request import LoadAccess


class IssueCandidate(NamedTuple):
    """A warp that could issue this cycle."""

    warp_id: int
    #: True if the warp's next instruction is a load or store.
    is_mem: bool


class WarpScheduler(abc.ABC):
    """Base class for issue schedulers.

    Subclasses override :meth:`select`; the notification hooks default to
    no-ops. ``events`` counts bookkeeping operations for the energy model.
    """

    name = "base"

    def __init__(self) -> None:
        self.events = 0
        self._num_warps = 0
        self._l1: Optional[L1Cache] = None
        #: Per-SM telemetry proxy (set by the pipeline when tracing).
        self.telemetry = None

    def reset(self, num_warps: int) -> None:
        """(Re)initialise state for an SM with ``num_warps`` warps."""
        self._num_warps = num_warps

    def attach_l1(self, l1: L1Cache) -> None:
        """Give occupancy-sensitive policies (MASCAR) a view of the L1."""
        self._l1 = l1

    @abc.abstractmethod
    def select(self, candidates: Sequence[IssueCandidate], cycle: int) -> Optional[int]:
        """Pick the warp to issue this cycle, or ``None`` to stay idle."""

    # ------------------------------------------------------------------
    # Feedback hooks
    # ------------------------------------------------------------------

    def notify_issue(self, warp_id: int, is_mem: bool, cycle: int) -> None:
        """An instruction from ``warp_id`` was issued."""

    def notify_load_result(self, access: LoadAccess) -> None:
        """LSU feedback: a load's primary request hit or missed L1."""

    def notify_eviction(self, filler_warp: int, line_addr: int) -> None:
        """L1 evicted a line that ``filler_warp`` brought in."""

    def notify_mem_complete(self, warp_id: int, cycle: int) -> None:
        """All outstanding memory requests of ``warp_id`` completed."""

    def notify_prefetch_targets(self, target_warps: Sequence[int]) -> None:
        """The prefetcher issued prefetches on behalf of these warps."""

    def notify_warp_finished(self, warp_id: int) -> None:
        """``warp_id`` retired its last instruction."""
