"""CAWA-style criticality-aware warp scheduling (Lee et al., ISCA '15).

Kernel time is bounded by the slowest (critical) warp. CAWA predicts
criticality from lag — how far a warp's retired-instruction count trails
the leader's — and gives critical warps issue priority so the tail
shrinks. This is the greedy-oldest family's opposite: instead of running
leaders further ahead, it drags stragglers forward. Included as a
related-work baseline (Section VI cites CAWA/CAWS among the scheduling
techniques APRES is positioned against).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.sched.base import IssueCandidate, WarpScheduler


class CAWAScheduler(WarpScheduler):
    """Most-lagging-warp-first issue scheduling."""

    name = "cawa"

    def __init__(self) -> None:
        super().__init__()
        self._retired: list[int] = []

    def reset(self, num_warps: int) -> None:
        super().reset(num_warps)
        self._retired = [0] * num_warps

    def criticality(self, warp_id: int) -> int:
        """Instructions this warp trails the leader by (>= 0)."""
        return max(self._retired) - self._retired[warp_id]

    def select(self, candidates: Sequence[IssueCandidate], cycle: int) -> Optional[int]:
        if not candidates:
            return None
        # Most critical first; warp id breaks ties deterministically.
        chosen = min(candidates, key=lambda c: (self._retired[c.warp_id], c.warp_id))
        return chosen.warp_id

    def notify_issue(self, warp_id: int, is_mem: bool, cycle: int) -> None:
        self._retired[warp_id] += 1
        self.events += 1

    def notify_warp_finished(self, warp_id: int) -> None:
        # A finished warp must not define the lag baseline.
        self._retired[warp_id] = -1
