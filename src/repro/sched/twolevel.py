"""Two-level warp scheduling (Narasiman et al., MICRO-44)."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.sched.base import IssueCandidate, WarpScheduler


class TwoLevelScheduler(WarpScheduler):
    """Warps split into fetch groups; one group is active at a time.

    The active group is scheduled round-robin; when none of its warps can
    issue (they all hit long-latency operations) the scheduler activates
    the next group, hiding the stall behind fresh warps.
    """

    name = "twolevel"

    def __init__(self, group_size: int = 8, interleaved: bool = False):
        super().__init__()
        if group_size < 1:
            raise ValueError("group size must be positive")
        self._group_size = group_size
        self._interleaved = interleaved
        self._active_group = 0
        self._next_in_group = 0
        self._groups: list[list[int]] = []

    def reset(self, num_warps: int) -> None:
        super().reset(num_warps)
        num_groups = max(1, (num_warps + self._group_size - 1) // self._group_size)
        self._groups = [[] for _ in range(num_groups)]
        for wid in range(num_warps):
            if self._interleaved:
                self._groups[wid % num_groups].append(wid)
            else:
                self._groups[wid // self._group_size].append(wid)
        self._active_group = 0
        self._next_in_group = 0

    def group_of(self, warp_id: int) -> int:
        """Group index of a warp (membership is static)."""
        if self._interleaved:
            return warp_id % len(self._groups)
        return warp_id // self._group_size

    def select(self, candidates: Sequence[IssueCandidate], cycle: int) -> Optional[int]:
        if not candidates:
            return None
        ready = {c.warp_id for c in candidates}
        num_groups = len(self._groups)
        for g_offset in range(num_groups):
            gid = (self._active_group + g_offset) % num_groups
            group = self._groups[gid]
            if not group:
                continue
            for w_offset in range(len(group)):
                idx = (self._next_in_group + w_offset) % len(group)
                wid = group[idx]
                if wid in ready:
                    if gid != self._active_group:
                        self._active_group = gid
                        self._next_in_group = 0
                        idx = group.index(wid)
                    self._next_in_group = (idx + 1) % len(group)
                    return wid
        return None
