"""Warp schedulers: LRR baseline plus the techniques APRES is compared against."""

from repro.sched.base import IssueCandidate, WarpScheduler
from repro.sched.cawa import CAWAScheduler
from repro.sched.ccws import CCWSScheduler
from repro.sched.gto import GTOScheduler
from repro.sched.lrr import LRRScheduler
from repro.sched.mascar import MASCARScheduler
from repro.sched.pa import PAScheduler
from repro.sched.registry import SCHEDULERS, make_scheduler
from repro.sched.twolevel import TwoLevelScheduler

__all__ = [
    "IssueCandidate",
    "WarpScheduler",
    "CAWAScheduler",
    "CCWSScheduler",
    "GTOScheduler",
    "LRRScheduler",
    "MASCARScheduler",
    "PAScheduler",
    "TwoLevelScheduler",
    "SCHEDULERS",
    "make_scheduler",
]
