"""``python -m repro lint`` — the simlint command-line front end.

Exit codes follow the linter convention:

* ``0`` — every linted file is clean (after suppressions);
* ``1`` — at least one finding, or a failed isolation verification;
* ``2`` — the linter itself failed (unreadable path, unknown rule code,
  a rule crashed) via :class:`~repro.errors.LintError`.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional

from repro.analysis.engine import LintResult, run_lint
from repro.analysis.rules import ALL_RULES


def default_lint_path() -> Path:
    """The installed ``repro`` package directory (lint ourselves by default)."""
    import repro

    return Path(repro.__file__).resolve().parent


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach simlint's flags to the ``lint`` subparser."""
    parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "github"), default="text",
        help="output format (default: text; github emits workflow commands)",
    )
    parser.add_argument(
        "--rules", "--select", dest="rules", default=None, metavar="CODES",
        help="comma-separated rule subset, e.g. SL001,SL003 (default: all)",
    )
    parser.add_argument(
        "--verify-against-runtime", action="store_true",
        help="run a smoke simulation and cross-check SL003's static counter "
             "view against the counters the simulator actually emits",
    )
    parser.add_argument(
        "--isolation-report", default=None, metavar="FILE",
        help="write the deterministic SM-isolation report (effect analysis "
             "behind SL009) to FILE as JSON",
    )
    parser.add_argument(
        "--verify-isolation", action="store_true",
        help="run a 2-SM smoke simulation with write instrumentation and "
             "reconcile the dynamic per-SM write sets against the static "
             "isolation classification",
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="print run statistics (files, rules, findings, elapsed, parse "
             "cache) to stderr",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list the registered rules and exit",
    )


def _print_rule_listing() -> None:
    width = max(len(rule.code) for rule in ALL_RULES)
    print("simlint rules:")
    for rule in ALL_RULES:
        print(f"  {rule.code:<{width}}  {rule.title}")
    print("\nSuppress one line with '# simlint: ignore[CODE]' "
          "(or a bare '# simlint: ignore' for all rules); skip a whole file "
          "with '# simlint: skip-file' in its first five lines. Declare a "
          "class a legal cross-SM channel with '# simlint: boundary[reason]' "
          "on its 'class' line (consumed by SL009's effect analysis).")


def _print_text(result: LintResult) -> None:
    for finding in result.findings:
        print(finding.render())
    counts = ", ".join(f"{code}: {n}" for code, n in result.by_rule().items())
    if result.findings:
        print(f"\n{len(result.findings)} finding(s) in "
              f"{result.files_scanned} file(s) ({counts})")
    else:
        print(f"clean: {result.files_scanned} file(s), "
              f"{len(result.rules)} rule(s), 0 findings")
    if result.runtime_check is not None:
        check = result.runtime_check
        print(f"runtime cross-check: {len(check['runtime_counters'])} counters "
              f"emitted by {check['smoke_point']['app']}/"
              f"{check['smoke_point']['config']}, "
              f"{len(check['missing_at_runtime'])} missing at runtime, "
              f"{len(check['undeclared_at_runtime'])} undeclared in tree")
    if result.isolation_check is not None:
        check = result.isolation_check
        status = "ok" if check["ok"] else "FAILED"
        print(f"isolation check: {status} — {check['dynamic_writes']} dynamic "
              f"writes over {check['num_sms']} SMs, "
              f"{len(check['static_missed'])} unclassified, "
              f"{len(check['illegal_dynamic'])} cross-SM outside the boundary, "
              f"{len(check['stale_boundary'])} stale boundary class(es)")


def _print_github(result: LintResult) -> None:
    """GitHub workflow commands — annotates the PR diff in Actions runs."""
    for finding in result.findings:
        print(f"::error file={finding.path},line={finding.line},"
              f"col={finding.col + 1},title=simlint {finding.rule}::"
              f"{finding.message}")
    counts = ", ".join(f"{code}: {n}" for code, n in result.by_rule().items())
    if result.findings:
        print(f"{len(result.findings)} finding(s) in "
              f"{result.files_scanned} file(s) ({counts})")
    else:
        print(f"clean: {result.files_scanned} file(s), "
              f"{len(result.rules)} rule(s), 0 findings")


def _print_stats(result: LintResult) -> None:
    stats = result.run_stats
    print(
        f"simlint stats: files={stats.get('files', 0)} "
        f"rules={stats.get('rules', 0)} findings={stats.get('findings', 0)} "
        f"elapsed_s={stats.get('elapsed_s', 0.0)} "
        f"parse_cache_hits={stats.get('parse_cache_hits', 0)} "
        f"parse_cache_misses={stats.get('parse_cache_misses', 0)}",
        file=sys.stderr,
    )


def cmd_lint(args: argparse.Namespace) -> int:
    """Entry point for the ``lint`` subcommand (wired in :mod:`repro.cli`)."""
    if args.list_rules:
        _print_rule_listing()
        return 0
    paths: list[Path] = [Path(p) for p in args.paths] or [default_lint_path()]
    rule_codes: Optional[list[str]] = (
        args.rules.split(",") if args.rules else None
    )
    result = run_lint(paths, rule_codes=rule_codes)
    if args.verify_against_runtime:
        from repro.analysis.runtime_check import verify_against_runtime

        verify_against_runtime(result)
    if getattr(args, "isolation_report", None):
        from repro.analysis.effects import isolation_report_for

        report = isolation_report_for(result.project)
        Path(args.isolation_report).write_text(
            json.dumps(report, indent=2) + "\n"
        )
    isolation_failed = False
    if getattr(args, "verify_isolation", False):
        from repro.analysis.effects.sanitizer import verify_isolation

        verify_isolation(result)
        isolation_failed = not (
            result.isolation_check is not None and result.isolation_check["ok"]
        )
    if args.format == "json":
        print(json.dumps(result.as_json_dict(), indent=2, sort_keys=True))
    elif args.format == "github":
        _print_github(result)
    else:
        _print_text(result)
    if getattr(args, "stats", False):
        _print_stats(result)
    return 1 if (result.findings or isolation_failed) else 0
