"""``python -m repro lint`` — the simlint command-line front end.

Exit codes follow the linter convention:

* ``0`` — every linted file is clean (after suppressions);
* ``1`` — at least one finding;
* ``2`` — the linter itself failed (unreadable path, unknown rule code,
  a rule crashed) via :class:`~repro.errors.LintError`.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Optional

from repro.analysis.engine import LintResult, run_lint
from repro.analysis.rules import ALL_RULES


def default_lint_path() -> Path:
    """The installed ``repro`` package directory (lint ourselves by default)."""
    import repro

    return Path(repro.__file__).resolve().parent


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach simlint's flags to the ``lint`` subparser."""
    parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--rules", default=None, metavar="CODES",
        help="comma-separated rule subset, e.g. SL001,SL003 (default: all)",
    )
    parser.add_argument(
        "--verify-against-runtime", action="store_true",
        help="run a smoke simulation and cross-check SL003's static counter "
             "view against the counters the simulator actually emits",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list the registered rules and exit",
    )


def _print_rule_listing() -> None:
    width = max(len(rule.code) for rule in ALL_RULES)
    print("simlint rules:")
    for rule in ALL_RULES:
        print(f"  {rule.code:<{width}}  {rule.title}")
    print("\nSuppress one line with '# simlint: ignore[CODE]' "
          "(or a bare '# simlint: ignore' for all rules); skip a whole file "
          "with '# simlint: skip-file' in its first five lines.")


def _print_text(result: LintResult) -> None:
    for finding in result.findings:
        print(finding.render())
    counts = ", ".join(f"{code}: {n}" for code, n in result.by_rule().items())
    if result.findings:
        print(f"\n{len(result.findings)} finding(s) in "
              f"{result.files_scanned} file(s) ({counts})")
    else:
        print(f"clean: {result.files_scanned} file(s), "
              f"{len(result.rules)} rule(s), 0 findings")
    if result.runtime_check is not None:
        check = result.runtime_check
        print(f"runtime cross-check: {len(check['runtime_counters'])} counters "
              f"emitted by {check['smoke_point']['app']}/"
              f"{check['smoke_point']['config']}, "
              f"{len(check['missing_at_runtime'])} missing at runtime, "
              f"{len(check['undeclared_at_runtime'])} undeclared in tree")


def cmd_lint(args: argparse.Namespace) -> int:
    """Entry point for the ``lint`` subcommand (wired in :mod:`repro.cli`)."""
    if args.list_rules:
        _print_rule_listing()
        return 0
    paths: list[Path] = [Path(p) for p in args.paths] or [default_lint_path()]
    rule_codes: Optional[list[str]] = (
        args.rules.split(",") if args.rules else None
    )
    result = run_lint(paths, rule_codes=rule_codes)
    if args.verify_against_runtime:
        from repro.analysis.runtime_check import verify_against_runtime

        verify_against_runtime(result)
    if args.format == "json":
        print(json.dumps(result.as_json_dict(), indent=2, sort_keys=True))
    else:
        _print_text(result)
    return 1 if result.findings else 0
