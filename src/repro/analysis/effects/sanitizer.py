"""``--verify-isolation`` — reconcile dynamic writes with the static proof.

Runs a tiny 2-SM smoke simulation (KM workload, base config, 0.1 scale)
— once on the serial engine and once on the epoch-barrier shard engine,
so both memory back-ends leave dynamic evidence — with
:class:`repro.integrity.isolation.WriteRecorder` instrumentation and
checks that evidence against the effect analysis' classification:

1. **static_missed** — a ``(class, attr)`` written inside some SM's
   ``cycle`` that the static walk never classified. Either the call graph
   has a hole (a callback the analysis could not type) or the write is
   genuinely unreachable in its model; both deserve a look.
2. **illegal_dynamic** — an object written by two or more distinct SMs
   on an attribute whose static classification does not include the
   boundary (and whose class is not boundary-owned). This is the direct
   dynamic witness of a cross-SM race the static analysis should have
   flagged as SL009.
3. **stale_boundary** — instrumented boundary classes that saw no write
   at all during the run phase. Informational: the annotation may be
   stale, or the smoke workload simply never exercised the class.

The check fails (CLI exit 1) on 1 or 2; 3 is reported but allowed.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.analysis.effects import analyze_project
from repro.analysis.effects.model import (
    CLS_BOUNDARY,
    CLS_SM_PRIVATE,
    OWN_BOUNDARY,
    ProjectEffects,
)
from repro.analysis.effects.report import static_write_index
from repro.analysis.engine import LintResult

#: The smoke point: small enough for CI, busy enough to touch L1/L2/DRAM.
SMOKE_WORKLOAD = "KM"
SMOKE_CONFIG = "base"
SMOKE_SCALE = 0.1
SMOKE_NUM_SMS = 2
#: Shard count for the sanitizer's second (epoch-barrier engine) leg.
SMOKE_SHARDS = 2


def _static_classifications(
    static_index: dict[tuple[str, str], set[str]],
    mro: tuple[str, ...],
    attr: str,
) -> Optional[set[str]]:
    """Union of classifications across the dynamic type's MRO, else None."""
    found: set[str] = set()
    hit = False
    for name in mro:
        classifications = static_index.get((name, attr))
        if classifications is not None:
            hit = True
            found.update(classifications)
    return found if hit else None


def reconcile(
    recorder: Any,
    effects: ProjectEffects,
    instrumented_names: set[str],
) -> dict[str, Any]:
    """Run the three reconciliation checks over a filled WriteRecorder."""
    static_index = static_write_index(effects)
    boundary_classes = {
        name
        for name, cls in effects.classes.items()
        if cls.boundary_reason is not None
    }

    #: class name -> MRO names, from the dynamically observed objects.
    mro_of: dict[str, tuple[str, ...]] = {}
    for mro, _sm_ctxs, _attrs in recorder.objects.values():
        mro_of.setdefault(mro[0], mro)

    # Check 1: every sm-context write location must be statically known.
    static_missed: list[str] = []
    for (cls_name, attr), contexts in recorder.writes.items():
        if not any(ctx.startswith("sm") for ctx in contexts):
            continue
        mro = mro_of.get(cls_name, (cls_name,))
        classifications = _static_classifications(static_index, mro, attr)
        if classifications is None or not (
            classifications & {CLS_SM_PRIVATE, CLS_BOUNDARY}
        ):
            static_missed.append(f"{cls_name}.{attr}")

    # Check 2: multi-SM-written objects must sit behind the boundary.
    illegal_dynamic: list[str] = []
    for mro, sm_ctxs, attrs in recorder.objects.values():
        if len(sm_ctxs) < 2:
            continue
        behind_boundary = any(
            name in boundary_classes
            or effects.ownership.get(name) == OWN_BOUNDARY
            for name in mro
        )
        for attr in attrs:
            classifications = _static_classifications(static_index, mro, attr)
            if behind_boundary or (
                classifications is not None and CLS_BOUNDARY in classifications
            ):
                continue
            illegal_dynamic.append(
                f"{mro[0]}.{attr} written by {', '.join(sorted(sm_ctxs))}"
            )

    # Check 3: boundary classes the run never touched (informational).
    stale_boundary = sorted(
        (boundary_classes & instrumented_names) - recorder.touched_classes
    )

    static_missed = sorted(set(static_missed))
    illegal_dynamic = sorted(set(illegal_dynamic))
    return {
        "ok": not static_missed and not illegal_dynamic,
        "dynamic_writes": recorder.total_writes,
        "dynamic_locations": len(recorder.writes),
        "sm_written_objects": sum(
            1 for _, sm_ctxs, _ in recorder.objects.values() if sm_ctxs
        ),
        "multi_sm_objects": sum(
            1 for _, sm_ctxs, _ in recorder.objects.values() if len(sm_ctxs) >= 2
        ),
        "static_missed": static_missed,
        "illegal_dynamic": illegal_dynamic,
        "stale_boundary": stale_boundary,
    }


def run_isolation_smoke(
    effects: ProjectEffects, num_sms: int = SMOKE_NUM_SMS
) -> dict[str, Any]:
    """Instrument, simulate, reconcile; returns the isolation-check dict."""
    from repro.experiments.configs import CONFIGS, experiment_gpu_config
    from repro.integrity.isolation import CTX_EPOCH, WriteRecorder, hot_simulator_classes
    from repro.sm.pipeline import SMCore
    from repro.sm.simulator import GPUSimulator
    from repro.workloads.suite import workload
    from repro.workloads.synthetic import build_kernel

    recorder = WriteRecorder()
    instrumented = hot_simulator_classes()
    recorder.install(instrumented)
    recorder.wrap_cycle(SMCore)
    try:
        spec = workload(SMOKE_WORKLOAD)
        kernel = build_kernel(spec, SMOKE_SCALE)
        cfg = experiment_gpu_config(num_sms)
        engine = CONFIGS[SMOKE_CONFIG].build
        simulator = GPUSimulator(kernel, cfg, engine)
        recorder.context = CTX_EPOCH
        simulator.run()
        # Second leg: the epoch-barrier shard engine, so its boundary
        # classes (SharedL2Core, ShardMemoryProxy) are reconciled against
        # dynamic evidence too, not just the serial subsystem's.
        from repro.shard import ShardPlan, shard_execute

        shard_execute(kernel, cfg, engine, ShardPlan(SMOKE_SHARDS, 1))
    finally:
        recorder.uninstall()

    check = reconcile(
        recorder, effects, {cls.__name__ for cls in instrumented}
    )
    check.update(
        {
            "workload": SMOKE_WORKLOAD,
            "config": SMOKE_CONFIG,
            "scale": SMOKE_SCALE,
            "num_sms": num_sms,
        }
    )
    return check


def verify_isolation(result: LintResult) -> dict[str, Any]:
    """Populate ``result.isolation_check`` from a fresh smoke run."""
    effects = analyze_project(result.project)
    check = run_isolation_smoke(effects)
    result.isolation_check = check
    return check
