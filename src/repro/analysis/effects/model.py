"""Data model for the interprocedural effect analysis behind SL009/SL010.

The analysis runs in three stages (see :mod:`repro.analysis.effects`):

1. :mod:`extract` lowers every module into the symbolic IR defined here —
   per-method write records, call sites and aliasing facts expressed as
   :class:`Origin` access paths, never as live Python objects.
2. :mod:`ownership` resolves origins against class/field type tables,
   assigns every class an ownership value on the lattice
   ``unknown → {per_sm, shared, boundary} → mixed`` and walks the call
   graph from the SM cycle roots, tagging each node with the execution
   context it is reached under.
3. :mod:`report` folds the classified writes into the deterministic
   isolation report consumed by ``--isolation-report`` and CI.

Everything in this module is plain data: no AST nodes escape extraction,
so the downstream passes and the report are trivially deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:
    from repro.analysis.engine import ModuleInfo

# --- Class ownership lattice -------------------------------------------------
OWN_UNKNOWN = "unknown"
OWN_PER_SM = "per_sm"
OWN_SHARED = "shared"
OWN_BOUNDARY = "boundary"
OWN_MIXED = "mixed"

# --- Execution-context tags on call-graph nodes ------------------------------
TAG_PRIVATE = "private"
TAG_BOUNDARY = "boundary"
TAG_SHARED = "shared"

# --- Per-location classifications -------------------------------------------
CLS_SM_PRIVATE = "sm_private"
CLS_BOUNDARY = "boundary"
CLS_ILLEGAL = "illegal_shared"
CLS_UNRESOLVED = "unresolved"


@dataclass(frozen=True)
class Origin:
    """Symbolic origin of a runtime value within one method body.

    ``kind`` roots the access path:

    - ``self``     — the receiver of the enclosing method
    - ``param``    — a parameter (``name``)
    - ``loopvar``  — the loop variable of a fan-out loop (``name``)
    - ``global``   — a module-level name (``name``)
    - ``super``    — ``super()`` inside a method
    - ``rname``    — result of calling a bare name (class or function)
    - ``rmeth``    — result of a method call on ``base``
    - ``elem``     — an element of the container ``base`` (``index_name``
      keeps the subscript index when it was a bare name)
    - ``opaque``   — anything the extractor does not track

    ``chain`` is the sequence of attribute hops applied after the root.
    """

    kind: str
    name: str = ""
    chain: tuple[str, ...] = ()
    base: Optional["Origin"] = None
    index_name: str = ""

    def hop(self, attr: str) -> "Origin":
        return replace(self, chain=self.chain + (attr,))

    def render(self) -> str:
        """Human-readable path for diagnostics, e.g. ``self._subsystem.events``."""
        if self.kind == "self":
            root = "self"
        elif self.kind in ("param", "loopvar", "global"):
            root = self.name
        elif self.kind == "super":
            root = "super()"
        elif self.kind == "rname":
            root = f"{self.name}()"
        elif self.kind == "rmeth":
            base = self.base.render() if self.base else "?"
            root = f"{base}.{self.name}()"
        elif self.kind == "elem":
            base = self.base.render() if self.base else "?"
            root = f"{base}[...]"
        else:
            root = "?"
        return ".".join((root, *self.chain)) if self.chain else root


OPAQUE = Origin("opaque")


@dataclass(frozen=True)
class TypeRef:
    """A resolved-enough type: a project class and/or a container element."""

    direct: Optional[str] = None
    elem: Optional[str] = None


UNTYPED = TypeRef()


@dataclass(frozen=True)
class WriteRec:
    """One attribute/container mutation: ``target``.``attr`` ``<kind>``-written.

    ``kind`` is ``attr`` (plain assignment), ``aug`` (augmented assignment),
    ``container`` (mutation of the container held in ``attr``; ``attr`` may
    be ``""`` when the mutated object itself is the target, e.g. a
    subscript-assign through a bare parameter) or ``ctor`` (synthesised
    dataclass-``__init__`` field write). ``value`` keeps the RHS origin of
    plain assignments for field typing and bound-method binding detection.
    """

    target: Origin
    attr: str
    kind: str
    lineno: int
    col: int
    value: Optional[Origin] = None
    ann: TypeRef = UNTYPED


@dataclass(frozen=True)
class GlobalWriteRec:
    """A rebind or container mutation of a module-level name."""

    name: str
    module_hint: str
    kind: str
    lineno: int
    col: int


@dataclass(frozen=True)
class ArgInfo:
    origin: Origin
    keyword: str = ""
    per_sm: bool = False


@dataclass(frozen=True)
class CallSite:
    """One call expression.

    ``kind`` is ``name`` (bare-name call — constructor or function, decided
    during resolution), ``method`` (attribute call on ``receiver``) or
    ``value`` (calling a tracked local/parameter value — dispatches to the
    resolved type's ``__call__``). ``maybe_container`` marks method names
    that collide with builtin container mutators (``insert``, ``pop``, …);
    resolution treats them as container writes only when the receiver does
    not resolve to a project class defining the method.
    """

    kind: str
    callee: str = ""
    receiver: Optional[Origin] = None
    method: str = ""
    args: tuple[ArgInfo, ...] = ()
    fanout: bool = False
    maybe_container: bool = False
    lineno: int = 0
    col: int = 0


@dataclass
class MethodIR:
    """Effect summary of one function or method body."""

    name: str
    lineno: int
    params: tuple[str, ...] = ()
    param_types: dict[str, TypeRef] = field(default_factory=dict)
    return_type: TypeRef = UNTYPED
    is_property: bool = False
    writes: list[WriteRec] = field(default_factory=list)
    global_writes: list[GlobalWriteRec] = field(default_factory=list)
    calls: list[CallSite] = field(default_factory=list)
    reads: set[str] = field(default_factory=set)
    self_ann_fields: dict[str, TypeRef] = field(default_factory=dict)
    mutable_defaults: list[tuple[str, int]] = field(default_factory=list)


@dataclass
class ClassIR:
    """Effect summary of one class definition."""

    name: str
    module: "ModuleInfo"
    lineno: int
    bases: tuple[str, ...] = ()
    boundary_reason: Optional[str] = None
    is_dataclass: bool = False
    is_frozen: bool = False
    methods: dict[str, MethodIR] = field(default_factory=dict)
    ann_fields: dict[str, TypeRef] = field(default_factory=dict)
    dataclass_factories: dict[str, str] = field(default_factory=dict)
    class_mutable_attrs: list[tuple[str, int]] = field(default_factory=list)


@dataclass
class ModuleIR:
    """Effect summary of one module."""

    info: "ModuleInfo"
    classes: list[ClassIR] = field(default_factory=list)
    functions: dict[str, MethodIR] = field(default_factory=dict)
    module_mutables: dict[str, int] = field(default_factory=dict)
    imported: dict[str, tuple[str, str]] = field(default_factory=dict)
    module_globals: set[str] = field(default_factory=set)


@dataclass(frozen=True)
class ClassifiedWrite:
    """One write record after resolution: where, what, and its verdict."""

    cls: str
    attr: str
    classification: str
    kind: str
    writer: str
    path: str
    lineno: int
    col: int
    tag: str
    detail: str = ""


@dataclass(frozen=True)
class UnresolvedCall:
    """A call (or write target) the analysis could not type."""

    caller: str
    expr: str
    path: str
    lineno: int


@dataclass
class ProjectEffects:
    """Everything the report, SL009 and SL010 need, fully resolved."""

    modules: list[ModuleIR]
    classes: dict[str, ClassIR]
    subclasses: dict[str, set[str]]
    ownership: dict[str, str]
    field_types: dict[tuple[str, str], TypeRef]
    sm_classes: list[str]
    roots: list[tuple[str, str]]
    node_tags: dict[tuple[str, str], set[str]]
    writes: list[ClassifiedWrite]
    global_writes: list[ClassifiedWrite]
    unresolved: list[UnresolvedCall]
