"""Lower parsed modules into the effect IR (:mod:`repro.analysis.effects.model`).

One pass per module, purely syntactic: the extractor tracks local aliases
(``stats = self._stats``), fan-out loops (a ``for`` whose iterable mentions
``num_sms``), container mutations (including through subscript aliases and
``heapq``), and records every call with enough symbolic context for the
ownership pass to resolve it later. It never imports or executes the code
under analysis.
"""

from __future__ import annotations

import ast
from dataclasses import replace
from typing import Optional, Sequence, Union

from repro.analysis.engine import ModuleInfo

from repro.analysis.effects.model import (
    OPAQUE,
    UNTYPED,
    ArgInfo,
    CallSite,
    ClassIR,
    GlobalWriteRec,
    MethodIR,
    ModuleIR,
    Origin,
    TypeRef,
    WriteRec,
)

#: Method names that mutate builtin containers. A call through one of these
#: is a container write unless the receiver resolves to a project class that
#: defines the method itself (``TagArray.insert`` vs ``list.insert``).
CONTAINER_MUTATORS = frozenset(
    {
        "append", "appendleft", "extend", "extendleft", "insert", "add",
        "discard", "remove", "update", "setdefault", "pop", "popitem",
        "popleft", "clear", "sort", "reverse", "rotate", "move_to_end",
    }
)

#: Container accessors whose result is an *element* of the receiver.
CONTAINER_ACCESSORS = frozenset({"get", "pop", "popleft", "popitem"})

_HEAPQ_MUTATORS = frozenset(
    {"heappush", "heappop", "heapify", "heapreplace", "heappushpop"}
)

#: Calls to these bare names are builtins, not project constructors.
_BUILTINS = frozenset(
    {
        "abs", "all", "any", "bool", "bytes", "callable", "chr", "dict",
        "divmod", "enumerate", "filter", "float", "format", "frozenset",
        "getattr", "hasattr", "hash", "id", "int", "isinstance",
        "issubclass", "iter", "len", "list", "map", "max", "min", "next",
        "object", "open", "ord", "print", "property", "range", "repr",
        "reversed", "round", "set", "setattr", "sorted", "str", "sum",
        "tuple", "type", "vars", "zip", "bin", "hex", "oct", "pow",
        "delattr", "slice", "memoryview", "complex",
    }
)

#: Constructor calls producing mutable builtin containers (for SL010).
_MUTABLE_FACTORIES = frozenset(
    {"dict", "list", "set", "bytearray", "OrderedDict", "defaultdict", "deque", "Counter"}
)

_FuncDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def parse_annotation(node: Optional[ast.expr]) -> TypeRef:
    """Normalise an annotation expression to a :class:`TypeRef`.

    ``Optional[X]``/``X | None`` unwrap to ``X``; ``list[X]``/``dict[K, V]``
    and friends become element types; anything else degrades to untyped.
    """
    if node is None:
        return UNTYPED
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return UNTYPED
    if isinstance(node, ast.Name):
        if node.id == "None":
            return UNTYPED
        return TypeRef(direct=node.id)
    if isinstance(node, ast.Attribute):
        return TypeRef(direct=node.attr)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        left = parse_annotation(node.left)
        return left if left != UNTYPED else parse_annotation(node.right)
    if isinstance(node, ast.Subscript):
        base = node.value
        base_name = base.id if isinstance(base, ast.Name) else (
            base.attr if isinstance(base, ast.Attribute) else ""
        )
        inner = node.slice
        if base_name == "Optional":
            return parse_annotation(inner)
        if base_name in ("list", "List", "deque", "Deque", "set", "Set",
                         "frozenset", "FrozenSet", "Sequence", "Iterable",
                         "Iterator", "tuple", "Tuple"):
            elt = inner.elts[0] if isinstance(inner, ast.Tuple) and inner.elts else inner
            return TypeRef(elem=parse_annotation(elt).direct)
        if base_name in ("dict", "Dict", "OrderedDict", "DefaultDict",
                         "defaultdict", "Mapping", "MutableMapping"):
            if isinstance(inner, ast.Tuple) and len(inner.elts) == 2:
                return TypeRef(elem=parse_annotation(inner.elts[1]).direct)
            return UNTYPED
    return UNTYPED


def _is_mutable_literal(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else ""
        )
        return name in _MUTABLE_FACTORIES
    return False


def _decorator_name(node: ast.expr) -> str:
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return ""


class _MethodExtractor:
    """Walk one function body, producing its :class:`MethodIR`."""

    def __init__(
        self,
        func: _FuncDef,
        module_ir: ModuleIR,
        in_class: bool,
    ) -> None:
        self.ir = MethodIR(name=func.name, lineno=func.lineno)
        self.module_ir = module_ir
        args = func.args
        all_args = [*args.posonlyargs, *args.args, *args.kwonlyargs]
        if in_class and all_args and all_args[0].arg in ("self", "cls"):
            all_args = all_args[1:]
        self.ir.params = tuple(a.arg for a in [*args.posonlyargs, *args.args]
                               if a.arg not in ("self", "cls"))
        for a in all_args:
            self.ir.param_types[a.arg] = parse_annotation(a.annotation)
        self.ir.return_type = parse_annotation(func.returns)
        self.ir.is_property = any(
            _decorator_name(d) in ("property", "cached_property")
            for d in func.decorator_list
        )
        defaults = list(args.defaults)
        pos = [*args.posonlyargs, *args.args]
        for arg_node, default in zip(pos[len(pos) - len(defaults):], defaults):
            if _is_mutable_literal(default):
                self.ir.mutable_defaults.append((arg_node.arg, default.lineno))
        for arg_node, kw_default in zip(args.kwonlyargs, args.kw_defaults):
            if kw_default is not None and _is_mutable_literal(kw_default):
                self.ir.mutable_defaults.append((arg_node.arg, kw_default.lineno))

        self.in_class = in_class
        self.env: dict[str, Origin] = {}
        self.declared_global: set[str] = set()
        self.fanout_depth = 0
        self.fanout_locals: set[str] = set()
        self.loop_vars: set[str] = set()
        self.walk(func.body)

    # -- name resolution ------------------------------------------------

    def lookup(self, name: str) -> Origin:
        if name in self.env:
            return self.env[name]
        if name == "self" and self.in_class:
            return Origin("self")
        if name in self.ir.param_types:
            return Origin("param", name=name)
        if name in self.declared_global or name in self.module_ir.module_globals:
            return Origin("global", name=name)
        return OPAQUE

    # -- statements -----------------------------------------------------

    def walk(self, stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            self.stmt(stmt)

    def stmt(self, node: ast.stmt) -> None:
        if isinstance(node, ast.Assign):
            value = self.expr(node.value)
            for target in node.targets:
                self.assign_target(target, value, node.value)
        elif isinstance(node, ast.AnnAssign):
            ann = parse_annotation(node.annotation)
            value = self.expr(node.value) if node.value is not None else OPAQUE
            target = node.target
            if (isinstance(target, ast.Attribute) and
                    isinstance(target.value, ast.Name) and target.value.id == "self"):
                self.ir.self_ann_fields[target.attr] = ann
            self.assign_target(target, value, node.value)
        elif isinstance(node, ast.AugAssign):
            self.expr(node.value)
            target = node.target
            if isinstance(target, ast.Attribute):
                owner = self.expr_target(target.value)
                self.record_write(owner, target.attr, "aug", target)
            elif isinstance(target, ast.Subscript):
                self.container_write(self.expr_target(target.value), target)
                self.expr(target.slice)
            elif isinstance(target, ast.Name):
                origin = self.lookup(target.id)
                if origin.kind == "global":
                    self.record_global(origin.name, "aug", target)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    self.container_write(self.expr_target(target.value), target)
                    self.expr(target.slice)
                elif isinstance(target, ast.Attribute):
                    owner = self.expr_target(target.value)
                    self.record_write(owner, target.attr, "attr", target)
        elif isinstance(node, ast.Expr):
            self.expr(node.value)
        elif isinstance(node, ast.For):
            self.for_stmt(node)
        elif isinstance(node, ast.AsyncFor):
            self.expr(node.iter)
            self.bind_loop_target(node.target, OPAQUE)
            self.walk(node.body)
            self.walk(node.orelse)
        elif isinstance(node, ast.While):
            self.expr(node.test)
            self.walk(node.body)
            self.walk(node.orelse)
        elif isinstance(node, ast.If):
            self.expr(node.test)
            self.walk(node.body)
            self.walk(node.orelse)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                ctx = self.expr(item.context_expr)
                if item.optional_vars is not None:
                    self.assign_target(item.optional_vars, ctx, None)
            self.walk(node.body)
        elif isinstance(node, ast.Try):
            self.walk(node.body)
            for handler in node.handlers:
                if handler.name:
                    self.env[handler.name] = OPAQUE
                self.walk(handler.body)
            self.walk(node.orelse)
            self.walk(node.finalbody)
        elif isinstance(node, ast.Return):
            if node.value is not None:
                self.expr(node.value)
        elif isinstance(node, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self.expr(child)
        elif isinstance(node, ast.Global):
            self.declared_global.update(node.names)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            pass  # nested definitions: out of scope for the effect summary
        # Pass/Break/Continue/Import/Nonlocal: nothing to record.

    def for_stmt(self, node: ast.For) -> None:
        iter_origin = self.expr(node.iter)
        try:
            fanout = "num_sms" in ast.unparse(node.iter)
        except Exception:
            fanout = False
        if fanout:
            self.bind_loop_target(node.target, None)
            self.fanout_depth += 1
            before = set(self.env)
            self.walk(node.body)
            self.fanout_locals.update(set(self.env) - before)
            self.fanout_depth -= 1
        else:
            elem = (Origin("elem", base=iter_origin)
                    if iter_origin.kind != "opaque" else OPAQUE)
            self.bind_loop_target(node.target, elem)
            self.walk(node.body)
        self.walk(node.orelse)

    def bind_loop_target(self, target: ast.expr, origin: Optional[Origin]) -> None:
        """Bind loop variable(s); ``origin=None`` marks a fan-out loop var."""
        if isinstance(target, ast.Name):
            if origin is None:
                self.loop_vars.add(target.id)
                self.env[target.id] = Origin("loopvar", name=target.id)
            else:
                self.env[target.id] = origin
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self.bind_loop_target(elt, OPAQUE if origin is None else origin)

    def assign_target(
        self,
        target: ast.expr,
        value: Origin,
        value_node: Optional[ast.expr],
    ) -> None:
        if isinstance(target, ast.Name):
            if target.id in self.declared_global:
                self.record_global(target.id, "rebind", target)
            else:
                self.env[target.id] = value
                if self.fanout_depth:
                    self.fanout_locals.add(target.id)
        elif isinstance(target, ast.Attribute):
            owner = self.expr_target(target.value)
            self.record_write(owner, target.attr, "attr", target, value=value)
        elif isinstance(target, ast.Subscript):
            self.container_write(self.expr_target(target.value), target)
            self.expr(target.slice)
        elif isinstance(target, (ast.Tuple, ast.List)):
            if isinstance(value_node, ast.Tuple) and len(value_node.elts) == len(target.elts):
                for sub, elt in zip(target.elts, value_node.elts):
                    self.assign_target(sub, self.lookup_cached(elt), elt)
            else:
                for sub in target.elts:
                    self.assign_target(sub, OPAQUE, None)
        elif isinstance(target, ast.Starred):
            self.assign_target(target.value, OPAQUE, None)

    def lookup_cached(self, node: ast.expr) -> Origin:
        """Origin of an already-scanned expression (no double recording)."""
        if isinstance(node, ast.Name):
            return self.lookup(node.id)
        return OPAQUE

    # -- writes ----------------------------------------------------------

    def record_write(
        self,
        owner: Origin,
        attr: str,
        kind: str,
        node: ast.expr,
        value: Optional[Origin] = None,
    ) -> None:
        if owner.kind == "opaque":
            return
        self.ir.writes.append(
            WriteRec(owner, attr, kind, node.lineno, node.col_offset, value=value)
        )

    def container_write(self, receiver: Origin, node: ast.expr) -> None:
        resolved = container_target(receiver)
        if resolved is None:
            return
        owner, attr = resolved
        if owner.kind == "global":
            self.record_global(owner.name, "container", node)
            return
        if owner.kind == "opaque":
            return
        self.ir.writes.append(
            WriteRec(owner, attr, "container", node.lineno, node.col_offset)
        )

    def record_global(self, name: str, kind: str, node: ast.expr) -> None:
        hint = self.module_ir.imported.get(name, ("", name))[0]
        self.ir.global_writes.append(
            GlobalWriteRec(name, hint, kind, node.lineno, node.col_offset)
        )

    # -- expressions -----------------------------------------------------

    def expr_target(self, node: ast.expr) -> Origin:
        """Origin of a write-target's owner expression (records reads too)."""
        return self.expr(node)

    def expr(self, node: Optional[ast.expr]) -> Origin:
        if node is None:
            return OPAQUE
        if isinstance(node, ast.Name):
            return self.lookup(node.id)
        if isinstance(node, ast.Attribute):
            base = self.expr(node.value)
            if base.kind == "self" and not base.chain:
                self.ir.reads.add(node.attr)
            if base.kind == "opaque":
                return OPAQUE
            return base.hop(node.attr)
        if isinstance(node, ast.Subscript):
            base = self.expr(node.value)
            self.expr(node.slice)
            if base.kind == "opaque":
                return OPAQUE
            index = node.slice.id if isinstance(node.slice, ast.Name) else ""
            return Origin("elem", base=base, index_name=index)
        if isinstance(node, ast.Call):
            return self.call(node)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
            for gen in node.generators:
                iter_origin = self.expr(gen.iter)
                elem = (Origin("elem", base=iter_origin)
                        if iter_origin.kind != "opaque" else OPAQUE)
                self.bind_loop_target(gen.target, elem)
                for cond in gen.ifs:
                    self.expr(cond)
            if isinstance(node, ast.DictComp):
                self.expr(node.key)
                self.expr(node.value)
            else:
                self.expr(node.elt)
            return OPAQUE
        if isinstance(node, ast.Lambda):
            return OPAQUE  # lambda bodies in hot code are SL002's problem
        if isinstance(node, (ast.BoolOp, ast.BinOp, ast.UnaryOp, ast.Compare,
                             ast.IfExp, ast.Starred, ast.JoinedStr,
                             ast.FormattedValue, ast.Tuple, ast.List, ast.Set,
                             ast.Dict, ast.Await, ast.NamedExpr, ast.Slice)):
            if isinstance(node, ast.NamedExpr):
                value = self.expr(node.value)
                self.assign_target(node.target, value, node.value)
                return value
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self.expr(child)
            return OPAQUE
        return OPAQUE

    def call(self, node: ast.Call) -> Origin:
        args: list[ArgInfo] = []
        for arg in node.args:
            if isinstance(arg, ast.Starred):
                self.expr(arg.value)
                continue
            args.append(self.arg_info(arg))
        for kw in node.keywords:
            if kw.arg is None:
                self.expr(kw.value)
                continue
            info = self.arg_info(kw.value)
            args.append(ArgInfo(info.origin, keyword=kw.arg, per_sm=info.per_sm))

        func = node.func
        if isinstance(func, ast.Name):
            name = func.id
            if name == "super":
                return Origin("super")
            if name in self.env or name in self.ir.param_types:
                receiver = self.lookup(name)
                self.add_call(CallSite(
                    "value", receiver=receiver, method="__call__",
                    args=tuple(args), fanout=self.fanout_depth > 0,
                    lineno=node.lineno, col=node.col_offset,
                ))
                return Origin("rmeth", base=receiver, name="__call__")
            if name in _BUILTINS:
                return OPAQUE
            self.add_call(CallSite(
                "name", callee=name, args=tuple(args),
                fanout=self.fanout_depth > 0,
                lineno=node.lineno, col=node.col_offset,
            ))
            return Origin("rname", name=name)
        if isinstance(func, ast.Attribute):
            if (isinstance(func.value, ast.Name) and func.value.id == "heapq"
                    and func.attr in _HEAPQ_MUTATORS):
                if args:
                    self.container_write(args[0].origin, node)
                return OPAQUE
            receiver = self.expr(func.value)
            if receiver.kind == "opaque":
                return OPAQUE
            self.add_call(CallSite(
                "method", receiver=receiver, method=func.attr,
                args=tuple(args), fanout=self.fanout_depth > 0,
                maybe_container=func.attr in CONTAINER_MUTATORS,
                lineno=node.lineno, col=node.col_offset,
            ))
            return Origin("rmeth", base=receiver, name=func.attr)
        receiver = self.expr(func)
        if receiver.kind != "opaque":
            self.add_call(CallSite(
                "value", receiver=receiver, method="__call__",
                args=tuple(args), fanout=self.fanout_depth > 0,
                lineno=node.lineno, col=node.col_offset,
            ))
            return Origin("rmeth", base=receiver, name="__call__")
        return OPAQUE

    def arg_info(self, node: ast.expr) -> ArgInfo:
        origin = self.expr(node)
        per_sm = False
        if self.fanout_depth:
            if origin.kind == "loopvar":
                per_sm = True
            elif isinstance(node, ast.Call):
                per_sm = True
            elif (isinstance(node, ast.Name) and node.id in self.fanout_locals):
                per_sm = True
            elif (origin.kind == "elem" and not origin.chain
                  and origin.index_name in self.loop_vars):
                per_sm = True
        return ArgInfo(origin, per_sm=per_sm)

    def add_call(self, site: CallSite) -> None:
        self.ir.calls.append(site)


def container_target(origin: Origin) -> Optional[tuple[Origin, str]]:
    """The ``(owner, attr)`` location that holds a mutated container.

    ``self._sets[i].move_to_end(...)`` and aliases thereof resolve to
    ``(self, "_sets")``; mutating an untracked object resolves to ``None``.
    """
    current = origin
    while True:
        if current.chain:
            return replace(current, chain=current.chain[:-1]), current.chain[-1]
        if current.kind == "elem" and current.base is not None:
            current = current.base
            continue
        if current.kind == "opaque":
            return None
        return current, ""


def extract_module(info: ModuleInfo) -> ModuleIR:
    """Lower one parsed module into its effect IR."""
    ir = ModuleIR(info=info)
    for stmt in info.tree.body:
        if isinstance(stmt, ast.ImportFrom):
            module = ("." * stmt.level) + (stmt.module or "")
            for alias in stmt.names:
                local = alias.asname or alias.name
                ir.imported[local] = (module, alias.name)
                ir.module_globals.add(local)
        elif isinstance(stmt, ast.Import):
            for alias in stmt.names:
                local = alias.asname or alias.name.split(".", 1)[0]
                ir.module_globals.add(local)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                for name_node in ast.walk(target):
                    if isinstance(name_node, ast.Name):
                        ir.module_globals.add(name_node.id)
                        if (_is_mutable_literal(stmt.value)
                                and not name_node.id.startswith("__")):
                            ir.module_mutables[name_node.id] = stmt.lineno
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            ir.module_globals.add(stmt.target.id)
            if (stmt.value is not None and _is_mutable_literal(stmt.value)
                    and not stmt.target.id.startswith("__")):
                ir.module_mutables[stmt.target.id] = stmt.lineno
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            ir.module_globals.add(stmt.name)
        elif isinstance(stmt, ast.ClassDef):
            ir.module_globals.add(stmt.name)

    for stmt in info.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            ir.functions[stmt.name] = _MethodExtractor(stmt, ir, in_class=False).ir
        elif isinstance(stmt, ast.ClassDef):
            ir.classes.append(_extract_class(stmt, ir, info))
    return ir


def _extract_class(node: ast.ClassDef, module_ir: ModuleIR, info: ModuleInfo) -> ClassIR:
    bases = tuple(
        base.id if isinstance(base, ast.Name) else
        base.attr if isinstance(base, ast.Attribute) else ""
        for base in node.bases
    )
    is_dataclass = False
    is_frozen = False
    for deco in node.decorator_list:
        if _decorator_name(deco) == "dataclass":
            is_dataclass = True
            if isinstance(deco, ast.Call):
                for kw in deco.keywords:
                    if (kw.arg == "frozen" and isinstance(kw.value, ast.Constant)
                            and kw.value.value is True):
                        is_frozen = True
    cls = ClassIR(
        name=node.name,
        module=info,
        lineno=node.lineno,
        bases=bases,
        boundary_reason=info.boundaries.get(node.lineno),
        is_dataclass=is_dataclass,
        is_frozen=is_frozen,
    )
    if "NamedTuple" in bases:
        is_dataclass = cls.is_dataclass = True
        cls.is_frozen = True
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            cls.methods[stmt.name] = _MethodExtractor(stmt, module_ir, in_class=True).ir
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            attr = stmt.target.id
            cls.ann_fields[attr] = parse_annotation(stmt.annotation)
            if isinstance(stmt.value, ast.Call):
                func = stmt.value.func
                if isinstance(func, ast.Name) and func.id == "field":
                    for kw in stmt.value.keywords:
                        if kw.arg == "default_factory" and isinstance(kw.value, ast.Name):
                            cls.dataclass_factories[attr] = kw.value.id
            if (not is_dataclass and stmt.value is not None
                    and _is_mutable_literal(stmt.value)
                    and not attr.startswith("__")):
                cls.class_mutable_attrs.append((attr, stmt.lineno))
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if (isinstance(target, ast.Name)
                        and _is_mutable_literal(stmt.value)
                        and not target.id.startswith("__")):
                    cls.class_mutable_attrs.append((target.id, stmt.lineno))
    return cls
