"""Interprocedural attribute-effect analysis proving SM isolation.

Public entry points:

- :func:`analyze_project` — run (and memoise) the three-stage analysis
  over an engine :class:`~repro.analysis.engine.Project`.
- :func:`build_isolation_report` — the deterministic JSON report behind
  ``python -m repro lint --isolation-report``.

The analysis classifies every mutable location reachable from the per-SM
cycle loop as SM-private, L2/DRAM-boundary (classes annotated with
``# simlint: boundary[reason]``) or illegally shared; SL009/SL010 and the
``--verify-isolation`` runtime sanitizer are built on top of it.
"""

from __future__ import annotations

from typing import Any

from repro.analysis.engine import Project

from repro.analysis.effects.extract import extract_module
from repro.analysis.effects.model import ModuleIR, ProjectEffects
from repro.analysis.effects.ownership import analyze_modules
from repro.analysis.effects.report import build_isolation_report, is_waived

__all__ = [
    "ModuleIR",
    "ProjectEffects",
    "analyze_project",
    "build_isolation_report",
    "is_waived",
    "isolation_report_for",
]


def analyze_project(project: Project) -> ProjectEffects:
    """Extract + resolve the whole project, memoised on the Project."""
    cached = project.effects_cache
    if isinstance(cached, ProjectEffects):
        return cached
    modules = [extract_module(info) for info in project.modules]
    effects = analyze_modules(modules)
    project.effects_cache = effects
    return effects


def isolation_report_for(project: Project) -> dict[str, Any]:
    """Convenience: analyse ``project`` and build its isolation report."""
    return build_isolation_report(analyze_project(project))
