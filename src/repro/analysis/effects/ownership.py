"""Ownership classification and cycle-path reachability for the effect IR.

Stage 2 of the analysis (see :mod:`repro.analysis.effects.model`): builds
class/field type tables from the extracted IR, assigns every project class
an ownership value (``per_sm`` / ``shared`` / ``boundary`` / ``mixed``),
then walks the call graph from the SM cycle roots and classifies every
reachable write as SM-private, boundary, or illegally shared.

Ownership sources, in decreasing strength:

- a ``# simlint: boundary[reason]`` annotation pins a class ``boundary``;
- classes constructed inside a fan-out loop (a ``for`` whose iterable
  mentions ``num_sms``) are ``per_sm``;
- annotated ``__init__`` parameter types at fan-out constructor sites
  join ``per_sm`` when the argument is freshly built per iteration and
  ``shared`` when a pre-existing object is passed in (subclasses follow);
- other constructor sites inherit the constructing class's ownership.

Conflicting sources meet at ``mixed`` and the execution-context tag of the
reaching call-graph node decides each individual write.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.analysis.effects.extract import CONTAINER_ACCESSORS, container_target
from repro.analysis.effects.model import (
    CLS_BOUNDARY,
    CLS_ILLEGAL,
    CLS_SM_PRIVATE,
    OWN_BOUNDARY,
    OWN_MIXED,
    OWN_PER_SM,
    OWN_SHARED,
    OWN_UNKNOWN,
    TAG_BOUNDARY,
    TAG_PRIVATE,
    TAG_SHARED,
    UNTYPED,
    ArgInfo,
    CallSite,
    ClassIR,
    ClassifiedWrite,
    MethodIR,
    ModuleIR,
    Origin,
    ProjectEffects,
    TypeRef,
    UnresolvedCall,
    WriteRec,
)

_MAX_TYPE_DEPTH = 12
_TRACKED_ROOTS = frozenset({"self", "param", "rname", "rmeth", "elem", "super"})

#: Read-only container methods: calling one on an untyped receiver is not
#: worth an "unresolved" report entry — nothing is mutated.
_PURE_READS = frozenset(
    {"get", "keys", "values", "items", "index", "count", "copy", "most_common"}
)


class Analyzer:
    """Resolves the extracted IR into a :class:`ProjectEffects`."""

    def __init__(self, modules: list[ModuleIR]) -> None:
        self.modules = modules
        self.classes: dict[str, ClassIR] = {}
        self.class_module: dict[str, ModuleIR] = {}
        for module in modules:
            for cls in module.classes:
                if cls.name not in self.classes:
                    self.classes[cls.name] = cls
                    self.class_module[cls.name] = module
        self.subclasses: dict[str, set[str]] = {name: set() for name in self.classes}
        for name, cls in self.classes.items():
            for base in cls.bases:
                if base in self.subclasses:
                    self.subclasses[base].add(name)
        self.func_table: dict[tuple[str, str], tuple[ModuleIR, MethodIR]] = {}
        for module in modules:
            key = f"fn:{module.info.display_path}"
            for fname, fir in module.functions.items():
                self.func_table[(key, fname)] = (module, fir)
        self.field_types: dict[tuple[str, str], TypeRef] = {}
        self.param_concrete: dict[tuple[str, str], str] = {}
        self.bindings: dict[tuple[str, str], set[tuple[str, str]]] = {}
        self.own: dict[str, str] = {}
        self.sm_classes: list[str] = []
        self.node_tags: dict[tuple[str, str], set[str]] = {}
        self.writes: list[ClassifiedWrite] = []
        self.global_writes: list[ClassifiedWrite] = []
        self.unresolved: set[UnresolvedCall] = set()

    # ------------------------------------------------------------------
    # Class/method lookup
    # ------------------------------------------------------------------

    def mro(self, name: str) -> list[str]:
        """Project-class linearisation: the class then its bases, DFS."""
        out: list[str] = []
        seen: set[str] = set()

        def visit(current: str) -> None:
            if current in seen or current not in self.classes:
                return
            seen.add(current)
            out.append(current)
            for base in self.classes[current].bases:
                visit(base)

        visit(name)
        return out

    def all_subclasses(self, name: str) -> list[str]:
        out: list[str] = []
        stack = sorted(self.subclasses.get(name, ()))
        seen: set[str] = set()
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.add(current)
            out.append(current)
            stack.extend(sorted(self.subclasses.get(current, ())))
        return out

    def find_method(self, cls_name: str, method: str) -> Optional[tuple[str, MethodIR]]:
        for candidate in self.mro(cls_name):
            ir = self.classes[candidate].methods.get(method)
            if ir is not None:
                return candidate, ir
        return None

    # ------------------------------------------------------------------
    # Type resolution
    # ------------------------------------------------------------------

    def field_tref(self, cls_name: Optional[str], attr: str) -> TypeRef:
        if cls_name is None or cls_name not in self.classes:
            return UNTYPED
        for candidate in self.mro(cls_name):
            tref = self.field_types.get((candidate, attr))
            if tref is not None and (tref.direct or tref.elem):
                return tref
        found = self.find_method(cls_name, attr)
        if found is not None and found[1].is_property:
            return found[1].return_type
        return UNTYPED

    def method_return(self, base: TypeRef, method: str) -> TypeRef:
        if method in CONTAINER_ACCESSORS and base.elem:
            return TypeRef(direct=base.elem)
        if base.direct is not None:
            found = self.find_method(base.direct, method)
            if found is not None:
                return found[1].return_type
        return UNTYPED

    def resolve_tref(
        self,
        origin: Origin,
        cls: Optional[ClassIR],
        meth: MethodIR,
        depth: int = 0,
    ) -> TypeRef:
        if depth > _MAX_TYPE_DEPTH:
            return UNTYPED
        kind = origin.kind
        tref = UNTYPED
        if kind == "self" and cls is not None:
            tref = TypeRef(direct=cls.name)
        elif kind == "param":
            tref = meth.param_types.get(origin.name, UNTYPED)
            if tref.direct is None or tref.direct not in self.classes:
                owner = cls.name if cls is not None else ""
                inferred = self.param_concrete.get((f"{owner}.{meth.name}", origin.name))
                if inferred:  # "" marks sites that disagreed with no common base
                    tref = TypeRef(direct=inferred)
        elif kind == "super" and cls is not None:
            for base in cls.bases:
                if base in self.classes:
                    tref = TypeRef(direct=base)
                    break
        elif kind == "rname":
            if origin.name in self.classes:
                tref = TypeRef(direct=origin.name)
        elif kind == "rmeth" and origin.base is not None:
            base = self.resolve_tref(origin.base, cls, meth, depth + 1)
            tref = self.method_return(base, origin.name)
        elif kind == "elem" and origin.base is not None:
            base = self.resolve_tref(origin.base, cls, meth, depth + 1)
            tref = TypeRef(direct=base.elem)
        for attr in origin.chain:
            tref = self.field_tref(tref.direct, attr)
            if tref == UNTYPED:
                break
        return tref

    # ------------------------------------------------------------------
    # Table construction (field types, concrete params, bindings)
    # ------------------------------------------------------------------

    def build_tables(self) -> None:
        for name, cls in self.classes.items():
            for attr, tref in cls.ann_fields.items():
                self.field_types[(name, attr)] = tref
            for meth in cls.methods.values():
                for attr, tref in meth.self_ann_fields.items():
                    if tref.direct or tref.elem:
                        self.field_types[(name, attr)] = tref

        for _ in range(8):
            changed = False
            changed |= self._infer_concrete_params()
            changed |= self._infer_field_types()
            if not changed:
                break
        self._build_bindings()

    def _infer_field_types(self) -> bool:
        changed = False
        for name, cls in self.classes.items():
            for meth in cls.methods.values():
                for write in meth.writes:
                    if write.kind != "attr" or write.value is None:
                        continue
                    owner = self.resolve_tref(write.target, cls, meth)
                    if owner.direct is None or owner.direct not in self.classes:
                        continue
                    key = (owner.direct, write.attr)
                    existing = self.field_types.get(key)
                    if existing is not None and (
                        existing.direct in self.classes
                        or existing.elem in self.classes
                    ):
                        continue
                    tref = self.resolve_tref(write.value, cls, meth)
                    if (tref.direct in self.classes or tref.elem in self.classes
                            ) and tref != existing:
                        self.field_types[key] = tref
                        changed = True
        return changed

    def _infer_concrete_params(self) -> bool:
        """Fill parameter types from concrete arguments at constructor sites."""
        changed = False
        for module in self.modules:
            for holder, meth in self._iter_method_contexts(module):
                for site in meth.calls:
                    if site.kind != "name" or site.callee not in self.classes:
                        continue
                    found = self.find_method(site.callee, "__init__")
                    if found is None:
                        continue
                    def_cls, init_ir = found
                    for pname, arg in _map_args(init_ir, site.args):
                        ann = init_ir.param_types.get(pname, UNTYPED)
                        if ann.direct in self.classes:
                            continue
                        tref = self.resolve_tref(arg.origin, holder, meth)
                        if tref.direct in self.classes:
                            key = (f"{def_cls}.__init__", pname)
                            joined = self._join_concrete(
                                self.param_concrete.get(key), tref.direct
                            )
                            if self.param_concrete.get(key) != joined:
                                self.param_concrete[key] = joined
                                changed = True
        return changed

    def _join_concrete(self, old: Optional[str], new: str) -> str:
        """Join two inferred concrete param classes to a common ancestor.

        Different construction sites may pass different implementations
        (the serial engine's miss forwarder vs the shard proxy's);
        last-writer-wins would silently drop one engine's call graph, so
        disagreeing sites meet at their nearest shared project base class
        instead — virtual dispatch then fans out to every subclass — or at
        ``""`` (ambiguous: treated as untyped) when they share none. The
        join only ever moves up the class lattice, so the fixpoint loop
        in :meth:`build_tables` still converges.
        """
        if old is None or old == new:
            return new
        if old == "":
            return ""
        new_ancestors = set(self.mro(new))
        for candidate in self.mro(old):
            if candidate in new_ancestors:
                return candidate
        return ""

    def _iter_method_contexts(
        self, module: ModuleIR
    ) -> list[tuple[Optional[ClassIR], MethodIR]]:
        out: list[tuple[Optional[ClassIR], MethodIR]] = []
        for cls in module.classes:
            for meth in cls.methods.values():
                out.append((cls, meth))
        for meth in module.functions.values():
            out.append((None, meth))
        return out

    def _build_bindings(self) -> None:
        """Record stored bound methods: ``obj.attr = self.some_method``."""
        for module in self.modules:
            for holder, meth in self._iter_method_contexts(module):
                for write in meth.writes:
                    if write.kind != "attr" or write.value is None:
                        continue
                    value = write.value
                    if not value.chain:
                        continue
                    prefix = replace(value, chain=value.chain[:-1])
                    method_name = value.chain[-1]
                    owner_tref = self.resolve_tref(prefix, holder, meth)
                    if owner_tref.direct is None:
                        continue
                    found = self.find_method(owner_tref.direct, method_name)
                    if found is None or found[1].is_property:
                        continue
                    target_tref = self.resolve_tref(write.target, holder, meth)
                    if target_tref.direct is None:
                        continue
                    self.bindings.setdefault(
                        (target_tref.direct, write.attr), set()
                    ).add((owner_tref.direct, method_name))

    # ------------------------------------------------------------------
    # Ownership fixpoint
    # ------------------------------------------------------------------

    def compute_ownership(self) -> None:
        for name, cls in self.classes.items():
            self.own[name] = (
                OWN_BOUNDARY if cls.boundary_reason is not None else OWN_UNKNOWN
            )
        fanout_targets: set[str] = set()
        for _ in range(16):
            changed = False
            for module in self.modules:
                for cls in module.classes:
                    ctx = self.own.get(cls.name, OWN_UNKNOWN)
                    for meth in cls.methods.values():
                        for site in meth.calls:
                            if site.kind != "name" or site.callee not in self.classes:
                                continue
                            if site.fanout:
                                fanout_targets.add(site.callee)
                                changed |= self._join(site.callee, OWN_PER_SM)
                                changed |= self._fanout_param_rule(site)
                            elif ctx in (OWN_PER_SM, OWN_SHARED, OWN_BOUNDARY):
                                changed |= self._join(site.callee, ctx)
                    for factory in cls.dataclass_factories.values():
                        if factory in self.classes and ctx in (
                            OWN_PER_SM, OWN_SHARED, OWN_BOUNDARY
                        ):
                            changed |= self._join(factory, ctx)
            if not changed:
                break
        self.sm_classes = sorted(
            name for name in fanout_targets
            if self.find_method(name, "cycle") is not None
        )

    def _fanout_param_rule(self, site: CallSite) -> bool:
        changed = False
        found = self.find_method(site.callee, "__init__")
        if found is None:
            return False
        init_ir = found[1]
        for pname, arg in _map_args(init_ir, site.args):
            ann = init_ir.param_types.get(pname, UNTYPED)
            target = ann.direct
            if target not in self.classes:
                target = self.param_concrete.get((f"{site.callee}.__init__", pname))
            if target not in self.classes or target is None:
                continue
            value = OWN_PER_SM if arg.per_sm else OWN_SHARED
            changed |= self._join(target, value)
            for sub in self.all_subclasses(target):
                changed |= self._join(sub, value)
        return changed

    def _join(self, name: str, value: str) -> bool:
        if self.classes[name].boundary_reason is not None:
            return False
        current = self.own.get(name, OWN_UNKNOWN)
        new = value if current == OWN_UNKNOWN else (
            current if current == value else OWN_MIXED
        )
        if new != current:
            self.own[name] = new
            return True
        return False

    # ------------------------------------------------------------------
    # Reachability from the SM cycle roots
    # ------------------------------------------------------------------

    def walk_cycle_graph(self) -> list[tuple[str, str]]:
        roots = [(name, "cycle") for name in self.sm_classes]
        worklist: list[tuple[str, str, str]] = [
            (cls, meth, TAG_PRIVATE) for cls, meth in roots
        ]
        while worklist:
            cls_name, meth_name, tag = worklist.pop()
            tags = self.node_tags.setdefault((cls_name, meth_name), set())
            if tag in tags:
                continue
            tags.add(tag)
            if cls_name.startswith("fn:"):
                entry = self.func_table.get((cls_name, meth_name))
                if entry is not None:
                    module, fn_ir = entry
                    self._process_node(None, module, fn_ir,
                                       f"{module.info.name}.{meth_name}",
                                       tag, worklist)
                continue
            found = self.find_method(cls_name, meth_name)
            if found is None:
                continue
            _, meth = found
            cls = self.classes[cls_name]
            module = self.class_module[cls_name]
            self._process_node(cls, module, meth,
                               f"{cls_name}.{meth_name}", tag, worklist)
        return roots

    def callee_tag(self, target_cls: str, caller_tag: str) -> str:
        own = self.own.get(target_cls, OWN_UNKNOWN)
        if own == OWN_BOUNDARY:
            return TAG_BOUNDARY
        if own == OWN_PER_SM:
            return TAG_PRIVATE
        if own == OWN_SHARED:
            return TAG_SHARED
        return caller_tag

    def _process_node(
        self,
        cls: Optional[ClassIR],
        module: ModuleIR,
        meth: MethodIR,
        writer: str,
        tag: str,
        worklist: list[tuple[str, str, str]],
    ) -> None:
        display = module.info.display_path

        for write in meth.writes:
            self._classify_write(cls, meth, write, tag, writer, display)
        for gwrite in meth.global_writes:
            target = gwrite.module_hint or module.info.name
            self.global_writes.append(
                ClassifiedWrite(
                    cls=f"<module:{target}>", attr=gwrite.name,
                    classification=CLS_ILLEGAL, kind=gwrite.kind,
                    writer=writer, path=display, lineno=gwrite.lineno,
                    col=gwrite.col, tag=tag,
                    detail=f"module-level `{gwrite.name}` mutated from the cycle path",
                )
            )
        for site in meth.calls:
            self._process_call(cls, module, meth, site, tag, writer, display, worklist)

    def _enqueue(
        self,
        worklist: list[tuple[str, str, str]],
        cls_name: str,
        meth_name: str,
        tag: str,
    ) -> None:
        if tag not in self.node_tags.get((cls_name, meth_name), set()):
            worklist.append((cls_name, meth_name, tag))

    def _enqueue_virtual(
        self,
        worklist: list[tuple[str, str, str]],
        target_cls: str,
        method: str,
        caller_tag: str,
    ) -> None:
        """Edge to ``target_cls.method`` plus every subclass override."""
        if self.find_method(target_cls, method) is not None:
            self._enqueue(worklist, target_cls, method,
                          self.callee_tag(target_cls, caller_tag))
        for sub in self.all_subclasses(target_cls):
            if method in self.classes[sub].methods:
                self._enqueue(worklist, sub, method,
                              self.callee_tag(sub, caller_tag))

    def _construct(
        self,
        worklist: list[tuple[str, str, str]],
        target_cls: str,
        caller_tag: str,
        writer: str,
        display: str,
        lineno: int,
        col: int,
    ) -> None:
        """Constructor edge: ``__init__``, ``__call__`` (event callbacks run
        later with the instance's ownership, not the creator's context) and
        synthesised dataclass field writes."""
        inst_tag = self.callee_tag(target_cls, caller_tag)
        if self.find_method(target_cls, "__init__") is not None:
            self._enqueue(worklist, target_cls, "__init__", inst_tag)
        if self.find_method(target_cls, "__call__") is not None:
            self._enqueue(worklist, target_cls, "__call__", inst_tag)
        cls = self.classes[target_cls]
        if cls.is_dataclass:
            for attr in cls.ann_fields:
                self.writes.append(
                    ClassifiedWrite(
                        cls=target_cls, attr=attr,
                        classification=self._classification(target_cls, inst_tag),
                        kind="ctor", writer=writer, path=display,
                        lineno=lineno, col=col, tag=inst_tag,
                    )
                )

    def _process_call(
        self,
        cls: Optional[ClassIR],
        module: ModuleIR,
        meth: MethodIR,
        site: CallSite,
        tag: str,
        writer: str,
        display: str,
        worklist: list[tuple[str, str, str]],
    ) -> None:
        if site.kind == "name":
            if site.callee in self.classes:
                self._construct(worklist, site.callee, tag, writer, display,
                                site.lineno, site.col)
                return
            target = self._resolve_function(module, site.callee)
            if target is not None:
                self._enqueue(worklist, target[0], target[1], tag)
            elif self._project_import(module, site.callee):
                self.unresolved.add(UnresolvedCall(
                    caller=writer, expr=f"{site.callee}(...)",
                    path=display, lineno=site.lineno,
                ))
            return

        receiver = site.receiver
        if receiver is None:
            return
        tref = self.resolve_tref(receiver, cls, meth)
        target_cls = tref.direct
        method = site.method if site.kind == "method" else "__call__"

        if target_cls is not None and target_cls in self.classes:
            if self.find_method(target_cls, method) is not None:
                self._enqueue_virtual(worklist, target_cls, method, tag)
                return
            bound = self._lookup_binding(target_cls, method)
            if bound:
                for owner_cls, owner_method in sorted(bound):
                    self._enqueue_virtual(worklist, owner_cls, owner_method, tag)
                return
            field = self.field_tref(target_cls, method)
            if (field.direct in self.classes
                    and self.find_method(field.direct or "", "__call__") is not None):
                self._enqueue_virtual(worklist, field.direct or "", "__call__", tag)
                return
            if site.maybe_container:
                self._container_fallback(cls, meth, receiver, site, tag, writer, display)
                return
            if method in _PURE_READS:
                return
            self.unresolved.add(UnresolvedCall(
                caller=writer, expr=f"{receiver.render()}.{method}(...)",
                path=display, lineno=site.lineno,
            ))
            return

        if site.maybe_container:
            self._container_fallback(cls, meth, receiver, site, tag, writer, display)
            return
        if method in _PURE_READS:
            return
        root = _root_kind(receiver)
        if root in _TRACKED_ROOTS:
            self.unresolved.add(UnresolvedCall(
                caller=writer, expr=f"{receiver.render()}.{method}(...)",
                path=display, lineno=site.lineno,
            ))

    def _container_fallback(
        self,
        cls: Optional[ClassIR],
        meth: MethodIR,
        receiver: Origin,
        site: CallSite,
        tag: str,
        writer: str,
        display: str,
    ) -> None:
        resolved = container_target(receiver)
        if resolved is None:
            return
        owner, attr = resolved
        write = WriteRec(owner, attr, "container", site.lineno, site.col)
        self._classify_write(cls, meth, write, tag, writer, display)

    def _lookup_binding(self, target_cls: str, attr: str) -> set[tuple[str, str]]:
        out: set[tuple[str, str]] = set()
        for candidate in self.mro(target_cls):
            out |= self.bindings.get((candidate, attr), set())
        return out

    def _resolve_function(
        self, module: ModuleIR, name: str
    ) -> Optional[tuple[str, str]]:
        """Resolve a bare-name call to a module-function node key."""
        if name in module.functions:
            return (f"fn:{module.info.display_path}", name)
        hint = module.imported.get(name)
        if hint is not None:
            target_stem = hint[0].rsplit(".", 1)[-1]
            for candidate in self.modules:
                if (candidate.info.name == target_stem
                        and hint[1] in candidate.functions):
                    return (f"fn:{candidate.info.display_path}", hint[1])
        return None

    def _project_import(self, module: ModuleIR, name: str) -> bool:
        hint = module.imported.get(name)
        return hint is not None and (
            hint[0].startswith("repro") or hint[0].startswith(".")
        )

    def _classification(self, target_cls: str, tag: str) -> str:
        own = self.own.get(target_cls, OWN_UNKNOWN)
        if own == OWN_BOUNDARY:
            return CLS_BOUNDARY
        if own == OWN_PER_SM:
            return CLS_SM_PRIVATE
        if own == OWN_SHARED:
            return CLS_BOUNDARY if tag == TAG_BOUNDARY else CLS_ILLEGAL
        if tag == TAG_PRIVATE:
            return CLS_SM_PRIVATE
        if tag == TAG_BOUNDARY:
            return CLS_BOUNDARY
        return CLS_ILLEGAL

    def _classify_write(
        self,
        cls: Optional[ClassIR],
        meth: MethodIR,
        write: WriteRec,
        tag: str,
        writer: str,
        display: str,
    ) -> None:
        tref = self.resolve_tref(write.target, cls, meth)
        target_cls = tref.direct
        attr = write.attr or "<object>"
        if target_cls is None or target_cls not in self.classes:
            # Mutation through an accessor method (``self._set(a)[k] = v``):
            # attribute it to the accessor's class as internal state.
            root = write.target
            while root.kind == "elem" and root.base is not None:
                root = root.base
            if (root.kind == "rmeth" and not root.chain and root.base is not None):
                base_tref = self.resolve_tref(root.base, cls, meth)
                if (base_tref.direct in self.classes
                        and self.find_method(base_tref.direct or "", root.name)):
                    target_cls = base_tref.direct
                    attr = f"<{root.name}()>"
            if target_cls is None or target_cls not in self.classes:
                if _root_kind(write.target) in _TRACKED_ROOTS:
                    suffix = f".{write.attr}" if write.attr else ""
                    self.unresolved.add(UnresolvedCall(
                        caller=writer,
                        expr=f"{write.target.render()}{suffix} <- write",
                        path=display, lineno=write.lineno,
                    ))
                return
        self.writes.append(
            ClassifiedWrite(
                cls=target_cls, attr=attr,
                classification=self._classification(target_cls, tag),
                kind=write.kind, writer=writer, path=display,
                lineno=write.lineno, col=write.col, tag=tag,
            )
        )


def _map_args(
    init_ir: MethodIR, args: tuple[ArgInfo, ...]
) -> list[tuple[str, ArgInfo]]:
    out: list[tuple[str, ArgInfo]] = []
    positional = [a for a in args if not a.keyword]
    for pname, arg in zip(init_ir.params, positional):
        out.append((pname, arg))
    for arg in args:
        if arg.keyword:
            out.append((arg.keyword, arg))
    return out


def _deep_root(origin: Origin) -> Origin:
    current = origin
    while current.base is not None:
        current = current.base
    return current


def _root_kind(origin: Origin) -> str:
    return _deep_root(origin).kind


def analyze_modules(modules: list[ModuleIR]) -> ProjectEffects:
    """Run stages 2+3 of the analysis over extracted module IRs."""
    analyzer = Analyzer(modules)
    analyzer.build_tables()
    analyzer.compute_ownership()
    roots = analyzer.walk_cycle_graph()
    return ProjectEffects(
        modules=modules,
        classes=analyzer.classes,
        subclasses=analyzer.subclasses,
        ownership=analyzer.own,
        field_types=analyzer.field_types,
        sm_classes=analyzer.sm_classes,
        roots=roots,
        node_tags=analyzer.node_tags,
        writes=analyzer.writes,
        global_writes=analyzer.global_writes,
        unresolved=sorted(
            analyzer.unresolved,
            key=lambda u: (u.path, u.lineno, u.caller, u.expr),
        ),
    )
