"""Deterministic isolation-report JSON for ``--isolation-report`` and CI.

The report is a pure function of the analysed source tree: every list is
sorted, paths are repo-relative display paths, and nothing time- or
environment-dependent is emitted, so two runs over the same tree are
byte-identical — which is what lets CI diff the committed baseline.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.analysis.engine import ModuleInfo

from repro.analysis.effects.model import (
    CLS_BOUNDARY,
    CLS_ILLEGAL,
    CLS_SM_PRIVATE,
    ClassifiedWrite,
    ProjectEffects,
)

#: Bump when the report layout changes incompatibly.
REPORT_SCHEMA_VERSION = 1


def is_waived(module: Optional[ModuleInfo], line: int, code: str) -> bool:
    """True when ``# simlint: ignore[code]`` covers ``line`` in ``module``."""
    if module is None:
        return False
    for probe in (line, module.decorator_owner.get(line, line)):
        codes = module.suppressions.get(probe)
        if codes is not None and (not codes or code in codes):
            return True
    return False


def _module_by_path(effects: ProjectEffects) -> dict[str, ModuleInfo]:
    return {m.info.display_path: m.info for m in effects.modules}


def _violation_entries(
    effects: ProjectEffects, code: str = "SL009"
) -> list[dict[str, Any]]:
    by_path = _module_by_path(effects)
    entries: dict[tuple[str, int, int, str, str], dict[str, Any]] = {}
    for write in (*effects.writes, *effects.global_writes):
        if write.classification != CLS_ILLEGAL:
            continue
        key = (write.path, write.lineno, write.col, write.cls, write.attr)
        if key in entries:
            continue
        target = f"{write.cls}.{write.attr}" if write.attr else write.cls
        entries[key] = {
            "target": target,
            "kind": write.kind,
            "writer": write.writer,
            "path": write.path,
            "line": write.lineno,
            "col": write.col,
            "waived": is_waived(by_path.get(write.path), write.lineno, code),
            "detail": write.detail or (
                f"write to shared state `{target}` reachable from the "
                f"per-SM cycle path via {write.writer}"
            ),
        }
    return [entries[key] for key in sorted(entries)]


def _location_entries(effects: ProjectEffects) -> list[dict[str, Any]]:
    grouped: dict[tuple[str, str], dict[str, Any]] = {}
    for write in effects.writes:
        entry = grouped.setdefault(
            (write.cls, write.attr),
            {"classifications": set(), "kinds": set(), "writers": set(), "sites": set()},
        )
        entry["classifications"].add(write.classification)
        entry["kinds"].add(write.kind)
        entry["writers"].add(write.writer)
        entry["sites"].add((write.path, write.lineno))
    out: list[dict[str, Any]] = []
    for (cls, attr), entry in sorted(grouped.items()):
        out.append(
            {
                "class": cls,
                "attr": attr,
                "classifications": sorted(entry["classifications"]),
                "kinds": sorted(entry["kinds"]),
                "writers": sorted(entry["writers"]),
                "sites": [
                    {"path": path, "line": line}
                    for path, line in sorted(entry["sites"])
                ],
            }
        )
    return out


def build_isolation_report(effects: ProjectEffects) -> dict[str, Any]:
    """Fold classified writes into the machine-readable isolation report."""
    locations = _location_entries(effects)
    violations = _violation_entries(effects)

    boundary_exercised = {
        loc["class"] for loc in locations
        if CLS_BOUNDARY in loc["classifications"]
    }
    boundary: list[dict[str, Any]] = []
    for name in sorted(effects.classes):
        cls = effects.classes[name]
        if cls.boundary_reason is None:
            continue
        boundary.append(
            {
                "class": name,
                "path": cls.module.display_path,
                "line": cls.lineno,
                "reason": cls.boundary_reason,
                "statically_exercised": name in boundary_exercised,
            }
        )

    def count(classification: str) -> int:
        return sum(
            1 for loc in locations if classification in loc["classifications"]
        )

    unwaived = [v for v in violations if not v["waived"]]
    return {
        "schema_version": REPORT_SCHEMA_VERSION,
        "tool": "simlint-isolation",
        "roots": [f"{cls}.{meth}" for cls, meth in sorted(effects.roots)],
        "sm_classes": list(effects.sm_classes),
        "ownership": {
            name: effects.ownership[name] for name in sorted(effects.ownership)
        },
        "boundary": boundary,
        "locations": locations,
        "violations": violations,
        "unresolved": [
            {
                "caller": item.caller,
                "expr": item.expr,
                "path": item.path,
                "line": item.lineno,
            }
            for item in effects.unresolved
        ],
        "summary": {
            "locations": len(locations),
            "sm_private": count(CLS_SM_PRIVATE),
            "boundary": count(CLS_BOUNDARY),
            "illegal_shared": count(CLS_ILLEGAL),
            "violations": len(violations),
            "unwaived_violations": len(unwaived),
            "unresolved": len(effects.unresolved),
        },
    }


def static_write_index(effects: ProjectEffects) -> dict[tuple[str, str], set[str]]:
    """``(class, attr) -> classification set`` for sanitizer reconciliation.

    Only ``setattr``-visible write kinds are indexed under their attribute;
    container mutations never pass through ``__setattr__`` so the runtime
    sanitizer cannot observe them.
    """
    index: dict[tuple[str, str], set[str]] = {}
    for write in effects.writes:
        index.setdefault((write.cls, write.attr), set()).add(write.classification)
    return index


def illegal_writes(effects: ProjectEffects) -> list[ClassifiedWrite]:
    """All illegal-shared write records (SL009's finish pass)."""
    return [
        write
        for write in (*effects.writes, *effects.global_writes)
        if write.classification == CLS_ILLEGAL
    ]
