"""SL005 — frozen-config mutation: configs change only via ``replace``.

``GPUConfig`` (and its nested ``CacheConfig``/``DRAMConfig``/
``APRESConfig``) are frozen dataclasses: the memoised runner hashes them
as cache keys and sweeps serialise them into results records, so a
mutated config silently aliases cached results from a different machine
configuration. At runtime a direct assignment raises
``FrozenInstanceError`` — but only on the code path that executes, which
for sweep edge cases can be hours in. This rule finds the assignment
statically.

Flagged: attribute assignment (or ``setattr``/``object.__setattr__``)
whose receiver is statically config-typed — a name or attribute whose
identifier is ``config``/``cfg`` (or ends with them), or a name
annotated with a ``*Config`` type. Exempt: ``__init__``/``__post_init__``
inside the ``*Config`` classes themselves, where frozen dataclasses
legitimately use ``object.__setattr__``. The correct mutation idiom is
``dataclasses.replace`` (see ``GPUConfig.with_limits``).
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.analysis.engine import ModuleInfo, Reporter, Rule

_CONFIG_INIT_METHODS = frozenset({"__init__", "__post_init__", "__new__"})


def _annotation_name(annotation: Optional[ast.expr]) -> str:
    if isinstance(annotation, ast.Name):
        return annotation.id
    if isinstance(annotation, ast.Attribute):
        return annotation.attr
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        return annotation.value.strip().split("[", 1)[0].split("|", 1)[0].strip()
    return ""


def _config_like_identifier(name: str) -> bool:
    lowered = name.lower().lstrip("_")
    return lowered in {"config", "cfg"} or lowered.endswith("config") or lowered.endswith("cfg")


class _FrozenConfigVisitor(ast.NodeVisitor):
    """Flags attribute stores on config-typed receivers."""

    def __init__(self, module: ModuleInfo, reporter: Reporter) -> None:
        self._module = module
        self._reporter = reporter
        #: Enclosing (class name, function name) context stack.
        self._classes: list[str] = []
        self._functions: list[str] = []
        #: Names annotated with a *Config type in the current function.
        self._config_names: list[set[str]] = [set()]

    # -- context ---------------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._classes.append(node.name)
        self.generic_visit(node)
        self._classes.pop()

    def _visit_function(self, node: "ast.FunctionDef | ast.AsyncFunctionDef") -> None:
        annotated = {
            arg.arg
            for arg in (list(node.args.posonlyargs) + list(node.args.args)
                        + list(node.args.kwonlyargs))
            if _annotation_name(arg.annotation).endswith("Config")
        }
        self._functions.append(node.name)
        self._config_names.append(annotated)
        self.generic_visit(node)
        self._config_names.pop()
        self._functions.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    # -- receiver classification -----------------------------------------

    def _is_config_receiver(self, expr: ast.expr) -> bool:
        if isinstance(expr, ast.Name):
            if _config_like_identifier(expr.id):
                return True
            return any(expr.id in names for names in self._config_names)
        if isinstance(expr, ast.Attribute):
            return _config_like_identifier(expr.attr)
        return False

    def _in_config_class_init(self) -> bool:
        return bool(
            self._classes
            and self._classes[-1].endswith("Config")
            and self._functions
            and self._functions[-1] in _CONFIG_INIT_METHODS
        )

    def _flag(self, node: ast.AST, receiver: str, attr: str) -> None:
        self._reporter.report(
            FrozenConfigRule.code, self._module, node,
            f"mutating config attribute {receiver}.{attr}: configs are "
            "frozen (runner cache keys hash them); derive a new instance "
            "with dataclasses.replace(...) or a with_*() helper instead",
        )

    # -- assignment forms -------------------------------------------------

    def _check_target(self, target: ast.expr, node: ast.AST) -> None:
        if not isinstance(target, ast.Attribute):
            return
        if self._in_config_class_init():
            return
        if self._is_config_receiver(target.value):
            receiver = ast.unparse(target.value)
            self._flag(node, receiver, target.attr)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_target(target, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_target(node.target, node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._check_target(node.target, node)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        is_setattr = isinstance(func, ast.Name) and func.id == "setattr"
        is_object_setattr = (
            isinstance(func, ast.Attribute)
            and func.attr == "__setattr__"
            and isinstance(func.value, ast.Name)
            and func.value.id == "object"
        )
        if (
            (is_setattr or is_object_setattr)
            and node.args
            and self._is_config_receiver(node.args[0])
            and not self._in_config_class_init()
        ):
            attr = "<dynamic>"
            if len(node.args) > 1 and isinstance(node.args[1], ast.Constant):
                attr = str(node.args[1].value)
            self._flag(node, ast.unparse(node.args[0]), attr)
        self.generic_visit(node)


class FrozenConfigRule(Rule):
    """SL005: no attribute assignment on config objects outside construction."""

    code = "SL005"
    title = "frozen-config mutation: configs change only via dataclasses.replace"

    def check_module(self, module: ModuleInfo, reporter: Reporter) -> None:
        _FrozenConfigVisitor(module, reporter).visit(module.tree)
