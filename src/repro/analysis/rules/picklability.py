"""SL002 — picklability: closures and local classes on checkpointable state.

``GPUSimulator.snapshot()`` pickles the whole simulator object graph —
warp contexts, scheduler tables, MSHR callback lists, pending events.
Pickle cannot serialise lambdas, functions defined inside other
functions, or locally-defined classes; storing one on any object in the
graph makes every later checkpoint fail (hours into a run, under
``CheckpointError``). The runtime counterpart of this rule is
:func:`repro.integrity.checkpoint.dump_simulator`, which surfaces the
same defect only once a snapshot is attempted.

Within hot-path modules (the packages whose objects end up in the
pickled graph) this rule flags:

* lambdas assigned to object attributes or stored via subscript;
* names of function-local ``def``/``class`` definitions assigned to
  object attributes (closure capture);
* lambdas or local definitions passed into storage-shaped calls
  (``append``, ``add``, ``schedule``, ``register`` …).

Module-level callable classes with ``__slots__`` (see ``_WarpMemDone`` in
:mod:`repro.sm.pipeline`) are the picklable replacement — the fix this
rule's message points at.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.analysis.engine import ModuleInfo, Reporter, Rule

#: Method names whose arguments are (heuristically) stored on the receiver.
STORAGE_SINKS = frozenset(
    {"append", "appendleft", "add", "insert", "register", "schedule",
     "push", "setdefault", "extend"}
)

_FIX = ("store a module-level callable object instead (a small class with "
        "__slots__ and __call__ pickles cleanly)")


class _PicklabilityVisitor(ast.NodeVisitor):
    """Walks one module tracking which names are local (nested) definitions."""

    def __init__(self, module: ModuleInfo, reporter: Reporter) -> None:
        self._module = module
        self._reporter = reporter
        #: Stack of per-function sets of locally-defined function/class names.
        self._local_defs: list[set[str]] = []

    def _is_local_def(self, expr: ast.expr) -> bool:
        return (
            isinstance(expr, ast.Name)
            and any(expr.id in names for names in self._local_defs)
        )

    def _is_unpicklable(self, expr: ast.expr) -> Optional[str]:
        """Describe why ``expr`` would poison a checkpoint, if it would."""
        if isinstance(expr, ast.Lambda):
            return "a lambda"
        if isinstance(expr, ast.Name) and self._is_local_def(expr):
            return f"locally-defined '{expr.id}'"
        if (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Name)
            and self._is_local_def(expr.func)
        ):
            return f"an instance of locally-defined class '{expr.func.id}'"
        return None

    def _visit_function(self, node: "ast.FunctionDef | ast.AsyncFunctionDef") -> None:
        names = {
            stmt.name
            for stmt in ast.walk(node)
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
            and stmt is not node
        }
        self._local_defs.append(names)
        self.generic_visit(node)
        self._local_defs.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, (ast.Attribute, ast.Subscript)):
                reason = self._is_unpicklable(node.value)
                if reason is not None:
                    where = ("attribute" if isinstance(target, ast.Attribute)
                             else "container slot")
                    self._reporter.report(
                        PicklabilityRule.code, self._module, node,
                        f"storing {reason} on an object {where} breaks "
                        f"GPUSimulator.snapshot() pickling; {_FIX}",
                    )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in STORAGE_SINKS
        ):
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                reason = self._is_unpicklable(arg)
                if reason is not None:
                    self._reporter.report(
                        PicklabilityRule.code, self._module, arg,
                        f"passing {reason} into .{node.func.attr}(...) stores "
                        f"it on checkpointable state, which breaks "
                        f"GPUSimulator.snapshot() pickling; {_FIX}",
                    )
        self.generic_visit(node)


class PicklabilityRule(Rule):
    """SL002: unpicklable callables stored on checkpointable objects."""

    code = "SL002"
    title = "picklability: no lambdas/closures/local classes on checkpointable state"

    def check_module(self, module: ModuleInfo, reporter: Reporter) -> None:
        if not module.is_hot:
            return
        _PicklabilityVisitor(module, reporter).visit(module.tree)
