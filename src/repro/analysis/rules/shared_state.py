"""SL009 — cross-SM shared mutable state reachable from the cycle path.

The whole point of the effect analysis (:mod:`repro.analysis.effects`) is
to prove that parallelising the per-SM cycle loop cannot race: every
mutable location an SM's ``cycle`` can reach must be either SM-private
(one owning SM, by construction) or behind an explicitly declared
boundary class (``# simlint: boundary[reason]`` — the L2/DRAM subsystem,
the aggregated stats bundles, the epoch-serialized telemetry hub).

SL009 fires on everything else: a write, reachable from ``SMCore.cycle``,
whose receiver the ownership analysis proves is shared between SMs (or a
module-level global mutated from the cycle path). Each finding is
anchored at the write site, so ``# simlint: ignore[SL009]`` on that line
waives it — but a waiver is a claim that the sharing is benign, so it
deserves a justification comment.

This rule is ``finish``-only: it needs the whole project loaded before
the interprocedural walk can run. The analysis is memoised on the
:class:`~repro.analysis.engine.Project`, so SL009 plus
``--isolation-report`` in one invocation pay for a single walk.
"""

from __future__ import annotations

from repro.analysis.effects import analyze_project
from repro.analysis.effects.report import illegal_writes
from repro.analysis.engine import ModuleInfo, Project, Reporter, Rule


class SharedStateRule(Rule):
    code = "SL009"
    title = "cross-SM shared mutable state reachable from the cycle path"

    def check_module(self, module: ModuleInfo, reporter: Reporter) -> None:
        """Per-module pass: nothing to do — SL009 is interprocedural."""

    def finish(self, project: Project, reporter: Reporter) -> None:
        effects = analyze_project(project)
        by_path = {ir.info.display_path: ir.info for ir in effects.modules}
        for write in illegal_writes(effects):
            module = by_path.get(write.path)
            if module is None:
                continue
            target = f"{write.cls}.{write.attr}" if write.attr else write.cls
            detail = write.detail or (
                f"`{write.writer}` writes shared state `{target}` "
                f"({write.kind}) reachable from the per-SM cycle path"
            )
            reporter.report(
                self.code,
                module,
                None,
                f"{detail}; make the owner SM-private, mark its class "
                "`# simlint: boundary[reason]`, or waive with a justification",
                line=write.lineno,
                col=write.col,
            )
