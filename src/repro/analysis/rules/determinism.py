"""SL001 — determinism: hash-order iteration, ``id()`` ordering, unseeded RNG.

Bit-identical cycle counts require every iteration the simulator performs
to have one well-defined order. This rule flags the three ways Python
silently breaks that:

* order-sensitive iteration over a ``set``/``frozenset`` (hash order —
  varies across processes for str/object elements under hash
  randomisation);
* in hot-path modules only, order-sensitive iteration over dict views
  (``.keys()``/``.values()``/``.items()``). Dict order *is* insertion
  order in CPython, so this is advisory: wrap in ``sorted(...)`` or add a
  suppression comment documenting why the insertion order is
  deterministic;
* ``id()``-based ordering or keying (identity addresses change run to
  run) and use of the process-global :mod:`random` module (unseeded;
  simulations must thread an explicitly seeded ``random.Random(seed)``).

Order-insensitive sinks (``sorted``, ``sum``, ``min``, ``max``, ``any``,
``all``, ``len``, ``set``, ``frozenset``) and membership tests are exempt.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.analysis.engine import ModuleInfo, Reporter, Rule

#: Builtins that consume an iterable without exposing its order.
ORDER_INSENSITIVE_SINKS = frozenset(
    {"sorted", "sum", "min", "max", "any", "all", "len", "set", "frozenset"}
)

#: Builtins that materialise an iterable *in iteration order*.
ORDER_SENSITIVE_CONVERTERS = frozenset({"list", "tuple", "dict", "enumerate", "iter"})

#: Type names treated as set-like in annotations.
SET_TYPE_NAMES = frozenset(
    {"set", "frozenset", "Set", "FrozenSet", "MutableSet", "AbstractSet"}
)

_DICT_VIEW_METHODS = frozenset({"keys", "values", "items"})

_SET_OPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)


def _annotation_is_set(annotation: Optional[ast.expr]) -> bool:
    """True if an annotation expression denotes a set-like type."""
    if annotation is None:
        return False
    if isinstance(annotation, ast.Subscript):
        return _annotation_is_set(annotation.value)
    if isinstance(annotation, ast.Name):
        return annotation.id in SET_TYPE_NAMES
    if isinstance(annotation, ast.Attribute):
        return annotation.attr in SET_TYPE_NAMES
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        head = annotation.value.strip().split("[", 1)[0].strip()
        return head.rsplit(".", 1)[-1] in SET_TYPE_NAMES
    return False


def _is_set_literal(expr: ast.expr) -> bool:
    """Set display, set comprehension, or a ``set()``/``frozenset()`` call."""
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
        return expr.func.id in {"set", "frozenset"}
    return False


def _dict_view_call(expr: ast.expr) -> Optional[str]:
    """Return the view method name when ``expr`` is ``X.keys()`` etc."""
    if (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Attribute)
        and expr.func.attr in _DICT_VIEW_METHODS
        and not expr.args
        and not expr.keywords
    ):
        return expr.func.attr
    return None


class _Scope:
    """One lexical scope's set-typed names, chained to its parent."""

    __slots__ = ("parent", "set_names")

    def __init__(self, parent: Optional["_Scope"]) -> None:
        self.parent = parent
        self.set_names: set[str] = set()

    def is_set(self, name: str) -> bool:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.set_names:
                return True
            scope = scope.parent
        return False


def _class_set_attributes(classdef: ast.ClassDef) -> set[str]:
    """Names of ``self.<attr>`` slots a class assigns set literals to."""
    attrs: set[str] = set()
    for stmt in classdef.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            if _annotation_is_set(stmt.annotation):
                attrs.add(stmt.target.id)
        if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for node in ast.walk(stmt):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        and _is_set_literal(node.value)
                    ):
                        attrs.add(target.attr)
            elif isinstance(node, ast.AnnAssign):
                target = node.target
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and (_annotation_is_set(node.annotation)
                         or (node.value is not None and _is_set_literal(node.value)))
                ):
                    attrs.add(target.attr)
    return attrs


class _DeterminismVisitor(ast.NodeVisitor):
    """Single-module walker tracking set-typed names per lexical scope."""

    def __init__(self, module: ModuleInfo, reporter: Reporter) -> None:
        self._module = module
        self._reporter = reporter
        self._scope = _Scope(None)
        self._class_attrs: list[set[str]] = []
        #: Comprehensions passed directly to an order-insensitive sink.
        self._exempt: set[ast.AST] = set()

    # -- scope plumbing -------------------------------------------------

    def _push_scope(self) -> _Scope:
        self._scope = _Scope(self._scope)
        return self._scope

    def _pop_scope(self) -> None:
        assert self._scope.parent is not None
        self._scope = self._scope.parent

    def _visit_function(self, node: "ast.FunctionDef | ast.AsyncFunctionDef") -> None:
        self._push_scope()
        args = node.args
        for arg in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        ):
            if _annotation_is_set(arg.annotation):
                self._scope.set_names.add(arg.arg)
        self.generic_visit(node)
        self._pop_scope()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._push_scope()
        self.generic_visit(node)
        self._pop_scope()

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_attrs.append(_class_set_attributes(node))
        self._push_scope()
        self.generic_visit(node)
        self._pop_scope()
        self._class_attrs.pop()

    # -- set-type inference ---------------------------------------------

    def _is_setish(self, expr: ast.expr) -> bool:
        if _is_set_literal(expr):
            return True
        if isinstance(expr, ast.Name):
            return self._scope.is_set(expr.id)
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and self._class_attrs
        ):
            return expr.attr in self._class_attrs[-1]
        if isinstance(expr, ast.BinOp) and isinstance(expr.op, _SET_OPS):
            return self._is_setish(expr.left) or self._is_setish(expr.right)
        return False

    def visit_Assign(self, node: ast.Assign) -> None:
        if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
            if self._is_setish(node.value):
                self._scope.set_names.add(node.targets[0].id)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name):
            if _annotation_is_set(node.annotation) or (
                node.value is not None and self._is_setish(node.value)
            ):
                self._scope.set_names.add(node.target.id)
        self.generic_visit(node)

    # -- iteration sites -------------------------------------------------

    def _check_iteration(self, expr: ast.expr, node: ast.AST) -> None:
        if (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Name)
            and expr.func.id in ORDER_INSENSITIVE_SINKS
        ):
            return
        if self._is_setish(expr):
            self._reporter.report(
                DeterminismRule.code, self._module, node,
                "order-sensitive iteration over a set: set order is "
                "hash-dependent and varies between runs; wrap in sorted(...)",
            )
            return
        view = _dict_view_call(expr)
        if view is not None and self._module.is_hot:
            self._reporter.report(
                DeterminismRule.code, self._module, node,
                f"order-sensitive iteration over dict view .{view}() in a "
                "hot-path module; wrap in sorted(...) or add "
                "'# simlint: ignore[SL001]' with a note proving the "
                "insertion order is deterministic",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter, node.iter)
        self.generic_visit(node)

    def visit_YieldFrom(self, node: ast.YieldFrom) -> None:
        self._check_iteration(node.value, node.value)
        self.generic_visit(node)

    def _visit_comprehension(
        self,
        node: "ast.ListComp | ast.SetComp | ast.GeneratorExp | ast.DictComp",
    ) -> None:
        exempt = node in self._exempt
        order_insensitive = exempt or isinstance(node, ast.SetComp)
        for generator in node.generators:
            if not order_insensitive:
                self._check_iteration(generator.iter, generator.iter)
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._visit_comprehension(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._visit_comprehension(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._visit_comprehension(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._visit_comprehension(node)

    # -- calls: converters, sinks, id(), random --------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in ORDER_INSENSITIVE_SINKS:
                for arg in node.args:
                    if isinstance(
                        arg,
                        (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp),
                    ):
                        self._exempt.add(arg)
            elif func.id in ORDER_SENSITIVE_CONVERTERS and node.args:
                self._check_iteration(node.args[0], node.args[0])
            if func.id == "id":
                self._reporter.report(
                    DeterminismRule.code, self._module, node,
                    "id() values are process-specific memory addresses; "
                    "never order, hash, or key simulation state by id()",
                )
            if func.id in {"sorted", "min", "max"}:
                for keyword in node.keywords:
                    if (
                        keyword.arg == "key"
                        and isinstance(keyword.value, ast.Name)
                        and keyword.value.id == "id"
                    ):
                        self._reporter.report(
                            DeterminismRule.code, self._module, keyword.value,
                            "ordering by key=id is nondeterministic across "
                            "runs; sort by a stable field instead",
                        )
        elif isinstance(func, ast.Attribute):
            value = func.value
            if isinstance(value, ast.Name) and value.id == "random":
                if func.attr == "Random":
                    if not node.args and not node.keywords:
                        self._reporter.report(
                            DeterminismRule.code, self._module, node,
                            "random.Random() without a seed draws from OS "
                            "entropy; pass an explicit seed",
                        )
                else:
                    self._reporter.report(
                        DeterminismRule.code, self._module, node,
                        f"random.{func.attr}() uses the process-global "
                        "unseeded RNG; thread an explicitly seeded "
                        "random.Random(seed) through the simulation instead",
                    )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            names = ", ".join(alias.name for alias in node.names)
            if any(alias.name != "Random" for alias in node.names):
                self._reporter.report(
                    DeterminismRule.code, self._module, node,
                    f"'from random import {names}' binds process-global "
                    "unseeded RNG functions; use an explicitly seeded "
                    "random.Random(seed) instance",
                )
        self.generic_visit(node)


class DeterminismRule(Rule):
    """SL001: nondeterministic iteration order or randomness."""

    code = "SL001"
    title = "determinism: hash-order iteration, id() ordering, unseeded random"

    def check_module(self, module: ModuleInfo, reporter: Reporter) -> None:
        _DeterminismVisitor(module, reporter).visit(module.tree)
