"""SL007 — hot-path classes must declare ``__slots__`` and stay picklable.

The cycle loop allocates and touches ``sm``/``mem`` objects millions of
times per run, and the parallel sweep backend
(:mod:`repro.experiments.parallel`) ships whole result graphs between
processes. A slot-less class in those packages costs twice: every
instance drags a per-object ``__dict__`` (heap bloat, slower attribute
access in the hottest loops), and a class defined inside a function can
never cross a process boundary at all — pickle resolves classes by
module-level qualname.

Within ``sm``/``mem`` modules this rule flags:

* classes with neither a ``__slots__`` declaration nor
  ``@dataclass(slots=True)``;
* classes defined inside functions (unpicklable, regardless of slots).

Exempt: exception types (``pickle`` and ``raise`` machinery expect
dict-backed instances), ``Enum``/``NamedTuple``/``Protocol``/``ABC``
subclasses (their metaclasses manage storage), and anything carrying a
``# simlint: ignore[SL007]``.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import ModuleInfo, Reporter, Rule

#: Path parts that mark the cycle loop's object graph. Narrower than the
#: engine's HOT_PACKAGES on purpose: schedulers/prefetchers allocate per
#: warp, not per cycle, and their tables are dict-shaped by design.
SLOTS_PACKAGES = frozenset({"sm", "mem"})

#: Base-class names whose metaclass (or runtime contract) precludes slots.
EXEMPT_BASES = frozenset({
    "Enum", "IntEnum", "StrEnum", "Flag", "IntFlag",
    "NamedTuple", "Protocol", "ABC", "Generic",
    "BaseException", "Exception",
})


def _base_name(base: ast.expr) -> str:
    """Terminal name of a base-class expression (``enum.Enum`` -> ``Enum``)."""
    if isinstance(base, ast.Subscript):  # Protocol[...], Generic[T]
        base = base.value
    if isinstance(base, ast.Attribute):
        return base.attr
    if isinstance(base, ast.Name):
        return base.id
    return ""


def _is_exempt(node: ast.ClassDef) -> bool:
    for base in node.bases:
        name = _base_name(base)
        if name in EXEMPT_BASES or name.endswith(("Error", "Exception", "Warning")):
            return True
    return False


def _declares_slots(node: ast.ClassDef) -> bool:
    for stmt in node.body:
        if isinstance(stmt, ast.Assign):
            if any(isinstance(t, ast.Name) and t.id == "__slots__"
                   for t in stmt.targets):
                return True
        elif isinstance(stmt, ast.AnnAssign):
            target = stmt.target
            if isinstance(target, ast.Name) and target.id == "__slots__":
                return True
    return False


def _is_slotted_dataclass(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        if not isinstance(decorator, ast.Call):
            continue
        if _base_name(decorator.func) != "dataclass":
            continue
        for keyword in decorator.keywords:
            if (keyword.arg == "slots"
                    and isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is True):
                return True
    return False


class _SlotsVisitor(ast.NodeVisitor):
    def __init__(self, module: ModuleInfo, reporter: Reporter) -> None:
        self._module = module
        self._reporter = reporter
        self._function_depth = 0

    def _visit_function(self, node: "ast.FunctionDef | ast.AsyncFunctionDef") -> None:
        self._function_depth += 1
        self.generic_visit(node)
        self._function_depth -= 1

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if _is_exempt(node):
            return  # metaclass-managed; nested helpers inside it too
        if self._function_depth:
            self._reporter.report(
                HotPathSlotsRule.code, self._module, node,
                f"class {node.name} is defined inside a function: pickle "
                f"resolves classes by module-level qualname, so instances "
                f"can never cross the process-pool boundary; hoist it to "
                f"module level",
            )
        elif not (_declares_slots(node) or _is_slotted_dataclass(node)):
            self._reporter.report(
                HotPathSlotsRule.code, self._module, node,
                f"hot-path class {node.name} declares no __slots__: every "
                f"instance carries a __dict__, bloating the cycle loop's "
                f"heap and slowing attribute access; declare __slots__ or "
                f"use @dataclass(slots=True)",
            )
        self.generic_visit(node)


class HotPathSlotsRule(Rule):
    """SL007: sm/mem classes declare __slots__ and pickle across processes."""

    code = "SL007"
    title = "hot-path slots: sm/mem classes declare __slots__ and stay picklable"

    def check_module(self, module: ModuleInfo, reporter: Reporter) -> None:
        if not SLOTS_PACKAGES.intersection(module.path.parts):
            return
        _SlotsVisitor(module, reporter).visit(module.tree)
