"""Built-in simlint rules (SL001–SL011).

Each rule lives in its own module and registers here. ``build_all_rules``
returns fresh instances for one engine run — rules carry per-run state
(collected counters, registries) between ``check_module`` and ``finish``.
To add a rule: subclass :class:`repro.analysis.engine.Rule`, give it a
unique ``code``/``title``, and append its class to ``ALL_RULES``.
"""

from __future__ import annotations

from repro.analysis.engine import Rule
from repro.analysis.rules.counters import CounterHygieneRule
from repro.analysis.rules.determinism import DeterminismRule
from repro.analysis.rules.frozen_config import FrozenConfigRule
from repro.analysis.rules.global_state import GlobalStateRule
from repro.analysis.rules.hotpath_slots import HotPathSlotsRule
from repro.analysis.rules.metrics_names import MetricNamesRule
from repro.analysis.rules.paper_golden import PaperGoldenRule
from repro.analysis.rules.picklability import PicklabilityRule
from repro.analysis.rules.registries import RegistryCompletenessRule
from repro.analysis.rules.robust_io import RobustIORule
from repro.analysis.rules.shared_state import SharedStateRule

#: Every registered rule class, in code order.
ALL_RULES: tuple[type[Rule], ...] = (
    DeterminismRule,
    PicklabilityRule,
    CounterHygieneRule,
    RegistryCompletenessRule,
    FrozenConfigRule,
    PaperGoldenRule,
    HotPathSlotsRule,
    RobustIORule,
    SharedStateRule,
    GlobalStateRule,
    MetricNamesRule,
)


def build_all_rules() -> list[Rule]:
    """Fresh rule instances for one lint run."""
    return [rule_class() for rule_class in ALL_RULES]
