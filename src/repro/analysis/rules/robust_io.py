"""SL008 — robust I/O: no swallowed failures or torn writes in persistence code.

The experiment and registry layers own the durable artifacts of a run
(sweep JSONL stores, registry records, exported JSON). A crash between
``open(path, "w")`` and the final ``write`` leaves a torn file that a
resume or ``repro fsck`` must then repair; a bare ``except:`` (or a
handler that only ``pass``es) turns a real persistence failure into
silent data loss. Within modules under ``experiments/`` or ``registry/``
this rule flags:

* bare ``except:`` clauses — they catch ``KeyboardInterrupt`` and
  ``SystemExit`` too, so a Ctrl-C mid-write looks like success;
* handlers whose body is only ``pass``/``...`` — the failure is
  swallowed with no record that anything went wrong;
* direct whole-file writes: ``open(path, "w"/"a"/"x")`` or
  ``Path.write_text(...)`` — a crash mid-write tears the file.

The fixes this rule's messages point at live in
:mod:`repro.resilience.atomic`: :func:`~repro.resilience.atomic.atomic_write`
(temp file + fsync + ``os.replace``) for whole files and
:func:`~repro.resilience.atomic.append_line` (single-syscall,
self-truncating) for JSONL appends. Writing to an explicitly temporary
name (one containing ``tmp``) is exempt — that *is* the
write-temp-then-rename pattern. A deliberate swallow (e.g. a telemetry
side channel that must never take the simulation down) carries
``# simlint: ignore[SL008]`` plus a comment saying why.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.analysis.engine import ModuleInfo, Reporter, Rule

#: Package-directory names whose modules persist run artifacts.
PERSISTENCE_PACKAGES = frozenset({"experiments", "registry"})

#: ``open`` modes that create or mutate the target file in place.
_WRITE_MODES = ("w", "a", "x")


def _is_persistence_module(module: ModuleInfo) -> bool:
    return any(part in PERSISTENCE_PACKAGES for part in module.path.parts)


def _body_only_passes(body: list[ast.stmt]) -> bool:
    """True when a handler body does nothing at all (``pass`` / ``...``)."""
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if (isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant)
                and stmt.value.value is Ellipsis):
            continue
        return False
    return True


def _open_write_mode(node: ast.Call) -> Optional[str]:
    """The write mode of an ``open(...)`` call, if it opens for writing."""
    if not (isinstance(node.func, ast.Name) and node.func.id == "open"):
        return None
    mode: Optional[ast.expr] = None
    if len(node.args) >= 2:
        mode = node.args[1]
    else:
        for keyword in node.keywords:
            if keyword.arg == "mode":
                mode = keyword.value
    if not (isinstance(mode, ast.Constant) and isinstance(mode.value, str)):
        return None  # default mode is "r"; dynamic modes are out of reach
    if any(flag in mode.value for flag in _WRITE_MODES):
        return mode.value
    return None


def _targets_temp_file(module: ModuleInfo, node: ast.Call) -> bool:
    """True when the write target is an explicitly temporary name.

    Writing to ``foo.tmp`` (then ``os.replace``-ing it over the real
    path) is the atomic pattern itself, not a violation of it.
    """
    target: Optional[ast.expr] = None
    if isinstance(node.func, ast.Name):  # open(target, ...)
        target = node.args[0] if node.args else None
    elif isinstance(node.func, ast.Attribute):  # target.write_text(...)
        target = node.func.value
    if target is None:
        return False
    segment = ast.get_source_segment(module.source, target) or ""
    return "tmp" in segment.lower() or "temp" in segment.lower()


class _RobustIOVisitor(ast.NodeVisitor):
    def __init__(self, module: ModuleInfo, reporter: Reporter) -> None:
        self._module = module
        self._reporter = reporter

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._reporter.report(
                RobustIORule.code, self._module, node,
                "bare 'except:' in persistence code also catches "
                "KeyboardInterrupt/SystemExit, so an interrupted write "
                "looks like success; catch the specific exception "
                "(OSError, json.JSONDecodeError, ...)",
            )
        elif _body_only_passes(node.body):
            self._reporter.report(
                RobustIORule.code, self._module, node,
                "exception swallowed with a pass-only handler: a "
                "persistence failure here is silent data loss; handle "
                "it, log it, or re-raise (a deliberate swallow carries "
                "# simlint: ignore[SL008] and a comment saying why)",
            )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        mode = _open_write_mode(node)
        if mode is not None and not _targets_temp_file(self._module, node):
            fix = ("repro.resilience.atomic.append_line"
                   if "a" in mode else
                   "repro.resilience.atomic.atomic_write (or write a "
                   "*.tmp name and os.replace it)")
            self._reporter.report(
                RobustIORule.code, self._module, node,
                f"open(..., {mode!r}) writes the live file in place; a "
                f"crash mid-write tears it — use {fix}",
            )
        elif (isinstance(node.func, ast.Attribute)
                and node.func.attr == "write_text"
                and not _targets_temp_file(self._module, node)):
            self._reporter.report(
                RobustIORule.code, self._module, node,
                "Path.write_text replaces the live file non-atomically; "
                "a crash mid-write tears it — use "
                "repro.resilience.atomic.atomic_write",
            )
        self.generic_visit(node)


class RobustIORule(Rule):
    """SL008: swallowed exceptions and torn writes in persistence code."""

    code = "SL008"
    title = ("robust I/O: no bare/pass-only except or non-atomic writes "
             "in experiments/ and registry/")

    def check_module(self, module: ModuleInfo, reporter: Reporter) -> None:
        if not _is_persistence_module(module):
            return
        _RobustIOVisitor(module, reporter).visit(module.tree)
