"""SL010 — hidden global state in hot simulation packages.

Global state is the enemy of both reproducibility (two runs in one
process see each other through it) and the planned parallel cycle loop
(worker processes silently fork diverging copies). Three patterns count
as hidden globals, checked only in the hot packages
(:data:`repro.analysis.engine.HOT_PACKAGES` — the code that runs inside
or feeds the per-SM cycle loop):

* a module-level mutable (``list``/``dict``/``set``/… literal) mutated
  from inside a function or method — whether defined in the same module
  or imported from another project module. Populating a registry at
  module import time is fine; mutating it later from call paths is not.
* a class-level mutable attribute on a non-dataclass — shared by every
  instance, which reads like per-instance state and races like a global.
* a mutable default argument — one shared object across all calls.

Findings anchor at the mutation site (or declaration, for class attrs
and defaults), so ``# simlint: ignore[SL010]`` plus a justification
waives intentional cases.

Like SL009 this is a ``finish`` rule: cross-module attribution (mutating
an imported registry) needs every module's IR, which the memoised effect
analysis already provides.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.analysis.effects import analyze_project
from repro.analysis.effects.model import GlobalWriteRec, MethodIR, ModuleIR
from repro.analysis.engine import ModuleInfo, Project, Reporter, Rule


def _iter_bodies(ir: ModuleIR) -> Iterable[tuple[str, MethodIR]]:
    """Every function/method body in a module, with a display name."""
    for name, fn in ir.functions.items():
        yield name, fn
    for cls in ir.classes:
        for mname, meth in cls.methods.items():
            yield f"{cls.name}.{mname}", meth


class GlobalStateRule(Rule):
    code = "SL010"
    title = "hidden global state in hot packages"

    def check_module(self, module: ModuleInfo, reporter: Reporter) -> None:
        """Per-module pass: nothing to do — SL010 runs in ``finish``."""

    def finish(self, project: Project, reporter: Reporter) -> None:
        effects = analyze_project(project)
        #: module stem -> names of its module-level mutables, project-wide.
        mutables_by_stem: dict[str, set[str]] = {}
        for ir in effects.modules:
            stem = ir.info.path.stem
            mutables_by_stem.setdefault(stem, set()).update(ir.module_mutables)

        for ir in effects.modules:
            if not ir.info.is_hot:
                continue
            for writer, body in _iter_bodies(ir):
                for gw in body.global_writes:
                    origin = self._mutable_origin(ir, gw, mutables_by_stem)
                    if origin is None:
                        continue
                    reporter.report(
                        self.code,
                        ir.info,
                        None,
                        f"module-level mutable `{origin}` is mutated from "
                        f"`{writer}`; pass the state explicitly or move it "
                        "onto an owning object",
                        line=gw.lineno,
                        col=gw.col,
                    )
            for cls in ir.classes:
                for attr, lineno in cls.class_mutable_attrs:
                    reporter.report(
                        self.code,
                        ir.info,
                        None,
                        f"class-level mutable attribute `{cls.name}.{attr}` "
                        "is shared by every instance; initialise it in "
                        "`__init__` instead",
                        line=lineno,
                        col=0,
                    )
            for writer, body in _iter_bodies(ir):
                for pname, lineno in body.mutable_defaults:
                    reporter.report(
                        self.code,
                        ir.info,
                        None,
                        f"mutable default for parameter `{pname}` of "
                        f"`{writer}` is shared across calls; default to None "
                        "and build a fresh object inside",
                        line=lineno,
                        col=0,
                    )

    @staticmethod
    def _mutable_origin(
        ir: ModuleIR,
        gw: GlobalWriteRec,
        mutables_by_stem: dict[str, set[str]],
    ) -> Optional[str]:
        """Render the mutated global, or None when it is not a known mutable.

        ``global``-statement rebinds always count (rebinding module state
        from a function is hidden global state regardless of the value's
        type); container mutations count only when the name is a known
        module-level mutable here or in the project module it was
        imported from.
        """
        if gw.kind == "rebind":
            return gw.name
        if gw.name in ir.module_mutables:
            return gw.name
        imported = ir.imported.get(gw.name)
        if imported is not None:
            module, original = imported
            stem = module.rsplit(".", 1)[-1].lstrip(".")
            if original in mutables_by_stem.get(stem, set()):
                return f"{stem}.{original}"
        return None
