"""SL011 — metric-name hygiene: emit sites and METRICS in lockstep.

The operational metrics registry (:mod:`repro.telemetry.metrics`)
resolves every instrument by a dotted name declared in its module-level
``METRICS`` dict — the runtime raises on an undeclared name, but only
when the emit site actually executes, which for rare paths (worker
quarantine, degradation) may be never in CI. This rule is the static
twin, with the same philosophy as SL003's counter pass:

* every ``<registry>.counter("...")`` / ``.gauge("...")`` /
  ``.histogram("...")`` call with a string-literal name must use a name
  declared in ``METRICS``;
* the call's method must match the declared type — ``.counter()`` on a
  name declared as a gauge would raise :class:`TypeError` at runtime;
* once the linted tree contains at least one emit site, every declared
  metric must be emitted somewhere (an orphan metric reports a constant
  zero that reads like a measurement).

Detection is name-based: any module-level ``METRICS`` dict literal with
string keys and ``(type, help)`` tuple values is treated as the
declaration registry, so the rule works on fixture trees as well as the
real package. Non-literal name arguments are skipped — the runtime
registry still guards those.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Optional

from repro.analysis.engine import ModuleInfo, Project, Reporter, Rule

#: Name of the declaration dict in :mod:`repro.telemetry.metrics`.
_REGISTRY_NAME = "METRICS"

#: Registry methods whose first argument is a declared metric name,
#: mapped to the metric type they require.
_EMIT_METHODS = frozenset({"counter", "gauge", "histogram"})


@dataclass
class _MetricDeclaration:
    """One ``METRICS`` entry: dotted name -> declared type (when literal)."""

    name: str
    metric_type: Optional[str]
    module: ModuleInfo
    node: ast.expr


@dataclass
class _EmitSite:
    """One ``.counter("...")``/``.gauge``/``.histogram`` call site."""

    name: str
    method: str
    module: ModuleInfo
    node: ast.Call


def _metrics_dicts(module: ModuleInfo) -> list[ast.Dict]:
    """Module-level ``METRICS = {...}`` literals (plain or annotated)."""
    found: list[ast.Dict] = []
    for stmt in module.tree.body:
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
        ):
            name, value = stmt.targets[0].id, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            name, value = stmt.target.id, stmt.value
        else:
            continue
        if name == _REGISTRY_NAME and isinstance(value, ast.Dict):
            found.append(value)
    return found


def _collect_declarations(
    module: ModuleInfo, out: list[_MetricDeclaration]
) -> bool:
    """Append ``METRICS`` entries; True when the module declares the dict."""
    dicts = _metrics_dicts(module)
    for dict_node in dicts:
        for key, value in zip(dict_node.keys, dict_node.values):
            if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
                continue
            metric_type: Optional[str] = None
            if (
                isinstance(value, ast.Tuple)
                and value.elts
                and isinstance(value.elts[0], ast.Constant)
                and isinstance(value.elts[0].value, str)
            ):
                metric_type = value.elts[0].value
            out.append(_MetricDeclaration(key.value, metric_type, module, key))
    return bool(dicts)


def _collect_emit_sites(module: ModuleInfo, out: list[_EmitSite]) -> None:
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr in _EMIT_METHODS):
            continue
        if not node.args:
            continue
        arg = node.args[0]
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            out.append(_EmitSite(arg.value, func.attr, module, node))


class MetricNamesRule(Rule):
    """SL011: emitted metric names declared in METRICS, and none orphaned."""

    code = "SL011"
    title = "metric-name hygiene: emit sites match the METRICS declarations"

    def __init__(self) -> None:
        self._declarations: list[_MetricDeclaration] = []
        self._emits: list[_EmitSite] = []
        self._registry_seen = False

    def check_module(self, module: ModuleInfo, reporter: Reporter) -> None:
        if _collect_declarations(module, self._declarations):
            self._registry_seen = True
        _collect_emit_sites(module, self._emits)

    def finish(self, project: Project, reporter: Reporter) -> None:
        if not self._registry_seen:
            # No METRICS dict in the linted tree: nothing to check against.
            return
        declared: dict[str, _MetricDeclaration] = {}
        for decl in self._declarations:
            declared.setdefault(decl.name, decl)
        emitted: set[str] = set()
        for site in self._emits:
            emitted.add(site.name)
            decl = declared.get(site.name)
            if decl is None:
                reporter.report(
                    self.code, site.module, site.node,
                    f"metric {site.name!r} is emitted here but not declared "
                    "in repro.telemetry.metrics.METRICS; add it there so the "
                    "name is stable and exported",
                )
            elif decl.metric_type is not None and decl.metric_type != site.method:
                reporter.report(
                    self.code, site.module, site.node,
                    f"metric {site.name!r} is declared as a "
                    f"{decl.metric_type} but emitted via .{site.method}(); "
                    "the registry raises TypeError on this call at runtime",
                )
        if self._emits:
            for name, decl in sorted(declared.items()):
                if name not in emitted:
                    reporter.report(
                        self.code, decl.module, decl.node,
                        f"metric {name!r} is declared in METRICS but never "
                        "emitted anywhere in the linted tree (orphan "
                        "metric); wire an emit site or remove the entry",
                    )
