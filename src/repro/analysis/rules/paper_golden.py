"""SL006 — paper-golden completeness: every figure producer is scored.

The fidelity scorecard (``python -m repro scorecard``) only catches
drift in figures it has golden data for. A producer added to
``experiments/figures.py`` without a matching entry in
``experiments/paper_data.py`` silently escapes the CI regression gate;
a golden entry whose producer was renamed or deleted reads as covered
while scoring nothing. The rule keys on directories containing both
``figures.py`` and ``paper_data.py`` and checks, structurally:

* every figure/table producer (a module-level function named
  ``figureN`` / ``tableN``) appears as a key of the ``GOLDEN`` dict;
* every ``GOLDEN`` key resolves to such a producer;
* ``GOLDEN`` and ``SCORECARD`` agree key-for-key — a golden series
  without a scorecard spec is never scored, and a spec without golden
  data fails at scoring time.

Both dicts must be plain module-level literals for the rule to apply;
computed registries are skipped (SL004's duplicate-key check and the
runtime cross-check cover those).
"""

from __future__ import annotations

import ast
import re
from typing import Optional

from repro.analysis.engine import ModuleInfo, Project, Reporter, Rule

_PRODUCER_RE = re.compile(r"^(figure|table)\d+$")

_GOLDEN = "GOLDEN"
_SCORECARD = "SCORECARD"


def _literal_dict_keys(
    module: ModuleInfo, name: str
) -> Optional[dict[str, ast.expr]]:
    """String keys of a module-level ``name = {...}`` literal, if present."""
    for stmt in module.tree.body:
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
        ):
            target, value = stmt.targets[0].id, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            target, value = stmt.target.id, stmt.value
        else:
            continue
        if target != name or not isinstance(value, ast.Dict):
            continue
        keys: dict[str, ast.expr] = {}
        for key in value.keys:
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                keys[key.value] = key
        return keys
    return None


def _producers(module: ModuleInfo) -> dict[str, ast.AST]:
    """Module-level figure/table producer functions, by name."""
    return {
        node.name: node
        for node in module.tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        and _PRODUCER_RE.match(node.name)
    }


class PaperGoldenRule(Rule):
    """SL006: figure producers, golden data and scorecard specs in lock-step."""

    code = "SL006"
    title = (
        "paper-golden completeness: every figure producer has golden data "
        "and a scorecard entry"
    )

    def check_module(self, module: ModuleInfo, reporter: Reporter) -> None:
        """No per-module findings; the rule needs the sibling modules."""

    def finish(self, project: Project, reporter: Reporter) -> None:
        for _directory, modules in sorted(project.by_directory().items()):
            by_name = {module.name: module for module in modules}
            figures = by_name.get("figures")
            paper_data = by_name.get("paper_data")
            if figures is None or paper_data is None:
                continue
            self._check_pair(figures, paper_data, reporter)

    def _check_pair(
        self, figures: ModuleInfo, paper_data: ModuleInfo, reporter: Reporter
    ) -> None:
        golden = _literal_dict_keys(paper_data, _GOLDEN)
        if golden is None:
            return  # computed registry: out of structural reach
        producers = _producers(figures)
        for name, node in sorted(producers.items()):
            if name not in golden:
                reporter.report(
                    self.code, figures, node,
                    f"figure producer {name}() has no {_GOLDEN} entry in "
                    f"{paper_data.display_path}; the scorecard and the CI "
                    "regression gate cannot see it drift",
                )
        for name, key_node in sorted(golden.items()):
            if name not in producers:
                reporter.report(
                    self.code, paper_data, key_node,
                    f"{_GOLDEN} entry {name!r} has no matching producer in "
                    f"{figures.display_path}; rename or remove the stale "
                    "golden data",
                )
        scorecard = _literal_dict_keys(paper_data, _SCORECARD)
        if scorecard is None:
            return
        for name, key_node in sorted(golden.items()):
            if name not in scorecard:
                reporter.report(
                    self.code, paper_data, key_node,
                    f"{_GOLDEN} entry {name!r} has no {_SCORECARD} spec; "
                    "`repro scorecard` never scores the series",
                )
        for name, key_node in sorted(scorecard.items()):
            if name not in golden:
                reporter.report(
                    self.code, paper_data, key_node,
                    f"{_SCORECARD} entry {name!r} has no {_GOLDEN} data; "
                    "scoring it would fail at runtime",
                )
