"""SL003 — counter hygiene: every stats counter declared and live.

The stats bundles in :mod:`repro.stats.counters` are the single source of
truth for everything the experiment harness reports. Two drift modes
corrupt results silently:

* an increment site targets a counter that no ``*Stats`` dataclass
  declares — the attribute is created on the fly, never survives
  ``as_dict()`` in a structured way, and the "measurement" vanishes from
  every report;
* a declared counter is never updated anywhere — it reports a constant
  zero, which reads as a measured value (the orphaned-counter failure
  mode the runtime integrity layer cannot see at all, because a zero
  counter violates no conservation law).

Detection is project-wide and name-based: declarations are the fields of
``@dataclass`` classes whose name ends in ``Stats`` (fields annotated
with another ``*Stats`` type are nested bundles, not counters); update
sites are plain or augmented assignments whose attribute chain passes
through a segment named ``stats``/``_stats``. The never-updated check
only runs when the linted tree contains at least one update site, so
linting a declarations file on its own reports nothing.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field as dataclass_field
from typing import Optional

from repro.analysis.engine import ModuleInfo, Project, Reporter, Rule

_STATS_SEGMENTS = frozenset({"stats", "_stats"})


def _decorator_name(node: ast.expr) -> str:
    """Terminal name of a decorator expression (``dataclass`` for all forms)."""
    if isinstance(node, ast.Call):
        return _decorator_name(node.func)
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _is_stats_dataclass(node: ast.ClassDef) -> bool:
    return node.name.endswith("Stats") and any(
        _decorator_name(dec) == "dataclass" for dec in node.decorator_list
    )


def _annotation_name(annotation: Optional[ast.expr]) -> str:
    if isinstance(annotation, ast.Name):
        return annotation.id
    if isinstance(annotation, ast.Attribute):
        return annotation.attr
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        return annotation.value.strip().split("[", 1)[0].strip()
    return ""


def _attribute_segments(node: ast.expr) -> Optional[list[str]]:
    """Flatten ``a.b.c`` into ``["a", "b", "c"]``; None for complex bases."""
    parts: list[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        parts.reverse()
        return parts
    return None


@dataclass
class _Declaration:
    """One counter (or bundle) field of a Stats dataclass."""

    class_name: str
    field_name: str
    module: ModuleInfo
    line: int
    is_bundle: bool


@dataclass
class _UpdateSite:
    """One assignment through a stats chain."""

    counter: str
    module: ModuleInfo
    node: ast.stmt


@dataclass
class CounterUsage:
    """Aggregated declarations and update sites for one lint run.

    Exposed (via :meth:`CounterHygieneRule.collect`) so the CLI's
    ``--verify-against-runtime`` mode can cross-check the same static
    view against the counters a smoke simulation actually emits.
    """

    declarations: list[_Declaration] = dataclass_field(default_factory=list)
    updates: list[_UpdateSite] = dataclass_field(default_factory=list)

    @property
    def declared_counters(self) -> set[str]:
        return {d.field_name for d in self.declarations if not d.is_bundle}

    @property
    def bundle_names(self) -> set[str]:
        return {d.field_name for d in self.declarations if d.is_bundle}

    @property
    def updated_counters(self) -> set[str]:
        return {u.counter for u in self.updates}


def _collect_declarations(module: ModuleInfo, usage: CounterUsage) -> None:
    for node in ast.walk(module.tree):
        if not (isinstance(node, ast.ClassDef) and _is_stats_dataclass(node)):
            continue
        for stmt in node.body:
            if not (isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)):
                continue
            name = stmt.target.id
            if name.startswith("_"):
                continue
            annotation = _annotation_name(stmt.annotation)
            if annotation == "ClassVar":
                continue
            usage.declarations.append(_Declaration(
                class_name=node.name,
                field_name=name,
                module=module,
                line=stmt.lineno,
                is_bundle=annotation.endswith("Stats"),
            ))


def _collect_updates(module: ModuleInfo, usage: CounterUsage) -> None:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.AugAssign):
            targets: list[ast.expr] = [node.target]
        elif isinstance(node, ast.Assign):
            targets = list(node.targets)
        else:
            continue
        for target in targets:
            if not isinstance(target, ast.Attribute):
                continue
            segments = _attribute_segments(target)
            if segments is None or len(segments) < 2:
                continue
            counter = segments[-1]
            if any(seg in _STATS_SEGMENTS for seg in segments[:-1]):
                usage.updates.append(_UpdateSite(counter, module, node))


class CounterHygieneRule(Rule):
    """SL003: stats counters must be declared, and declared counters live."""

    code = "SL003"
    title = "counter hygiene: stats counters declared in a Stats dataclass and updated"

    def __init__(self) -> None:
        self._usage = CounterUsage()

    @staticmethod
    def collect(project: Project) -> CounterUsage:
        """Static counter view of a project (shared with the runtime check)."""
        usage = CounterUsage()
        for module in project.modules:
            _collect_declarations(module, usage)
            _collect_updates(module, usage)
        return usage

    def check_module(self, module: ModuleInfo, reporter: Reporter) -> None:
        _collect_declarations(module, self._usage)
        _collect_updates(module, self._usage)

    def finish(self, project: Project, reporter: Reporter) -> None:
        usage = self._usage
        declared = usage.declared_counters
        bundles = usage.bundle_names
        if not usage.declarations:
            # No Stats dataclass in the linted tree: nothing to check against.
            return
        known = declared | bundles
        for site in usage.updates:
            if site.counter not in known:
                reporter.report(
                    self.code, site.module, site.node,
                    f"counter '{site.counter}' is updated here but not "
                    "declared in any *Stats dataclass; add the field to "
                    "repro.stats.counters so it is reported and checkpointed",
                )
        if usage.updates:
            updated = usage.updated_counters
            for decl in usage.declarations:
                if decl.is_bundle or decl.field_name in updated:
                    continue
                reporter.report(
                    self.code, decl.module, None,
                    f"counter '{decl.class_name}.{decl.field_name}' is "
                    "declared but never updated anywhere in the linted tree; "
                    "it will report a constant zero — wire it up or remove it",
                    line=decl.line,
                )
