"""SL003 — counter hygiene: every stats counter declared and live.

The stats bundles in :mod:`repro.stats.counters` are the single source of
truth for everything the experiment harness reports. Two drift modes
corrupt results silently:

* an increment site targets a counter that no ``*Stats`` dataclass
  declares — the attribute is created on the fly, never survives
  ``as_dict()`` in a structured way, and the "measurement" vanishes from
  every report;
* a declared counter is never updated anywhere — it reports a constant
  zero, which reads as a measured value (the orphaned-counter failure
  mode the runtime integrity layer cannot see at all, because a zero
  counter violates no conservation law).

Detection is project-wide and name-based: declarations are the fields of
``@dataclass`` classes whose name ends in ``Stats`` (fields annotated
with another ``*Stats`` type are nested bundles, not counters); update
sites are plain or augmented assignments whose attribute chain passes
through a segment named ``stats``/``_stats``. The never-updated check
only runs when the linted tree contains at least one update site, so
linting a declarations file on its own reports nothing.

The rule has a second, telemetry-facing pass with the same philosophy:
:data:`repro.telemetry.events.EVENT_TYPES` is to telemetry events what
the ``*Stats`` dataclasses are to counters. Whenever the linted tree
contains an ``EVENT_TYPES`` registry dict, the pass checks that every
registry entry resolves to a ``TelemetryEvent`` subclass whose ``kind``
literal matches its key, that every ``TelemetryEvent`` subclass is
registered, that every ``<hub>.emit(SomeEvent(...))`` site constructs a
known event class, and — once the tree contains at least one emit site —
that no registered event is orphaned (declared but never emitted).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field as dataclass_field
from typing import Optional

from repro.analysis.engine import ModuleInfo, Project, Reporter, Rule

_STATS_SEGMENTS = frozenset({"stats", "_stats"})


def _decorator_name(node: ast.expr) -> str:
    """Terminal name of a decorator expression (``dataclass`` for all forms)."""
    if isinstance(node, ast.Call):
        return _decorator_name(node.func)
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _is_stats_dataclass(node: ast.ClassDef) -> bool:
    return node.name.endswith("Stats") and any(
        _decorator_name(dec) == "dataclass" for dec in node.decorator_list
    )


def _annotation_name(annotation: Optional[ast.expr]) -> str:
    if isinstance(annotation, ast.Name):
        return annotation.id
    if isinstance(annotation, ast.Attribute):
        return annotation.attr
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        return annotation.value.strip().split("[", 1)[0].strip()
    return ""


def _attribute_segments(node: ast.expr) -> Optional[list[str]]:
    """Flatten ``a.b.c`` into ``["a", "b", "c"]``; None for complex bases."""
    parts: list[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        parts.reverse()
        return parts
    return None


@dataclass
class _Declaration:
    """One counter (or bundle) field of a Stats dataclass."""

    class_name: str
    field_name: str
    module: ModuleInfo
    line: int
    is_bundle: bool


@dataclass
class _UpdateSite:
    """One assignment through a stats chain."""

    counter: str
    module: ModuleInfo
    node: ast.stmt


@dataclass
class _EventDeclaration:
    """One ``TelemetryEvent`` subclass found in the linted tree."""

    class_name: str
    kind: Optional[str]
    module: ModuleInfo
    node: ast.ClassDef


@dataclass
class _EventRegistryEntry:
    """One ``EVENT_TYPES`` entry: kind-string key -> event class name."""

    key: str
    class_name: str
    module: ModuleInfo
    node: ast.expr


@dataclass
class _EmitSite:
    """One ``<telemetry>.emit(SomeEvent(...))`` call."""

    class_name: str
    module: ModuleInfo
    node: ast.Call


@dataclass
class CounterUsage:
    """Aggregated declarations and update sites for one lint run.

    Exposed (via :meth:`CounterHygieneRule.collect`) so the CLI's
    ``--verify-against-runtime`` mode can cross-check the same static
    view against the counters a smoke simulation actually emits.
    """

    declarations: list[_Declaration] = dataclass_field(default_factory=list)
    updates: list[_UpdateSite] = dataclass_field(default_factory=list)

    @property
    def declared_counters(self) -> set[str]:
        return {d.field_name for d in self.declarations if not d.is_bundle}

    @property
    def bundle_names(self) -> set[str]:
        return {d.field_name for d in self.declarations if d.is_bundle}

    @property
    def updated_counters(self) -> set[str]:
        return {u.counter for u in self.updates}


def _collect_declarations(module: ModuleInfo, usage: CounterUsage) -> None:
    for node in ast.walk(module.tree):
        if not (isinstance(node, ast.ClassDef) and _is_stats_dataclass(node)):
            continue
        for stmt in node.body:
            if not (isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)):
                continue
            name = stmt.target.id
            if name.startswith("_"):
                continue
            annotation = _annotation_name(stmt.annotation)
            if annotation == "ClassVar":
                continue
            usage.declarations.append(_Declaration(
                class_name=node.name,
                field_name=name,
                module=module,
                line=stmt.lineno,
                is_bundle=annotation.endswith("Stats"),
            ))


def _collect_updates(module: ModuleInfo, usage: CounterUsage) -> None:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.AugAssign):
            targets: list[ast.expr] = [node.target]
        elif isinstance(node, ast.Assign):
            targets = list(node.targets)
        else:
            continue
        for target in targets:
            if not isinstance(target, ast.Attribute):
                continue
            segments = _attribute_segments(target)
            if segments is None or len(segments) < 2:
                continue
            counter = segments[-1]
            if any(seg in _STATS_SEGMENTS for seg in segments[:-1]):
                usage.updates.append(_UpdateSite(counter, module, node))


_EVENT_BASE = "TelemetryEvent"
_EVENT_REGISTRY = "EVENT_TYPES"


def _class_base_names(node: ast.ClassDef) -> set[str]:
    names: set[str] = set()
    for base in node.bases:
        if isinstance(base, ast.Name):
            names.add(base.id)
        elif isinstance(base, ast.Attribute):
            names.add(base.attr)
    return names


def _terminal_name(node: ast.expr) -> str:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return ""


def _collect_event_declarations(
    module: ModuleInfo, out: list[_EventDeclaration]
) -> None:
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if _EVENT_BASE not in _class_base_names(node):
            continue
        kind: Optional[str] = None
        for stmt in node.body:
            if (
                isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and stmt.target.id == "kind"
                and isinstance(stmt.value, ast.Constant)
                and isinstance(stmt.value.value, str)
            ):
                kind = stmt.value.value
        out.append(_EventDeclaration(node.name, kind, module, node))


def _collect_event_registries(
    module: ModuleInfo, out: list[_EventRegistryEntry]
) -> bool:
    """Append ``EVENT_TYPES`` entries; True when the module declares one."""
    found = False
    for stmt in module.tree.body:
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
        ):
            name, value = stmt.targets[0].id, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            name, value = stmt.target.id, stmt.value
        else:
            continue
        if name != _EVENT_REGISTRY or not isinstance(value, ast.Dict):
            continue
        found = True
        for key, entry in zip(value.keys, value.values):
            if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
                continue
            class_name = _terminal_name(entry)
            if class_name:
                out.append(_EventRegistryEntry(key.value, class_name, module, entry))
    return found


def _collect_emit_sites(module: ModuleInfo, out: list[_EmitSite]) -> None:
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "emit"):
            continue
        if len(node.args) != 1 or not isinstance(node.args[0], ast.Call):
            continue
        class_name = _terminal_name(node.args[0].func)
        if class_name.endswith("Event"):
            out.append(_EmitSite(class_name, module, node.args[0]))


class CounterHygieneRule(Rule):
    """SL003: stats counters must be declared, and declared counters live."""

    code = "SL003"
    title = "counter hygiene: stats counters declared in a Stats dataclass and updated"

    def __init__(self) -> None:
        self._usage = CounterUsage()
        self._events: list[_EventDeclaration] = []
        self._registry: list[_EventRegistryEntry] = []
        self._emits: list[_EmitSite] = []
        self._registry_seen = False

    @staticmethod
    def collect(project: Project) -> CounterUsage:
        """Static counter view of a project (shared with the runtime check)."""
        usage = CounterUsage()
        for module in project.modules:
            _collect_declarations(module, usage)
            _collect_updates(module, usage)
        return usage

    def check_module(self, module: ModuleInfo, reporter: Reporter) -> None:
        _collect_declarations(module, self._usage)
        _collect_updates(module, self._usage)
        _collect_event_declarations(module, self._events)
        if _collect_event_registries(module, self._registry):
            self._registry_seen = True
        _collect_emit_sites(module, self._emits)

    def finish(self, project: Project, reporter: Reporter) -> None:
        self._finish_telemetry(reporter)
        usage = self._usage
        declared = usage.declared_counters
        bundles = usage.bundle_names
        if not usage.declarations:
            # No Stats dataclass in the linted tree: nothing to check against.
            return
        known = declared | bundles
        for site in usage.updates:
            if site.counter not in known:
                reporter.report(
                    self.code, site.module, site.node,
                    f"counter '{site.counter}' is updated here but not "
                    "declared in any *Stats dataclass; add the field to "
                    "repro.stats.counters so it is reported and checkpointed",
                )
        if usage.updates:
            updated = usage.updated_counters
            for decl in usage.declarations:
                if decl.is_bundle or decl.field_name in updated:
                    continue
                reporter.report(
                    self.code, decl.module, None,
                    f"counter '{decl.class_name}.{decl.field_name}' is "
                    "declared but never updated anywhere in the linted tree; "
                    "it will report a constant zero — wire it up or remove it",
                    line=decl.line,
                )

    def _finish_telemetry(self, reporter: Reporter) -> None:
        """Telemetry-event pass: only active when the tree has EVENT_TYPES."""
        if not self._registry_seen:
            return
        declared = {decl.class_name: decl for decl in self._events}
        registered: dict[str, _EventRegistryEntry] = {}
        for entry in self._registry:
            registered.setdefault(entry.class_name, entry)
            decl = declared.get(entry.class_name)
            if decl is None:
                reporter.report(
                    self.code, entry.module, entry.node,
                    f"EVENT_TYPES entry {entry.key!r} -> {entry.class_name} "
                    "does not resolve: no TelemetryEvent subclass of that "
                    "name exists in the linted tree",
                )
            elif decl.kind is not None and decl.kind != entry.key:
                reporter.report(
                    self.code, entry.module, entry.node,
                    f"EVENT_TYPES key {entry.key!r} maps to "
                    f"{entry.class_name} whose kind literal is {decl.kind!r}; "
                    "the registry key and the class kind must match",
                )
        for decl in self._events:
            if decl.class_name not in registered:
                reporter.report(
                    self.code, decl.module, decl.node,
                    f"event class {decl.class_name} subclasses "
                    f"{_EVENT_BASE} but is not registered in EVENT_TYPES; "
                    "exporters and the schema validator will not know it",
                )
        known = set(declared) | set(registered)
        emitted: set[str] = set()
        for site in self._emits:
            emitted.add(site.class_name)
            if site.class_name not in known:
                reporter.report(
                    self.code, site.module, site.node,
                    f"emit site constructs {site.class_name}, which is not "
                    "a declared or registered telemetry event; declare the "
                    "class and add it to EVENT_TYPES",
                )
        if self._emits:
            for class_name, entry in sorted(registered.items()):
                if class_name in declared and class_name not in emitted:
                    decl = declared[class_name]
                    reporter.report(
                        self.code, decl.module, decl.node,
                        f"event {class_name} is registered but never emitted "
                        "anywhere in the linted tree (orphan event); wire an "
                        "emit site or remove the event",
                    )
