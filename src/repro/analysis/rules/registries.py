"""SL004 — registry completeness: pluggable classes registered and resolvable.

Schedulers and prefetchers are constructed by name through the registry
dicts in ``repro/sched/registry.py`` and ``repro/prefetch/registry.py``.
A class that exists but is not registered is dead weight (no experiment
can select it, no sweep covers it); a registry entry that names a class
which no sibling module defines explodes only when a user asks for that
configuration. The runtime counterpart is ``make_scheduler`` /
``make_prefetcher`` raising ``ValueError`` — after the sweep already
started.

The rule is structural, so it works on any package shaped like the
repo's plugin dirs: a directory containing ``registry.py`` (with a
module-level UPPER_CASE dict of name → class) and ``base.py`` (defining
the abstract base). Every public class in the directory's other modules
that transitively subclasses a base-module class must appear among the
registry values, and every registry value must be defined in the
directory.

Two registry-shaped checks ride along, motivated by the telemetry
subsystem but applied uniformly:

* any module-level ``UPPER_CASE`` dict literal with a repeated constant
  key silently drops the earlier entry — always a bug, reported per
  duplicate occurrence;
* a module declaring an ``INTERVAL_METRICS`` registry must define one
  ``_metric_<name>`` method per key and register every ``_metric_*``
  method it defines — the collector resolves metrics by ``getattr``, so
  a missing method crashes at flush time and an unregistered method is
  computed by nothing.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.engine import ModuleInfo, Project, Reporter, Rule

_EXCLUDED_MODULES = frozenset({"__init__", "base", "registry"})

_METRICS_REGISTRY = "INTERVAL_METRICS"
_METRIC_PREFIX = "_metric_"


def _top_level_classes(module: ModuleInfo) -> list[ast.ClassDef]:
    return [node for node in module.tree.body if isinstance(node, ast.ClassDef)]


def _base_names(node: ast.ClassDef) -> set[str]:
    names: set[str] = set()
    for base in node.bases:
        if isinstance(base, ast.Name):
            names.add(base.id)
        elif isinstance(base, ast.Attribute):
            names.add(base.attr)
    return names


def _registry_dicts(module: ModuleInfo) -> list[tuple[str, ast.Dict, ast.Assign]]:
    """Module-level ``UPPER_CASE = { ... }`` dict assignments."""
    found: list[tuple[str, ast.Dict, ast.Assign]] = []
    for node in module.tree.body:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id.isupper()
            and isinstance(node.value, ast.Dict)
        ):
            found.append((node.targets[0].id, node.value, node))
    return found


def _value_class_name(value: ast.expr) -> Optional[str]:
    if isinstance(value, ast.Name):
        return value.id
    if isinstance(value, ast.Attribute):
        return value.attr
    return None


def _module_level_upper_dicts(
    module: ModuleInfo,
) -> Iterator[tuple[str, ast.Dict]]:
    """Module-level ``UPPER_CASE = {...}`` dicts, plain or annotated."""
    for stmt in module.tree.body:
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
        ):
            name, value = stmt.targets[0].id, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            name, value = stmt.target.id, stmt.value
        else:
            continue
        if name.isupper() and isinstance(value, ast.Dict):
            yield name, value


class RegistryCompletenessRule(Rule):
    """SL004: every plugin class registered, every registry entry resolvable."""

    code = "SL004"
    title = "registry completeness: plugin classes registered and entries resolvable"

    def check_module(self, module: ModuleInfo, reporter: Reporter) -> None:
        # The plugin-package check happens in the project pass (it needs
        # the sibling modules); these two are purely module-local.
        self._check_duplicate_keys(module, reporter)
        self._check_interval_metrics(module, reporter)

    def _check_duplicate_keys(
        self, module: ModuleInfo, reporter: Reporter
    ) -> None:
        for dict_name, dict_node in _module_level_upper_dicts(module):
            seen: dict[object, int] = {}
            for key in dict_node.keys:
                if not isinstance(key, ast.Constant):
                    continue
                value = key.value
                if not isinstance(value, (str, int, float, bytes)):
                    continue
                first = seen.get(value)
                if first is not None:
                    reporter.report(
                        self.code, module, key,
                        f"registry {dict_name} repeats key {value!r} (first "
                        f"at line {first}); the earlier entry is silently "
                        "overwritten",
                    )
                else:
                    seen[value] = key.lineno

    def _check_interval_metrics(
        self, module: ModuleInfo, reporter: Reporter
    ) -> None:
        registries = [
            dict_node
            for name, dict_node in _module_level_upper_dicts(module)
            if name == _METRICS_REGISTRY
        ]
        if not registries:
            return
        keys: dict[str, ast.expr] = {}
        for dict_node in registries:
            for key in dict_node.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    keys.setdefault(key.value, key)
        methods: dict[str, ast.AST] = {}
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.name.startswith(_METRIC_PREFIX):
                    methods.setdefault(node.name[len(_METRIC_PREFIX):], node)
        for name, key_node in sorted(keys.items()):
            if name not in methods:
                reporter.report(
                    self.code, module, key_node,
                    f"{_METRICS_REGISTRY} names {name!r} but this module "
                    f"defines no {_METRIC_PREFIX}{name} method; the interval "
                    "collector would crash resolving it at flush time",
                )
        for name, method_node in sorted(methods.items()):
            if name not in keys:
                reporter.report(
                    self.code, module, method_node,
                    f"{_METRIC_PREFIX}{name} has no {_METRICS_REGISTRY} "
                    "entry; the metric is never computed for any interval "
                    "record — register it or remove the method",
                )

    def finish(self, project: Project, reporter: Reporter) -> None:
        for _directory, modules in sorted(project.by_directory().items()):
            by_name = {module.name: module for module in modules}
            registry = by_name.get("registry")
            base = by_name.get("base")
            if registry is None or base is None:
                continue
            self._check_package(by_name, registry, base, reporter)

    def _check_package(
        self,
        by_name: dict[str, ModuleInfo],
        registry: ModuleInfo,
        base: ModuleInfo,
        reporter: Reporter,
    ) -> None:
        base_classes = {cls.name for cls in _top_level_classes(base)}

        # Transitive closure: classes in plugin modules subclassing a base.
        defined: dict[str, tuple[ModuleInfo, ast.ClassDef]] = {}
        for module in by_name.values():
            if module.name == "registry":
                continue
            for cls in _top_level_classes(module):
                defined[cls.name] = (module, cls)
        registrable_roots = set(base_classes)
        registrable: set[str] = set()
        changed = True
        while changed:
            changed = False
            for name, (module, cls) in defined.items():
                if module.name in _EXCLUDED_MODULES or name in registrable:
                    continue
                if name.startswith("_"):
                    continue
                if _base_names(cls) & (registrable_roots | registrable):
                    registrable.add(name)
                    changed = True

        registered: set[str] = set()
        dicts = _registry_dicts(registry)
        for dict_name, dict_node, _assign in dicts:
            for key, value in zip(dict_node.keys, dict_node.values):
                class_name = _value_class_name(value)
                if class_name is None:
                    continue
                registered.add(class_name)
                if class_name not in defined and class_name not in base_classes:
                    key_repr = (
                        repr(key.value)
                        if isinstance(key, ast.Constant) else "<non-constant>"
                    )
                    reporter.report(
                        self.code, registry, value,
                        f"registry {dict_name} entry {key_repr} -> "
                        f"{class_name} does not resolve: no module in this "
                        "package defines that class",
                    )

        if not dicts:
            return
        dict_names = ", ".join(name for name, _dict, _assign in dicts)
        for name in sorted(registrable - registered):
            module, cls = defined[name]
            reporter.report(
                self.code, module, cls,
                f"class {name} subclasses a registrable base but is not "
                f"listed in {dict_names} ({registry.display_path}); register "
                "it or it can never be selected by name",
            )
