"""simlint rule engine: file discovery, parsing, suppressions, rule driving.

The engine walks Python files, parses each into an AST, runs every
registered rule over every module, gives cross-module rules a second
``finish`` pass over the whole project, and then drops findings that a
``# simlint: ignore[...]`` comment suppresses.

Rules never do I/O and never import the code under analysis — everything
is derived from the AST and raw source, so the linter is safe to run on
broken or hostile trees and cannot perturb simulation state.
"""

from __future__ import annotations

import abc
import ast
import re
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, ClassVar, Iterable, Mapping, Optional, Sequence

from repro.analysis.finding import Finding
from repro.errors import LintError

#: Pseudo-rule code attached to files that fail to parse.
PARSE_RULE = "SL000"

#: Package-directory names whose modules form the simulator's hot path /
#: checkpointable object graph. Rules that would be too noisy repo-wide
#: (dict-view iteration order, closure storage) only apply here.
HOT_PACKAGES = frozenset({"sm", "mem", "sched", "prefetch", "core", "integrity", "stats"})

_SUPPRESS_RE = re.compile(r"#\s*simlint:\s*ignore(?:\[(?P<codes>[A-Za-z0-9_,\s]+)\])?")
_SKIP_FILE_RE = re.compile(r"#\s*simlint:\s*skip-file")
#: ``# simlint: boundary[reason]`` on a class-definition line declares the
#: class part of the allowed shared set (L2/DRAM boundary) for the effect
#: analysis behind SL009 / ``--isolation-report``.
_BOUNDARY_RE = re.compile(r"#\s*simlint:\s*boundary\[(?P<reason>[^\]]*)\]")


@dataclass
class ModuleInfo:
    """One parsed source file plus the metadata rules key off.

    Parsed once per file and shared by every rule of a run (and across
    runs in one process via the mtime/size-keyed module cache), so rules
    never re-read or re-split a source file themselves: use ``lines``
    instead of ``source.splitlines()``.
    """

    path: Path
    display_path: str
    source: str
    tree: ast.Module
    #: ``source.splitlines()``, computed once and shared by all rules.
    lines: tuple[str, ...] = ()
    #: Per-line suppressions: line number -> rule codes (empty set = all rules).
    suppressions: dict[int, frozenset[str]] = field(default_factory=dict)
    #: ``# simlint: boundary[reason]`` declarations: line number -> reason.
    boundaries: dict[int, str] = field(default_factory=dict)
    #: Decorator line -> line of the decorated ``def``/``class``, so a
    #: suppression on the definition line covers decorator-anchored findings.
    decorator_owner: dict[int, int] = field(default_factory=dict)

    @property
    def is_hot(self) -> bool:
        """True when the file lives under a hot-path package directory."""
        return any(part in HOT_PACKAGES for part in self.path.parts)

    @property
    def name(self) -> str:
        """Module stem, e.g. ``registry`` for ``sched/registry.py``."""
        return self.path.stem


@dataclass
class Project:
    """All modules of one lint run, for cross-module rules."""

    modules: list[ModuleInfo]
    #: Memoised result of :func:`repro.analysis.effects.analyze_project`,
    #: shared between SL009's project pass, ``--isolation-report`` and
    #: ``--verify-isolation`` so the interprocedural analysis runs once.
    #: Typed ``Any`` to keep the engine import-free of the effects package.
    effects_cache: Optional[Any] = field(default=None, repr=False, compare=False)

    def by_directory(self) -> dict[Path, list[ModuleInfo]]:
        """Group modules by parent directory (≈ by package)."""
        grouped: dict[Path, list[ModuleInfo]] = {}
        for module in self.modules:
            grouped.setdefault(module.path.parent, []).append(module)
        return grouped


class Reporter:
    """Accumulates findings on behalf of rules."""

    def __init__(self) -> None:
        self._findings: list[Finding] = []

    def report(
        self,
        rule: str,
        module: ModuleInfo,
        node: Optional[ast.AST],
        message: str,
        *,
        line: Optional[int] = None,
        col: Optional[int] = None,
    ) -> None:
        """Record one finding, locating it at ``node`` unless overridden."""
        at_line = line if line is not None else getattr(node, "lineno", 1)
        at_col = col if col is not None else getattr(node, "col_offset", 0)
        self._findings.append(
            Finding(module.display_path, int(at_line), int(at_col), rule, message)
        )

    @property
    def findings(self) -> list[Finding]:
        return list(self._findings)


class Rule(abc.ABC):
    """Base class for simlint rules.

    ``check_module`` runs once per file; ``finish`` runs once per lint
    invocation after every file has been seen, which is where cross-module
    rules (counter hygiene, registry completeness) emit their findings.
    Rule instances are created fresh for every run, so accumulating state
    on ``self`` between ``check_module`` calls is safe.
    """

    code: ClassVar[str]
    title: ClassVar[str]

    @abc.abstractmethod
    def check_module(self, module: ModuleInfo, reporter: Reporter) -> None:
        """Inspect one parsed module."""

    def finish(self, project: Project, reporter: Reporter) -> None:
        """Project-wide pass after all modules were seen (default: no-op)."""


@dataclass
class LintResult:
    """Outcome of one engine run."""

    findings: list[Finding]
    files_scanned: int
    rules: dict[str, str]
    project: Project
    #: Populated by the CLI when ``--verify-against-runtime`` ran.
    runtime_check: Optional[dict[str, Any]] = None
    #: Populated by the CLI when ``--verify-isolation`` ran.
    isolation_check: Optional[dict[str, Any]] = None
    #: Run statistics (files / rules / findings / elapsed / parse cache),
    #: printed by ``--stats``; not part of the stable JSON schema.
    run_stats: dict[str, Any] = field(default_factory=dict, compare=False)

    @property
    def clean(self) -> bool:
        return not self.findings

    def by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))

    def as_json_dict(self) -> dict[str, Any]:
        """The stable JSON schema of ``python -m repro lint --format json``."""
        return {
            "tool": "simlint",
            "schema_version": 1,
            "files_scanned": self.files_scanned,
            "rules": self.rules,
            "findings": [f.as_dict() for f in self.findings],
            "summary": {"total": len(self.findings), "by_rule": self.by_rule()},
            "runtime_check": self.runtime_check,
            "isolation_check": self.isolation_check,
        }


def parse_suppressions(lines: Sequence[str]) -> dict[int, frozenset[str]]:
    """Map line numbers to suppressed rule codes.

    ``# simlint: ignore`` suppresses every rule on its line;
    ``# simlint: ignore[SL001, SL003]`` suppresses just those codes.
    """
    suppressions: dict[int, frozenset[str]] = {}
    for lineno, text in enumerate(lines, start=1):
        if "simlint" not in text:
            continue
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        codes = match.group("codes")
        if codes is None:
            suppressions[lineno] = frozenset()
        else:
            suppressions[lineno] = frozenset(
                c.strip().upper() for c in codes.split(",") if c.strip()
            )
    return suppressions


def parse_boundaries(lines: Sequence[str]) -> dict[int, str]:
    """Map line numbers carrying ``# simlint: boundary[reason]`` to the reason."""
    boundaries: dict[int, str] = {}
    for lineno, text in enumerate(lines, start=1):
        if "simlint" not in text:
            continue
        match = _BOUNDARY_RE.search(text)
        if match is not None:
            boundaries[lineno] = match.group("reason").strip()
    return boundaries


def _decorator_owners(tree: ast.Module) -> dict[int, int]:
    """Map every decorator line to the line of its ``def``/``class``.

    A ``# simlint: ignore[...]`` on a decorated definition line then also
    covers findings that rules anchor to the decorator expressions above it
    (SL002/SL007 report at decorator nodes for decorator-related findings).
    """
    owners: dict[int, int] = {}
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        for decorator in node.decorator_list:
            end = getattr(decorator, "end_lineno", None) or decorator.lineno
            for lineno in range(decorator.lineno, end + 1):
                owners[lineno] = node.lineno
    return owners


def _is_suppressed(finding: Finding, module: ModuleInfo) -> bool:
    codes = module.suppressions.get(finding.line)
    if codes is None:
        owner = module.decorator_owner.get(finding.line)
        if owner is not None:
            codes = module.suppressions.get(owner)
    if codes is None:
        return False
    return not codes or finding.rule in codes


def discover_files(paths: Sequence[Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(p for p in path.rglob("*.py") if p.is_file()))
        elif path.is_file():
            files.append(path)
        else:
            raise LintError(f"no such file or directory: {path}",
                            details={"path": str(path)})
    # De-duplicate while keeping order stable.
    seen: set[Path] = set()
    unique: list[Path] = []
    for path in files:
        resolved = path.resolve()
        if resolved not in seen:
            seen.add(resolved)
            unique.append(path)
    return unique


def _display_path(path: Path) -> str:
    try:
        return str(path.relative_to(Path.cwd()))
    except ValueError:
        return str(path)


#: Process-wide parse cache: resolved path -> ((mtime_ns, size), entry).
#: Repeated lint runs in one process (the CLI runs the engine once for the
#: rules, again for ``--isolation-report``, and tests call ``run_lint``
#: dozens of times) parse each unchanged file exactly once.
_MODULE_CACHE: dict[Path, tuple[tuple[int, int], "ModuleInfo | Finding"]] = {}


def clear_module_cache() -> None:
    """Drop the process-wide parse cache (tests that rewrite files)."""
    _MODULE_CACHE.clear()


def _load_uncached(path: Path, display: str) -> "ModuleInfo | Finding":
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        raise LintError(f"cannot read {display}: {exc}",
                        details={"path": display}) from exc
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return Finding(display, exc.lineno or 1, (exc.offset or 1) - 1,
                       PARSE_RULE, f"file does not parse: {exc.msg}")
    lines = tuple(source.splitlines())
    return ModuleInfo(
        path=path,
        display_path=display,
        source=source,
        tree=tree,
        lines=lines,
        suppressions=parse_suppressions(lines),
        boundaries=parse_boundaries(lines),
        decorator_owner=_decorator_owners(tree),
    )


def load_module(path: Path, cache_stats: Optional[dict[str, int]] = None) -> "ModuleInfo | Finding":
    """Parse one file; a syntax error becomes an ``SL000`` finding.

    Results are cached per resolved path, keyed by ``(mtime_ns, size)``, so
    every rule — and every subsequent run in this process — shares one AST
    and one pre-split line list per file.
    """
    display = _display_path(path)
    try:
        resolved = path.resolve()
        stat = resolved.stat()
    except OSError as exc:
        raise LintError(f"cannot read {display}: {exc}",
                        details={"path": display}) from exc
    stamp = (stat.st_mtime_ns, stat.st_size)
    cached = _MODULE_CACHE.get(resolved)
    if cached is not None and cached[0] == stamp:
        if cache_stats is not None:
            cache_stats["hits"] = cache_stats.get("hits", 0) + 1
        entry = cached[1]
        if entry.display_path == display:
            return entry
        # Same parse, different cwd: reshare the AST under the new display.
        if isinstance(entry, Finding):
            return Finding(display, entry.line, entry.col, entry.rule, entry.message)
        return ModuleInfo(
            path=path,
            display_path=display,
            source=entry.source,
            tree=entry.tree,
            lines=entry.lines,
            suppressions=entry.suppressions,
            boundaries=entry.boundaries,
            decorator_owner=entry.decorator_owner,
        )
    if cache_stats is not None:
        cache_stats["misses"] = cache_stats.get("misses", 0) + 1
    loaded = _load_uncached(path, display)
    _MODULE_CACHE[resolved] = (stamp, loaded)
    return loaded


def default_rules() -> list[Rule]:
    """Fresh instances of every registered rule (SL001–SL011)."""
    from repro.analysis.rules import build_all_rules

    return build_all_rules()


def run_lint(
    paths: Sequence["Path | str"],
    rule_codes: Optional[Iterable[str]] = None,
) -> LintResult:
    """Lint ``paths`` (files or directories) and return the result.

    ``rule_codes`` restricts the run to a subset of rules; unknown codes
    raise :class:`~repro.errors.LintError` (exit code 2 at the CLI).
    """
    started = time.perf_counter()
    rules = default_rules()
    available: Mapping[str, Rule] = {rule.code: rule for rule in rules}
    if rule_codes is not None:
        wanted = [code.strip().upper() for code in rule_codes if code.strip()]
        unknown = sorted(set(wanted) - set(available))
        if unknown:
            raise LintError(
                f"unknown rule code(s): {', '.join(unknown)}",
                details={"unknown": unknown, "known": sorted(available)},
            )
        rules = [available[code] for code in dict.fromkeys(wanted)]

    files = discover_files([Path(p) for p in paths])
    cache_stats: dict[str, int] = {"hits": 0, "misses": 0}
    modules: list[ModuleInfo] = []
    findings: list[Finding] = []
    for path in files:
        loaded = load_module(path, cache_stats=cache_stats)
        if isinstance(loaded, Finding):
            findings.append(loaded)
            continue
        if any(_SKIP_FILE_RE.search(line) for line in loaded.lines[:5]):
            continue
        modules.append(loaded)

    project = Project(modules)
    reporter = Reporter()
    for rule in rules:
        for module in modules:
            try:
                rule.check_module(module, reporter)
            except Exception as exc:
                raise LintError(
                    f"rule {rule.code} crashed on {module.display_path}: {exc!r}",
                    details={"rule": rule.code, "path": module.display_path},
                ) from exc
        try:
            rule.finish(project, reporter)
        except Exception as exc:
            raise LintError(
                f"rule {rule.code} crashed in its project pass: {exc!r}",
                details={"rule": rule.code},
            ) from exc

    by_path = {module.display_path: module for module in modules}
    for finding in reporter.findings:
        module = by_path.get(finding.path)
        if module is not None and _is_suppressed(finding, module):
            continue
        findings.append(finding)

    findings = sorted(findings)
    return LintResult(
        findings=findings,
        files_scanned=len(files),
        rules={rule.code: rule.title for rule in rules},
        project=project,
        run_stats={
            "files": len(files),
            "rules": len(rules),
            "findings": len(findings),
            "elapsed_s": round(time.perf_counter() - started, 4),
            "parse_cache_hits": cache_stats["hits"],
            "parse_cache_misses": cache_stats["misses"],
        },
    )
