"""simlint rule engine: file discovery, parsing, suppressions, rule driving.

The engine walks Python files, parses each into an AST, runs every
registered rule over every module, gives cross-module rules a second
``finish`` pass over the whole project, and then drops findings that a
``# simlint: ignore[...]`` comment suppresses.

Rules never do I/O and never import the code under analysis — everything
is derived from the AST and raw source, so the linter is safe to run on
broken or hostile trees and cannot perturb simulation state.
"""

from __future__ import annotations

import abc
import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, ClassVar, Iterable, Mapping, Optional, Sequence

from repro.analysis.finding import Finding
from repro.errors import LintError

#: Pseudo-rule code attached to files that fail to parse.
PARSE_RULE = "SL000"

#: Package-directory names whose modules form the simulator's hot path /
#: checkpointable object graph. Rules that would be too noisy repo-wide
#: (dict-view iteration order, closure storage) only apply here.
HOT_PACKAGES = frozenset({"sm", "mem", "sched", "prefetch", "core", "integrity", "stats"})

_SUPPRESS_RE = re.compile(r"#\s*simlint:\s*ignore(?:\[(?P<codes>[A-Za-z0-9_,\s]+)\])?")
_SKIP_FILE_RE = re.compile(r"#\s*simlint:\s*skip-file")


@dataclass
class ModuleInfo:
    """One parsed source file plus the metadata rules key off."""

    path: Path
    display_path: str
    source: str
    tree: ast.Module
    #: Per-line suppressions: line number -> rule codes (empty set = all rules).
    suppressions: dict[int, frozenset[str]] = field(default_factory=dict)

    @property
    def is_hot(self) -> bool:
        """True when the file lives under a hot-path package directory."""
        return any(part in HOT_PACKAGES for part in self.path.parts)

    @property
    def name(self) -> str:
        """Module stem, e.g. ``registry`` for ``sched/registry.py``."""
        return self.path.stem


@dataclass
class Project:
    """All modules of one lint run, for cross-module rules."""

    modules: list[ModuleInfo]

    def by_directory(self) -> dict[Path, list[ModuleInfo]]:
        """Group modules by parent directory (≈ by package)."""
        grouped: dict[Path, list[ModuleInfo]] = {}
        for module in self.modules:
            grouped.setdefault(module.path.parent, []).append(module)
        return grouped


class Reporter:
    """Accumulates findings on behalf of rules."""

    def __init__(self) -> None:
        self._findings: list[Finding] = []

    def report(
        self,
        rule: str,
        module: ModuleInfo,
        node: Optional[ast.AST],
        message: str,
        *,
        line: Optional[int] = None,
        col: Optional[int] = None,
    ) -> None:
        """Record one finding, locating it at ``node`` unless overridden."""
        at_line = line if line is not None else getattr(node, "lineno", 1)
        at_col = col if col is not None else getattr(node, "col_offset", 0)
        self._findings.append(
            Finding(module.display_path, int(at_line), int(at_col), rule, message)
        )

    @property
    def findings(self) -> list[Finding]:
        return list(self._findings)


class Rule(abc.ABC):
    """Base class for simlint rules.

    ``check_module`` runs once per file; ``finish`` runs once per lint
    invocation after every file has been seen, which is where cross-module
    rules (counter hygiene, registry completeness) emit their findings.
    Rule instances are created fresh for every run, so accumulating state
    on ``self`` between ``check_module`` calls is safe.
    """

    code: ClassVar[str]
    title: ClassVar[str]

    @abc.abstractmethod
    def check_module(self, module: ModuleInfo, reporter: Reporter) -> None:
        """Inspect one parsed module."""

    def finish(self, project: Project, reporter: Reporter) -> None:
        """Project-wide pass after all modules were seen (default: no-op)."""


@dataclass
class LintResult:
    """Outcome of one engine run."""

    findings: list[Finding]
    files_scanned: int
    rules: dict[str, str]
    project: Project
    #: Populated by the CLI when ``--verify-against-runtime`` ran.
    runtime_check: Optional[dict[str, Any]] = None

    @property
    def clean(self) -> bool:
        return not self.findings

    def by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))

    def as_json_dict(self) -> dict[str, Any]:
        """The stable JSON schema of ``python -m repro lint --format json``."""
        return {
            "tool": "simlint",
            "schema_version": 1,
            "files_scanned": self.files_scanned,
            "rules": self.rules,
            "findings": [f.as_dict() for f in self.findings],
            "summary": {"total": len(self.findings), "by_rule": self.by_rule()},
            "runtime_check": self.runtime_check,
        }


def parse_suppressions(source: str) -> dict[int, frozenset[str]]:
    """Map line numbers to suppressed rule codes.

    ``# simlint: ignore`` suppresses every rule on its line;
    ``# simlint: ignore[SL001, SL003]`` suppresses just those codes.
    """
    suppressions: dict[int, frozenset[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        codes = match.group("codes")
        if codes is None:
            suppressions[lineno] = frozenset()
        else:
            suppressions[lineno] = frozenset(
                c.strip().upper() for c in codes.split(",") if c.strip()
            )
    return suppressions


def _is_suppressed(finding: Finding, module: ModuleInfo) -> bool:
    codes = module.suppressions.get(finding.line)
    if codes is None:
        return False
    return not codes or finding.rule in codes


def discover_files(paths: Sequence[Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(p for p in path.rglob("*.py") if p.is_file()))
        elif path.is_file():
            files.append(path)
        else:
            raise LintError(f"no such file or directory: {path}",
                            details={"path": str(path)})
    # De-duplicate while keeping order stable.
    seen: set[Path] = set()
    unique: list[Path] = []
    for path in files:
        resolved = path.resolve()
        if resolved not in seen:
            seen.add(resolved)
            unique.append(path)
    return unique


def _display_path(path: Path) -> str:
    try:
        return str(path.relative_to(Path.cwd()))
    except ValueError:
        return str(path)


def load_module(path: Path) -> "ModuleInfo | Finding":
    """Parse one file; a syntax error becomes an ``SL000`` finding."""
    display = _display_path(path)
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        raise LintError(f"cannot read {display}: {exc}",
                        details={"path": display}) from exc
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return Finding(display, exc.lineno or 1, (exc.offset or 1) - 1,
                       PARSE_RULE, f"file does not parse: {exc.msg}")
    return ModuleInfo(
        path=path,
        display_path=display,
        source=source,
        tree=tree,
        suppressions=parse_suppressions(source),
    )


def default_rules() -> list[Rule]:
    """Fresh instances of every registered rule (SL001–SL008)."""
    from repro.analysis.rules import build_all_rules

    return build_all_rules()


def run_lint(
    paths: Sequence["Path | str"],
    rule_codes: Optional[Iterable[str]] = None,
) -> LintResult:
    """Lint ``paths`` (files or directories) and return the result.

    ``rule_codes`` restricts the run to a subset of rules; unknown codes
    raise :class:`~repro.errors.LintError` (exit code 2 at the CLI).
    """
    rules = default_rules()
    available: Mapping[str, Rule] = {rule.code: rule for rule in rules}
    if rule_codes is not None:
        wanted = [code.strip().upper() for code in rule_codes if code.strip()]
        unknown = sorted(set(wanted) - set(available))
        if unknown:
            raise LintError(
                f"unknown rule code(s): {', '.join(unknown)}",
                details={"unknown": unknown, "known": sorted(available)},
            )
        rules = [available[code] for code in dict.fromkeys(wanted)]

    files = discover_files([Path(p) for p in paths])
    modules: list[ModuleInfo] = []
    findings: list[Finding] = []
    for path in files:
        loaded = load_module(path)
        if isinstance(loaded, Finding):
            findings.append(loaded)
            continue
        if any(_SKIP_FILE_RE.search(line)
               for line in loaded.source.splitlines()[:5]):
            continue
        modules.append(loaded)

    project = Project(modules)
    reporter = Reporter()
    for rule in rules:
        for module in modules:
            try:
                rule.check_module(module, reporter)
            except Exception as exc:
                raise LintError(
                    f"rule {rule.code} crashed on {module.display_path}: {exc!r}",
                    details={"rule": rule.code, "path": module.display_path},
                ) from exc
        try:
            rule.finish(project, reporter)
        except Exception as exc:
            raise LintError(
                f"rule {rule.code} crashed in its project pass: {exc!r}",
                details={"rule": rule.code},
            ) from exc

    by_path = {module.display_path: module for module in modules}
    for finding in reporter.findings:
        module = by_path.get(finding.path)
        if module is not None and _is_suppressed(finding, module):
            continue
        findings.append(finding)

    return LintResult(
        findings=sorted(findings),
        files_scanned=len(files),
        rules={rule.code: rule.title for rule in rules},
        project=project,
    )
