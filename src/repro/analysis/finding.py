"""Finding record emitted by simlint rules.

A finding is one concrete defect at one source location. Findings are
value objects: frozen, ordered (so reports are stable across runs — the
linter holds itself to the determinism bar it enforces), and
JSON-serialisable via :meth:`Finding.as_dict`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    #: Path of the offending file, as given to the engine.
    path: str
    #: 1-based line of the offending node.
    line: int
    #: 0-based column of the offending node.
    col: int
    #: Rule code, e.g. ``"SL001"``.
    rule: str
    #: Human-readable description including the suggested fix.
    message: str

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready representation (keys match the schema in DESIGN.md)."""
        return dataclasses.asdict(self)

    def render(self) -> str:
        """One-line human-readable form: ``path:line:col: RULE message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"
