"""Cross-check SL003's static counter view against a live smoke simulation.

``python -m repro lint --verify-against-runtime`` runs one tiny
simulation (KM under the baseline config at a small scale — ~0.3 s) and
flattens ``SimStats.as_dict()`` into leaf counter names. Two set
differences then tie the static analysis to reality:

* a counter declared in the *linted tree* but absent from the runtime
  dump means the linted sources and the imported ``repro`` package have
  drifted apart (stale install, wrong path on the command line);
* a counter emitted at runtime but undeclared in the linted tree means
  the same drift in the other direction.

Both directions become SL003 findings, so the cross-check participates
in the normal exit-code contract. This is the static/dynamic handshake:
the lint pass proves the declarations are coherent, the smoke run proves
they are the declarations the simulator actually uses.
"""

from __future__ import annotations

from typing import Any

from repro.analysis.engine import LintResult
from repro.analysis.finding import Finding
from repro.analysis.rules.counters import CounterHygieneRule
from repro.errors import LintError

#: Smoke-simulation point: smallest stable workload at a small scale.
SMOKE_APP = "KM"
SMOKE_CONFIG = "base"
SMOKE_SCALE = 0.1


def _flatten_leaves(tree: dict[str, Any], prefix: str = "") -> dict[str, str]:
    """Map leaf counter name -> dotted path (``hits`` -> ``l1.hits``)."""
    leaves: dict[str, str] = {}
    for key, value in tree.items():
        dotted = f"{prefix}{key}"
        if isinstance(value, dict):
            leaves.update(_flatten_leaves(value, prefix=f"{dotted}."))
        else:
            leaves[key] = dotted
    return leaves


def run_smoke_stats() -> dict[str, Any]:
    """Simulate the smoke point and return ``SimStats.as_dict()``."""
    try:
        from repro.experiments.runner import run
    except Exception as exc:  # pragma: no cover - packaging problems only
        raise LintError(
            f"cannot import the simulator for the runtime cross-check: {exc}"
        ) from exc
    result = run(SMOKE_APP, SMOKE_CONFIG, scale=SMOKE_SCALE)
    stats_dict = result.sim.stats.as_dict()
    if not isinstance(stats_dict, dict):  # pragma: no cover - API drift guard
        raise LintError("SimStats.as_dict() did not return a dict")
    return stats_dict


def verify_against_runtime(result: LintResult) -> None:
    """Attach runtime cross-check findings and payload to ``result``."""
    usage = CounterHygieneRule.collect(result.project)
    declared = usage.declared_counters
    stats_dict = run_smoke_stats()
    runtime_leaves = _flatten_leaves(stats_dict)
    runtime_names = set(runtime_leaves)

    counters_modules = [
        module for module in result.project.modules
        if any(d.module is module for d in usage.declarations)
    ]
    anchor = counters_modules[0].display_path if counters_modules else "<runtime>"

    extra: list[Finding] = []
    for name in sorted(declared - runtime_names):
        extra.append(Finding(
            anchor, 1, 0, "SL003",
            f"[runtime] counter '{name}' is declared in the linted tree but "
            f"a smoke simulation ({SMOKE_APP}/{SMOKE_CONFIG}) emitted no such "
            "counter — the linted sources and the installed repro package "
            "have drifted apart",
        ))
    for name in sorted(runtime_names - declared):
        extra.append(Finding(
            anchor, 1, 0, "SL003",
            f"[runtime] smoke simulation emitted counter "
            f"'{runtime_leaves[name]}' which no *Stats dataclass in the "
            "linted tree declares — the linted sources and the installed "
            "repro package have drifted apart",
        ))

    result.findings = sorted(result.findings + extra)
    result.runtime_check = {
        "ran": True,
        "smoke_point": {"app": SMOKE_APP, "config": SMOKE_CONFIG,
                        "scale": SMOKE_SCALE},
        "declared_counters": sorted(declared),
        "runtime_counters": sorted(runtime_leaves.values()),
        "missing_at_runtime": sorted(declared - runtime_names),
        "undeclared_at_runtime": sorted(
            runtime_leaves[name] for name in runtime_names - declared
        ),
    }
