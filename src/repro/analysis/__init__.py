"""simlint: simulator-aware static analysis for the APRES reproduction.

An AST-based lint pass that proves — before any cycle is simulated — the
properties the runtime integrity layer (:mod:`repro.integrity`) can only
check after hours of simulation have burned:

* **SL001 determinism** — no hash-order iteration, ``id()`` ordering, or
  unseeded ``random`` in simulator hot paths;
* **SL002 picklability** — no lambdas/closures/local classes stored on
  the checkpointable object graph (they break
  ``GPUSimulator.snapshot()``);
* **SL003 counter hygiene** — every stats counter declared in
  :mod:`repro.stats.counters` and actually updated;
* **SL004 registry completeness** — every scheduler/prefetcher class
  registered, every registry entry resolvable;
* **SL005 frozen-config mutation** — configs change only through
  ``dataclasses.replace``;
* **SL006 paper-golden completeness** — every figure/table producer has
  golden paper data and a scorecard spec, and vice versa;
* **SL007 hot-path slots** — ``sm``/``mem`` classes declare
  ``__slots__`` and stay picklable across the process-pool boundary.

Run it with ``python -m repro lint [PATH ...]``; suppress one line with
``# simlint: ignore[SL001]``. See DESIGN.md § "Static analysis".
"""

from repro.analysis.engine import (
    HOT_PACKAGES,
    Finding,
    LintResult,
    ModuleInfo,
    Project,
    Reporter,
    Rule,
    run_lint,
)
from repro.analysis.rules import ALL_RULES, build_all_rules

__all__ = [
    "ALL_RULES",
    "Finding",
    "HOT_PACKAGES",
    "LintResult",
    "ModuleInfo",
    "Project",
    "Reporter",
    "Rule",
    "build_all_rules",
    "run_lint",
]
