"""Epoch-barrier sharded execution of a single simulation run.

:class:`ShardedGPUSimulator` partitions the GPU's SMs into shard
workers, runs each worker's lanes through epochs of ``epoch_cycles``
cycles of purely local simulation, and resolves all shared-memory
traffic at the epoch barrier: the per-shard boundary logs are drained,
merged in deterministic ``(cycle, sm_id, seq)`` order — exactly the
order in which the serial engine's tick loop would have presented the
same requests — and replayed through the single authoritative L2/DRAM
pair (:class:`~repro.mem.subsystem.SharedL2Core`). The resulting fill
completions are delivered back into each lane's local event queue at the
start of the next window.

Correctness ladder:

* ``epoch_cycles == 1`` (**lock-step**): the parent drives exactly the
  serial engine's visited-tick set (advance by one after any issue,
  otherwise jump to the earliest wake-up across lanes and in-flight
  fills), every lane drains its events and cycles at every visited tick
  it has work on, and pure-idle cycles are reconstructed through the
  exact identity ``idle = num_sms * cycles - instructions``. Statistics
  are **bit-identical** to :class:`~repro.sm.simulator.GPUSimulator`,
  including tick-sensitive stall counters.
* ``epoch_cycles > 1`` (**relaxed**): lanes fast-forward independently
  inside a window, skipping ticks where nothing can issue. Issue timing
  is unchanged, but stall counters that depend on which ticks execute
  (``reservation_fails``, ``lsu_structural_stalls``) drift from serial;
  the engine counts clamped fills and the CI scorecard bounds the metric
  drift. This is the fast mode — on a single core it wins by skipping
  work, not by parallelism.

The integrity layer plugs in unchanged: the engine exposes the same
``stats`` / ``sms`` / ``subsystem`` / ``describe`` surface as the serial
simulator, with barrier-aware invariant checks fanned out to the
workers, and the PR-6 watchdog observes progress at every barrier.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.config import GPUConfig
from repro.errors import ShardConfigError, ShardWorkerLost, SimulationError
from repro.integrity.invariants import InvariantChecker
from repro.integrity.watchdog import Watchdog
from repro.isa.program import KernelSpec
from repro.mem.subsystem import SharedL2Core
from repro.resilience.supervisor import SupervisorConfig
from repro.shard.backend import make_backend
from repro.shard.lane import ShardLane
from repro.shard.plan import ShardPlan
from repro.shard.proxy import REQ_STORE
from repro.shard.telemetry import ShardTelemetryCoordinator
from repro.shard.worker import FillDelivery, ShardWorker
from repro.sm.pipeline import LoadObserver
from repro.sm.simulator import EngineFactory, SimulationResult, simulate
from repro.stats.counters import SimStats
from repro.telemetry import flight
from repro.telemetry.hub import TelemetryHub
from repro.telemetry.metrics import get_registry


class _BoundarySubsystem:
    """The engine's stand-in for ``simulator.subsystem``.

    The integrity checker calls ``check_invariants``; the watchdog's
    dump path reads ``describe``. Both fan out to the shard workers plus
    the parent-held L2/DRAM pair.
    """

    __slots__ = ("_engine",)

    def __init__(self, engine: "ShardedGPUSimulator"):
        self._engine = engine

    def check_invariants(self, now: int) -> None:
        self._engine._backend.check_invariants(now)

    def describe(self, now: int) -> dict:
        return self._engine._memory_describe(now)


class ShardedGPUSimulator:
    """One kernel over ``num_sms`` SMs, partitioned into shard workers."""

    __slots__ = ("_kernel", "_config", "_plan", "_engine_factory", "stats",
                 "_shared", "_workers", "_assignment", "_backend",
                 "_subsystem", "_now", "_prev_cycle", "_finished",
                 "_integrity", "watchdog", "_fills", "_engine_events",
                 "windows_run", "clamped_fills", "max_clamp_cycles",
                 "_telemetry")

    def __init__(
        self,
        kernel: KernelSpec,
        config: GPUConfig,
        engine_factory: EngineFactory,
        plan: ShardPlan,
        load_observers: Sequence[LoadObserver] = (),
        supervisor: Optional[SupervisorConfig] = None,
        attempt: int = 1,
        telemetry: Optional[TelemetryHub] = None,
    ):
        plan.validate(config)
        if plan.backend == "process" and load_observers:
            raise ShardConfigError(
                "load observers cannot cross the process-backend boundary; "
                "use --shard-backend inproc with observer-based analyses"
            )
        self._kernel = kernel
        self._config = config
        self._plan = plan
        self._engine_factory = engine_factory
        #: Parent-side stats: L2/DRAM counters and integrity checks live
        #: here during the run; worker stats are merged in at finish.
        self.stats = SimStats()
        self._shared = SharedL2Core(config, self.stats)
        groups = plan.groups(config.num_sms)
        assignment = [0] * config.num_sms
        for worker_id, group in enumerate(groups):
            for sm_id in group:
                assignment[sm_id] = worker_id
        self._assignment = assignment
        worker_stats = [SimStats() for _ in groups]
        #: Parent-side telemetry merge; lanes get recorders instead of
        #: the serial SMTelemetry proxies. Built before the lanes (and
        #: before any process-backend fork) so recorder injection works
        #: identically for both backends.
        self._telemetry = (
            ShardTelemetryCoordinator(
                telemetry, config, self._shared, exact=plan.bit_exact
            )
            if telemetry is not None
            else None
        )
        lanes: list[ShardLane] = []
        for sm_id in range(config.num_sms):
            lane = ShardLane(
                sm_id, kernel, config, engine_factory,
                worker_stats[assignment[sm_id]], load_observers,
                recorder=(
                    self._telemetry.make_recorder(sm_id)
                    if self._telemetry is not None else None
                ),
            )
            lanes.append(lane)
        self._workers = [
            ShardWorker(worker_id, [lanes[sm_id] for sm_id in group],
                        worker_stats[worker_id])
            for worker_id, group in enumerate(groups)
        ]
        self._backend = make_backend(
            self._workers, plan.backend,
            supervisor or SupervisorConfig(), attempt=attempt,
        )
        self._subsystem = _BoundarySubsystem(self)
        self._now = 0
        self._prev_cycle: Optional[int] = None
        self._finished = False
        self._integrity = (
            InvariantChecker(config.integrity_interval)
            if config.integrity_interval
            else None
        )
        self.watchdog = Watchdog(config.watchdog_cycles)
        self._fills = 0
        self._engine_events = 0
        #: Epoch windows executed (includes fast-forward-shortened ones).
        self.windows_run = 0
        #: Relaxed-mode drift: fills whose completion landed inside an
        #: already-simulated window and were deferred to the next barrier.
        self.clamped_fills = 0
        self.max_clamp_cycles = 0

    # ------------------------------------------------------------------
    # Introspection (consumed by the integrity layer, mirrors GPUSimulator)
    # ------------------------------------------------------------------

    @property
    def subsystem(self) -> _BoundarySubsystem:
        return self._subsystem

    @property
    def sms(self) -> Sequence:
        # Lane-level checks run inside the workers (possibly across a
        # process boundary), so the checker's own SM sweep has nothing
        # left to do here.
        return ()

    @property
    def kernel_name(self) -> str:
        return self._kernel.name

    @property
    def current_cycle(self) -> int:
        return self._now

    @property
    def finished(self) -> bool:
        return self._finished

    @property
    def last_checked_cycle(self) -> Optional[int]:
        return self._prev_cycle

    @property
    def fills_completed(self) -> int:
        """Fills landed in any L1, as of the last barrier (watchdog signal)."""
        return self._fills

    @property
    def plan(self) -> ShardPlan:
        return self._plan

    def _memory_describe(self, now: int) -> dict:
        info = self._shared.describe(now)
        info["mshrs"] = [
            entry for worker in self._backend.describe()
            for entry in worker["mshrs"]
        ]
        return info

    def describe(self, now: Optional[int] = None) -> dict:
        """JSON-ready snapshot of machine state (diagnostic dumps)."""
        if now is None:
            now = self._now
        workers = self._backend.describe()
        return {
            "kernel": self._kernel.name,
            "cycle": now,
            "finished": self._finished,
            "shards": self._plan.num_shards,
            "epoch_cycles": self._plan.epoch_cycles,
            "stats": {
                "instructions": self.stats.instructions,
                "fills_completed": self._fills,
                "integrity_checks": self.stats.integrity_checks,
            },
            "sms": [sm for worker in workers for sm in worker["sms"]],
            "memory": {
                **self._shared.describe(now),
                "mshrs": [
                    entry for worker in workers for entry in worker["mshrs"]
                ],
            },
        }

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def run(self) -> SimulationResult:
        """Simulate to completion; returns aggregated statistics.

        Raises :class:`~repro.errors.ShardWorkerLost` if a process-backend
        worker dies or misses its deadline — callers retry or degrade
        (see :func:`shard_execute`).
        """
        try:
            return self._run_windows()
        finally:
            self._backend.close()

    def _run_windows(self) -> SimulationResult:
        epoch = self._plan.epoch_cycles
        exact = self._plan.bit_exact
        num_workers = len(self._workers)
        assignment = self._assignment
        backend = self._backend
        coordinator = self._telemetry
        metrics = get_registry()
        windows_metric = metrics.counter("shard.windows.run")
        entries_metric = metrics.counter("shard.barrier.entries")
        fills_metric = metrics.counter("shard.fills.delivered")
        clamped_metric = metrics.counter("shard.fills.clamped")
        wait_metric = metrics.counter("shard.barrier.wait_cycles")
        span_metric = metrics.histogram("shard.window.span_cycles")
        start = 0
        deliveries: list[list[FillDelivery]] = [
            [] for _ in range(num_workers)
        ]
        while True:
            end = start + epoch
            reports = backend.run_window(start, end, exact, deliveries)
            self.windows_run += 1
            windows_metric.inc()
            deliveries = [[] for _ in range(num_workers)]
            # Deterministic barrier merge: (cycle, sm_id, seq) is exactly
            # the order the serial tick loop (SM 0..N-1 per tick, program
            # order within an SM) would have hit the shared L2.
            merged = []
            for report in reports:
                merged.extend(report.entries)
            merged.sort()
            entries_metric.inc(len(merged))
            if coordinator is not None:
                # The replay and the telemetry merge interleave (the
                # DRAM-saturation probe must fire mid-replay), so the
                # coordinator runs both; the fill list is identical.
                new_fills = coordinator.process_window(
                    merged, reports, start, end)
            else:
                new_fills = []
                for cycle, sm_id, _seq, kind, line_addr in merged:
                    if kind == REQ_STORE:
                        self._shared.replay_store(line_addr, cycle)
                    else:
                        fill = self._shared.replay_miss(line_addr, cycle)
                        new_fills.append((sm_id, line_addr, fill))
            fills_metric.inc(len(new_fills))
            flight.record(
                "shard.barrier", start=start, end=end,
                entries=len(merged), fills=len(new_fills),
            )
            # Progress mirrors for the watchdog; the instruction mirror is
            # replaced by the real merge at finish.
            self.stats.instructions = sum(r.instructions for r in reports)
            self._fills = sum(r.fills_completed for r in reports)
            now = end - 1
            if all(r.all_quiesced for r in reports) and not new_fills:
                quiesced = [
                    r.max_quiesced_at for r in reports
                    if r.max_quiesced_at is not None
                ]
                return self._finish(max(quiesced) if quiesced else now)
            if self._integrity is not None:
                self._integrity.maybe_check(self, now)
            self.watchdog.observe(self, now)
            if now >= self._config.max_cycles:
                self.watchdog.budget_exceeded(
                    self, now, self._config.max_cycles)
            if any(r.issued for r in reports):
                next_start = end
            else:
                wake: Optional[int] = None
                for report in reports:
                    if report.wake is not None and (
                            wake is None or report.wake < wake):
                        wake = report.wake
                for _sm_id, _line, fill in new_fills:
                    if wake is None or fill < wake:
                        wake = fill
                if wake is None:
                    raise SimulationError(
                        f"kernel {self._kernel.name!r} deadlocked at cycle "
                        f"{now}: no ready warps and no pending events",
                        details=self.describe(now),
                    )
                next_start = wake if wake > end else end
            if coordinator is not None and next_start > end:
                # Fast-forwarded span: every SM idles at its last-known
                # cause, exactly the serial engine's on_skip charge.
                coordinator.on_skip(next_start - end)
            if next_start > end:
                wait_metric.inc(next_start - end)
            span_metric.observe(next_start - start)
            for sm_id, line_addr, fill in new_fills:
                if fill < next_start:
                    self.clamped_fills += 1
                    clamped_metric.inc()
                    clamp = next_start - fill
                    if clamp > self.max_clamp_cycles:
                        self.max_clamp_cycles = clamp
                    fill = next_start
                deliveries[assignment[sm_id]].append((sm_id, line_addr, fill))
            self._prev_cycle = now
            self._now = next_start
            start = next_start

    def _finish(self, last_tick: int) -> SimulationResult:
        self._now = last_tick + 1
        self._prev_cycle = last_tick
        self._finished = True
        self.stats.cycles = self._now
        finals = self._backend.finalize()
        # Drop the per-barrier instruction mirror before merging the real
        # per-worker counters (it would double-count otherwise).
        self.stats.instructions = 0
        engine_events = 0
        for worker_stats, worker_events in finals:
            self.stats.merge(worker_stats)
            engine_events += worker_events
        # Idle cycles via the exact conservation identity: every visited
        # tick contributes exactly one of {instruction, idle} per SM, and
        # every skipped tick is pure idle for all SMs.
        self.stats.idle_cycles = (
            self._config.num_sms * self.stats.cycles - self.stats.instructions
        )
        self._engine_events = engine_events
        if self._telemetry is not None:
            self._telemetry.finish(self.stats)
        return self.result()

    def result(self) -> SimulationResult:
        """Aggregate statistics of a completed run."""
        if not self._finished:
            raise SimulationError(
                f"kernel {self._kernel.name!r} still running at cycle "
                f"{self._now}; result() requires a completed simulation"
            )
        return SimulationResult(
            stats=self.stats,
            engine_events=self._engine_events,
            config=self._config,
            kernel_name=self._kernel.name,
        )

    def drift_report(self) -> dict:
        """Relaxed-mode drift counters (all zero in lock-step mode)."""
        return {
            "bit_exact": self._plan.bit_exact,
            "epoch_cycles": self._plan.epoch_cycles,
            "shards": self._plan.num_shards,
            "windows_run": self.windows_run,
            "clamped_fills": self.clamped_fills,
            "max_clamp_cycles": self.max_clamp_cycles,
        }


def shard_execute(
    kernel: KernelSpec,
    config: GPUConfig,
    engine_factory: EngineFactory,
    plan: ShardPlan,
    load_observers: Sequence[LoadObserver] = (),
    supervisor: Optional[SupervisorConfig] = None,
    telemetry: Optional[TelemetryHub] = None,
) -> tuple[SimulationResult, dict]:
    """Run one kernel under ``plan`` with supervision; returns (result, info).

    Process-backend failures (worker crash, missed heartbeat deadline)
    are retried with fresh workers up to ``supervisor.max_attempts``;
    past that the run **degrades to the serial engine**, so a sharded
    invocation always returns a result for any workload the serial
    engine can complete. A ``telemetry`` hub rides along on every path:
    merged at barriers while sharded, unbound (partial output reset) on
    a lost attempt, and bound conventionally if the run degrades.
    ``info`` records the drift counters, attempts used, and whether
    degradation happened.
    """
    sup = supervisor or SupervisorConfig()
    attempts = sup.max_attempts if plan.backend == "process" else 1
    failures: list[str] = []
    metrics = get_registry()
    for attempt in range(1, max(1, attempts) + 1):
        engine = ShardedGPUSimulator(
            kernel, config, engine_factory, plan, load_observers,
            supervisor=sup, attempt=attempt, telemetry=telemetry,
        )
        try:
            result = engine.run()
        except ShardWorkerLost as exc:
            failures.append(str(exc))
            metrics.counter("shard.worker.lost").inc()
            metrics.counter("resilience.retries").inc()
            flight.record(
                "shard.attempt_lost",
                kernel=kernel.name,
                attempt=attempt,
                error=str(exc),
            )
            if telemetry is not None:
                telemetry.unbind()
            continue
        info = engine.drift_report()
        info["attempts"] = attempt
        info["degraded"] = False
        info["failures"] = failures
        return result, info
    metrics.counter("shard.runs.degraded").inc()
    flight.record(
        "shard.degraded", kernel=kernel.name, attempts=attempts,
        failures=len(failures),
    )
    result = simulate(
        kernel, config, engine_factory, load_observers, telemetry=telemetry
    )
    info = {
        "bit_exact": True,
        "epoch_cycles": plan.epoch_cycles,
        "shards": plan.num_shards,
        "windows_run": 0,
        "clamped_fills": 0,
        "max_clamp_cycles": 0,
        "attempts": attempts,
        "degraded": True,
        "failures": failures,
    }
    return result, info


def simulate_sharded(
    kernel: KernelSpec,
    config: GPUConfig,
    engine_factory: EngineFactory,
    plan: ShardPlan,
    load_observers: Sequence[LoadObserver] = (),
    supervisor: Optional[SupervisorConfig] = None,
    telemetry: Optional[TelemetryHub] = None,
) -> SimulationResult:
    """Convenience wrapper over :func:`shard_execute` (result only)."""
    result, _info = shard_execute(
        kernel, config, engine_factory, plan, load_observers,
        supervisor=supervisor, telemetry=telemetry,
    )
    return result
