"""Distributed telemetry: per-lane recording + deterministic barrier merge.

The serial engine hands every SM an :class:`~repro.telemetry.hub.SMTelemetry`
proxy that charges a shared :class:`~repro.telemetry.stalls.StallEngine`
and emits events straight into the hub. Inside a shard none of that
shared state exists, so each :class:`~repro.shard.lane.ShardLane` gets a
:class:`LaneTelemetryRecorder` instead: the same hook surface, but every
observation lands in a per-lane buffer tagged with the parent tick. At
each epoch barrier the worker ships the buffers inside its
:class:`~repro.shard.worker.BarrierReport` (an in-proc hand-off, or a
pickled pipe frame under the process backend), and the parent-side
:class:`ShardTelemetryCoordinator` performs a deterministic tuple-sorted
merge into one real hub.

Lock-step (``epoch_cycles == 1``) byte-identity rests on three facts:

* **Stalls** — a lane yields exactly one outcome per visited tick
  (issue, or one exclusive stall cause); lanes the worker skipped are
  provably inert, so their cached classification is re-charged per tick.
  The only time-dependent cause — waiting-on-memory resolving to
  ``dram_queue`` vs ``l1_pending`` — is decided by the parent, which
  replays the merged boundary log up to the first memory-waiting SM,
  probes DRAM once, then replays the rest: exactly the serial engine's
  memoised first-prober-wins probe.
* **Events** — the serial event queue drains in global schedule order,
  and every event fires exactly at its due tick, so tagging each lane
  schedule with ``(tick, per-SM counter)`` and sorting drained events by
  ``(schedule tick, sm, counter)`` reproduces the serial heap order.
  Cycle-phase events concatenate in SM order; shared-side L2/DRAM events
  (emitted parent-side during replay) are spliced back at boundary
  markers the proxy left in the lane's stream.
* **Intervals** — the collector only reads monotone counters plus the
  per-L1 MSHR occupancy at flush ticks; the coordinator maintains view
  objects summed from per-worker counters in SM order, so flush records
  are float-for-float identical.

Relaxed mode (``epoch_cycles > 1``) keeps the same plumbing but is
approximate by contract: outcomes are charged as recorded, skipped lane
ticks are closed out at finish against each SM's last cause (so the
reconciliation identities still hold exactly), and event order within a
window is a deterministic ``(tick, phase, sm)`` sort rather than the
serial interleave.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import TYPE_CHECKING, Any, Optional, Sequence

from repro.mem.subsystem import EventQueue, SharedL2Core, _L1FillEvent
from repro.shard.proxy import BoundaryEntry, REQ_STORE
from repro.telemetry.hub import TelemetryHub
from repro.telemetry.stalls import STALL_CAUSES

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.config import GPUConfig
    from repro.shard.worker import BarrierReport, FillDelivery
    from repro.sm.pipeline import SMCore
    from repro.stats.counters import SimStats

#: Stall-cause indices (STALL_CAUSES order is the contract; see stalls.py).
_CAUSE_INDEX = {name: i for i, name in enumerate(STALL_CAUSES)}
MSHR_FULL = _CAUSE_INDEX["mshr_full"]
DRAM_QUEUE = _CAUSE_INDEX["dram_queue"]
L1_PENDING = _CAUSE_INDEX["l1_pending"]
SCOREBOARD = _CAUSE_INDEX["scoreboard"]
SCHED_THROTTLE = _CAUSE_INDEX["sched_throttle"]
NO_WARP = _CAUSE_INDEX["no_warp"]

#: Per-tick lane outcomes. Non-negative codes are STALL_CAUSES indices
#: charged verbatim; the two negatives need parent-side resolution.
OUT_ISSUE = -1
#: Waiting on memory: resolves to ``dram_queue`` or ``l1_pending`` only
#: after the parent's tick-t DRAM probe (see module docstring).
OUT_MEM_PENDING = -2


def classify_idle(core: "SMCore") -> int:
    """The stall engine's idle-cause scan, with the DRAM probe deferred.

    Mirrors :meth:`~repro.telemetry.stalls.StallEngine.on_idle` exactly
    (same early break on the first memory-waiting warp); the
    time-dependent ``dram_queue``/``l1_pending`` split is returned as
    :data:`OUT_MEM_PENDING` for the parent to resolve.
    """
    waiting_mem = False
    waiting_dep = False
    for warp in core.warps:
        if warp.finished:
            continue
        if warp.outstanding:
            waiting_mem = True
            break
        waiting_dep = True
    if waiting_mem:
        return OUT_MEM_PENDING
    if waiting_dep:
        return SCOREBOARD
    if core.done:
        return NO_WARP
    return L1_PENDING


class LaneTelemetryRecorder:
    """One lane's stand-in for :class:`SMTelemetry`: record, don't charge.

    Exposes the exact hook surface the SM pipeline, scheduler,
    prefetcher and L1 call (``emit`` / ``on_issue`` / ``on_idle`` /
    ``on_throttle`` / ``sm_id`` / ``events``), buffering everything with
    the current parent tick for the barrier merge.
    """

    __slots__ = ("sm_id", "events", "tick", "inert_code", "outcomes",
                 "drain_items", "cycle_items", "drain_tag",
                 "_sched_counter", "_fill_tags")

    def __init__(self, sm_id: int, capture_events: bool):
        self.sm_id = sm_id
        #: Mirror of ``hub.events``: is event construction worth it?
        self.events = capture_events
        self.tick = 0
        #: Classification cached by :meth:`record_inert`; re-charged by
        #: the worker for every window this lane sleeps through. The
        #: default mirrors the stall engine's ``_last_cause`` default.
        self.inert_code = NO_WARP
        #: (tick, code) — one per visited tick.
        self.outcomes: list[tuple[int, int]] = []
        #: (tick, sched_tick, sched_n, event) — drain-phase emissions.
        self.drain_items: list[tuple[int, int, int, Any]] = []
        #: (tick, "e", event) or (tick, "b", seq) — cycle-phase stream.
        self.cycle_items: list[tuple[int, str, Any]] = []
        #: Schedule tag of the event currently draining (set by the
        #: recording queue), or ``None`` during the cycle phase.
        self.drain_tag: Optional[tuple[int, int]] = None
        self._sched_counter = 0
        #: Reserved schedule tags for in-flight boundary fills (FIFO:
        #: barrier deliveries arrive in per-lane forward order).
        self._fill_tags: deque[tuple[int, int]] = deque()

    # -- lane driver hooks ---------------------------------------------

    def begin_tick(self, now: int) -> None:
        self.tick = now
        self._sched_counter = 0

    def record_inert(self, now: int, core: "SMCore") -> None:
        """The lane skipped ``cycle()`` at ``now``: classify it ourselves.

        ``pending_work_or_hint`` returned False, so the replay queue is
        empty — MSHR gating is impossible and :func:`classify_idle` is
        exactly what the serial ``on_idle`` would have concluded.
        """
        code = classify_idle(core)
        self.inert_code = code
        self.outcomes.append((now, code))

    def take(self) -> tuple[list, list, list]:
        """Hand the window's buffers to the barrier and reset them."""
        out = (self.outcomes, self.drain_items, self.cycle_items)
        self.outcomes = []
        self.drain_items = []
        self.cycle_items = []
        return out

    # -- schedule tagging (recording queue + proxy forward hook) -------

    def next_tag(self) -> tuple[int, int]:
        tag = (self.tick, self._sched_counter)
        self._sched_counter += 1
        return tag

    def on_forward(self, seq: int) -> None:
        """The proxy logged a boundary miss/prefetch with entry ``seq``.

        Two jobs: reserve the schedule tag the serial engine would have
        given the fill event (forwards and local wake-ups share one
        per-tick counter, so per-lane tag order equals serial per-SM
        schedule order), and splice a boundary marker into the cycle
        stream where the shared-side L2/DRAM events belong.
        """
        self._fill_tags.append(self.next_tag())
        self.cycle_items.append((self.tick, "b", seq))

    def pop_fill_tag(self) -> tuple[int, int]:
        if self._fill_tags:
            return self._fill_tags.popleft()
        # Relaxed-mode safety net (a clamped fill whose forward predates
        # recording); exact mode never reaches this.
        return self.next_tag()

    # -- SMTelemetry surface (called by pipeline/scheduler/L1) ---------

    def emit(self, event: Any) -> None:
        tag = self.drain_tag
        if tag is not None:
            self.drain_items.append((self.tick, tag[0], tag[1], event))
        else:
            self.cycle_items.append((self.tick, "e", event))

    def on_issue(self) -> None:
        self.outcomes.append((self.tick, OUT_ISSUE))

    def on_idle(self, sm: "SMCore", now: int, mshr_gated: int) -> None:
        code = MSHR_FULL if mshr_gated else classify_idle(sm)
        self.outcomes.append((now, code))

    def on_throttle(self, now: int) -> None:
        self.outcomes.append((now, SCHED_THROTTLE))


class _RecordingEventQueue(EventQueue):
    """Lane event queue that remembers each event's serial schedule tag.

    Local wake-ups get a fresh ``(tick, counter)`` tag at schedule time;
    barrier-delivered fills pop the tag reserved when their miss was
    forwarded — which is when the *serial* engine would have scheduled
    them. ``run_until`` exposes the draining event's tag through
    ``recorder.drain_tag`` so emissions can be merge-sorted back into
    the serial heap order.
    """

    __slots__ = ("_recorder", "_tags")

    def __init__(self, recorder: LaneTelemetryRecorder):
        super().__init__()
        self._recorder = recorder
        self._tags: dict[int, tuple[int, int]] = {}

    def schedule(self, cycle: int, callback) -> None:
        rec = self._recorder
        if isinstance(callback, _L1FillEvent):
            tag = rec.pop_fill_tag()
        else:
            tag = rec.next_tag()
        seq = next(self._seq)
        self._tags[seq] = tag
        heapq.heappush(self._heap, (cycle, seq, callback))

    def run_until(self, cycle: int) -> None:
        rec = self._recorder
        heap = self._heap
        while heap and heap[0][0] <= cycle:
            when, seq, callback = heapq.heappop(heap)
            self.processed += 1
            rec.drain_tag = self._tags.pop(seq, None)
            callback(when)
        rec.drain_tag = None


class _MergedL1Stats:
    """What the interval collector reads from ``stats.l1`` — nothing more."""

    __slots__ = ("accesses", "misses", "prefetch_issued", "prefetch_useful",
                 "prefetch_demand_merged")

    def __init__(self) -> None:
        self.accesses = 0
        self.misses = 0
        self.prefetch_issued = 0
        self.prefetch_useful = 0
        self.prefetch_demand_merged = 0


class _MergedStats:
    """Stats view fed to the interval collector, updated at barriers.

    ``memory`` is not a merged copy: it aliases the parent-held
    authoritative :class:`~repro.stats.counters.MemoryStats` (all L2/DRAM
    counters are charged parent-side during boundary replay, before the
    window's ``hub.on_tick``), so ``l2_miss_rate`` reads the same values
    the serial engine would.
    """

    __slots__ = ("instructions", "l1", "memory")

    def __init__(self, memory: Any = None) -> None:
        self.instructions = 0
        self.l1 = _MergedL1Stats()
        self.memory = memory


class _LaneL1View:
    """Per-SM MSHR-occupancy view (the only L1 attribute intervals read)."""

    __slots__ = ("mshr_occupancy",)

    def __init__(self) -> None:
        self.mshr_occupancy = 0.0


class _CaptureSink:
    """Stand-in telemetry target for the parent-held L2/DRAM pair.

    The shared side checks ``tel.events`` and calls ``tel.emit`` — this
    buffers those emissions per replayed boundary entry so the
    coordinator can splice them at the lane's boundary markers.
    """

    __slots__ = ("events", "buffer")

    def __init__(self) -> None:
        self.events = True
        self.buffer: list[Any] = []

    def emit(self, event: Any) -> None:
        self.buffer.append(event)


class ShardTelemetryCoordinator:
    """Parent-side merge: barrier payloads -> one serial-identical hub."""

    def __init__(self, hub: TelemetryHub, config: "GPUConfig",
                 shared: SharedL2Core, exact: bool):
        self.hub = hub
        self.exact = exact
        self.num_sms = config.num_sms
        self.stats_view = _MergedStats(shared.memory_stats)
        self.l1_views = [_LaneL1View() for _ in range(config.num_sms)]
        self._shared = shared
        self._capture: Optional[_CaptureSink] = None
        if hub.events:
            self._capture = _CaptureSink()
            shared.l2.telemetry = self._capture
            shared.dram.telemetry = self._capture
        hub.bind_shard(
            num_sms=config.num_sms,
            warps_per_sm=config.max_warps_per_sm,
            dram=shared.dram,
            stats=self.stats_view,
            l1s=self.l1_views,
        )
        self.events_merged = 0

    def make_recorder(self, sm_id: int) -> LaneTelemetryRecorder:
        return LaneTelemetryRecorder(sm_id, capture_events=self.hub.events)

    # ------------------------------------------------------------------
    # Per-window merge
    # ------------------------------------------------------------------

    def process_window(
        self,
        merged: Sequence[BoundaryEntry],
        reports: Sequence["BarrierReport"],
        start: int,
        end: int,
    ) -> list["FillDelivery"]:
        """Replay the merged boundary log *and* merge the lane telemetry.

        Replaces the engine's plain replay loop: the DRAM probe for stall
        attribution must interleave with the replay, so both live here.
        Returns the window's new fill deliveries, exactly as the plain
        loop would have.
        """
        payloads = [r.telemetry for r in reports if r.telemetry is not None]
        self._update_views(payloads)
        if self.exact:
            return self._window_exact(merged, payloads, start)
        return self._window_relaxed(merged, payloads, end)

    def _update_views(self, payloads: Sequence[dict]) -> None:
        view = self.stats_view
        l1 = view.l1
        instructions = accesses = misses = 0
        pf_issued = pf_useful = pf_merged = 0
        for payload in payloads:
            (ins, acc, mis, pfi, pfu, pfm) = payload["counters"]
            instructions += ins
            accesses += acc
            misses += mis
            pf_issued += pfi
            pf_useful += pfu
            pf_merged += pfm
            for sm_id, occupancy in payload["occupancy"]:
                self.l1_views[sm_id].mshr_occupancy = occupancy
        view.instructions = instructions
        l1.accesses = accesses
        l1.misses = misses
        l1.prefetch_issued = pf_issued
        l1.prefetch_useful = pf_useful
        l1.prefetch_demand_merged = pf_merged

    def _replay_one(self, entry: BoundaryEntry, new_fills: list,
                    captured: dict) -> None:
        cycle, sm_id, seq, kind, line_addr = entry
        capture = self._capture
        if capture is not None:
            capture.buffer = []
        if kind == REQ_STORE:
            self._shared.replay_store(line_addr, cycle)
        else:
            fill = self._shared.replay_miss(line_addr, cycle)
            new_fills.append((sm_id, line_addr, fill))
            if capture is not None and capture.buffer:
                captured[(sm_id, seq)] = capture.buffer

    def _window_exact(self, merged, payloads, tick: int) -> list:
        # One parent tick per window. Gather each SM's single outcome.
        codes: list[Optional[int]] = [None] * self.num_sms
        for payload in payloads:
            for sm_id, _tick, code in payload["outcomes"]:
                codes[sm_id] = code
            for sm_id, code in payload["inert"]:
                codes[sm_id] = code
        # The serial DRAM probe fires during the first memory-waiting
        # SM's cycle — after every lower SM's misses (and its own, logged
        # during replay drain before on_idle) reached the shared side.
        probe_sm = None
        for sm_id, code in enumerate(codes):
            if code == OUT_MEM_PENDING:
                probe_sm = sm_id
                break
        new_fills: list = []
        captured: dict = {}
        dram_busy = False
        index = 0
        if probe_sm is not None:
            while index < len(merged) and merged[index][1] <= probe_sm:
                self._replay_one(merged[index], new_fills, captured)
                index += 1
            dram_busy = self._shared.dram.busy_partitions(tick) > 0
        while index < len(merged):
            self._replay_one(merged[index], new_fills, captured)
            index += 1
        if self.hub.events:
            self._feed_events_exact(payloads, captured)
        stalls = self.hub.stalls
        assert stalls is not None
        for sm_id, code in enumerate(codes):
            if code is None:
                continue
            if code == OUT_ISSUE:
                stalls.on_issue(sm_id)
            elif code == OUT_MEM_PENDING:
                stalls.charge(sm_id, DRAM_QUEUE if dram_busy else L1_PENDING)
            else:
                stalls.charge(sm_id, code)
        self.hub.on_tick(tick)
        return new_fills

    def _feed_events_exact(self, payloads, captured: dict) -> None:
        # Drain phase: serial heap order is (schedule tick, sm, counter);
        # the sort is stable, so multiple emissions of one drained event
        # (fill -> evict -> mem_complete) keep their per-lane order.
        drains: list[tuple[int, int, int, Any]] = []
        for payload in payloads:
            for sm_id, items in payload["drain"]:
                for _tick, s, n, event in items:
                    drains.append((s, sm_id, n, event))
        drains.sort(key=lambda item: (item[0], item[1], item[2]))
        emit = self.hub.emit
        merged_events = len(drains)
        for _s, _sm, _n, event in drains:
            emit(event)
        # Cycle phase: SM order (payloads arrive in worker order over
        # contiguous ascending SM groups), with shared-side L2/DRAM
        # emissions spliced at the proxy's boundary markers.
        for payload in payloads:
            for sm_id, items in payload["cycle"]:
                for item in items:
                    if item[1] == "e":
                        emit(item[2])
                        merged_events += 1
                    else:
                        for event in captured.pop((sm_id, item[2]), ()):
                            emit(event)
                            merged_events += 1
        self.events_merged += merged_events

    def _window_relaxed(self, merged, payloads, end: int) -> list:
        new_fills: list = []
        captured: dict = {}
        for entry in merged:
            self._replay_one(entry, new_fills, captured)
        if self.hub.events:
            self._feed_events_relaxed(payloads, captured)
        stalls = self.hub.stalls
        assert stalls is not None
        dram = self._shared.dram
        for payload in payloads:
            for sm_id, tick, code in payload["outcomes"]:
                if code == OUT_ISSUE:
                    stalls.on_issue(sm_id)
                elif code == OUT_MEM_PENDING:
                    busy = dram.busy_partitions(tick) > 0
                    stalls.charge(sm_id, DRAM_QUEUE if busy else L1_PENDING)
                else:
                    stalls.charge(sm_id, code)
        self.hub.on_tick(end - 1)
        return new_fills

    def _feed_events_relaxed(self, payloads, captured: dict) -> None:
        # Lanes visited different tick subsets; a serial interleave no
        # longer exists. Deterministic order: (tick, drains-before-cycles,
        # sm), per-lane append order within — enough for a valid trace.
        items: list[tuple[int, int, int, int, Any]] = []
        for payload in payloads:
            for sm_id, drain in payload["drain"]:
                for k, (tick, s, n, event) in enumerate(drain):
                    items.append((tick, 0, sm_id, k, event))
            for sm_id, cycle in payload["cycle"]:
                for k, item in enumerate(cycle):
                    items.append((tick_of(item), 1, sm_id, k, item))
        items.sort(key=lambda it: it[:4])
        emit = self.hub.emit
        merged_events = 0
        for _tick, phase, sm_id, _k, item in items:
            if phase == 0:
                emit(item)
                merged_events += 1
            elif item[1] == "e":
                emit(item[2])
                merged_events += 1
            else:
                for event in captured.pop((sm_id, item[2]), ()):
                    emit(event)
                    merged_events += 1
        self.events_merged += merged_events

    # ------------------------------------------------------------------
    # Engine pass-throughs
    # ------------------------------------------------------------------

    def on_skip(self, skipped: int) -> None:
        """Parent fast-forward: every SM idles at its last-known cause."""
        self.hub.on_skip(skipped)

    def finish(self, stats: "SimStats") -> None:
        """Final barrier done, worker stats merged: close out the hub."""
        view = self.stats_view
        view.instructions = stats.instructions
        view.memory = stats.memory
        l1 = stats.l1
        merged_l1 = view.l1
        merged_l1.accesses = l1.accesses
        merged_l1.misses = l1.misses
        merged_l1.prefetch_issued = l1.prefetch_issued
        merged_l1.prefetch_useful = l1.prefetch_useful
        merged_l1.prefetch_demand_merged = l1.prefetch_demand_merged
        stalls = self.hub.stalls
        if not self.exact and stalls is not None:
            # Lane ticks skipped inside relaxed windows were never
            # charged; close them against each SM's last cause so the
            # reconciliation identities hold by construction.
            stalls.close_residual(stats.cycles)
        try:
            from repro.telemetry.metrics import get_registry
            get_registry().counter("telemetry.events.merged").inc(
                self.events_merged)
        except Exception:  # pragma: no cover - metrics never block a run
            pass
        self.hub.finish(stats)


def tick_of(cycle_item: tuple) -> int:
    """Tick key of one recorder cycle-stream item (relaxed-mode sort)."""
    return cycle_item[0]
