"""Epoch-barrier sharded execution of a single run (``--shards N``).

Partitions one simulation's SMs across shard workers that simulate
epochs of ``E`` cycles locally and exchange all shared-memory traffic at
deterministic barriers. ``E=1`` is lock-step and bit-identical to the
serial engine; larger epochs trade exactness of tick-sensitive stall
counters for speed and report the drift. See DESIGN.md ("Intra-run
sharded execution") for the protocol and the determinism argument.
"""

from repro.shard.engine import (
    ShardedGPUSimulator,
    shard_execute,
    simulate_sharded,
)
from repro.shard.plan import (
    BACKENDS,
    DEFAULT_EPOCH_CYCLES,
    ShardPlan,
    reject_unsupported,
    resolve_plan,
)

__all__ = [
    "BACKENDS",
    "DEFAULT_EPOCH_CYCLES",
    "ShardPlan",
    "ShardedGPUSimulator",
    "reject_unsupported",
    "resolve_plan",
    "shard_execute",
    "simulate_sharded",
]
