"""Shard worker: a contiguous group of lanes plus their epoch protocol.

A :class:`ShardWorker` owns the :class:`~repro.shard.lane.ShardLane`\\ s
for one contiguous SM-id range and a private :class:`SimStats` that only
those lanes write. Its whole interface is the epoch protocol:

* :meth:`run_window` — deliver the barrier's fill completions, simulate
  ``[start, end)`` on every non-quiesced lane, and return a
  :class:`BarrierReport` with the drained boundary log and scheduling
  hints. The report is a plain picklable tuple-of-ints affair, so the
  same object crosses a pipe unchanged under the process backend.
* :meth:`check_invariants` — the serial subsystem's conservation checks
  restated for shard-local state (boundary-pending misses count toward
  MSHR/fill conservation; stats accounting is valid per worker because
  each counter is written by exactly one worker's lanes).

The worker never touches the shared L2/DRAM — that pair lives in the
parent and is replayed serially at barriers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import InvariantError
from repro.shard.lane import WAIT_FOR_BARRIER, ShardLane
from repro.shard.proxy import BoundaryEntry
from repro.stats.counters import SimStats

#: One barrier-resolved fill: (sm_id, line_addr, fill_cycle).
FillDelivery = tuple[int, int, int]


@dataclass(slots=True)
class BarrierReport:
    """What one worker tells the parent at an epoch barrier."""

    #: Boundary requests accumulated this window, in per-lane order.
    entries: list[BoundaryEntry]
    #: True if any lane issued an instruction this window.
    issued: bool
    #: Earliest future cycle any non-quiesced lane has work, or ``None``.
    wake: Optional[int]
    #: True once every lane has quiesced (done, drained, nothing in flight).
    all_quiesced: bool
    #: Latest lane quiescence cycle seen so far, or ``None``.
    max_quiesced_at: Optional[int]
    #: Cumulative instructions issued by this worker's lanes.
    instructions: int
    #: Cumulative fills completed (MSHR releases) in this worker's L1s.
    fills_completed: int
    #: Lane telemetry payload for the parent-side merge, or ``None`` when
    #: the run carries no telemetry (see repro.shard.telemetry). Plain
    #: lists/tuples/dicts, so it pickles through the process backend.
    telemetry: Optional[dict] = None


class ShardWorker:
    """One shard: a lane group, its stats, and the window/barrier cycle."""

    __slots__ = ("worker_id", "lanes", "stats", "_by_sm")

    def __init__(self, worker_id: int, lanes: Sequence[ShardLane],
                 stats: SimStats):
        self.worker_id = worker_id
        self.lanes = list(lanes)
        self.stats = stats
        self._by_sm = {lane.sm_id: lane for lane in self.lanes}

    def run_window(
        self,
        start: int,
        end: int,
        exact: bool,
        deliveries: Sequence[FillDelivery] = (),
    ) -> BarrierReport:
        """Apply barrier deliveries, simulate ``[start, end)``, and report.

        Deliveries are scheduled before any lane runs, so a fill due at
        cycle ``c`` inside the window is observed by its lane exactly at
        ``c`` — same as the serial engine's shared event queue. The
        parent guarantees ``fill_cycle >= start`` (clamping, and counting
        clamps as drift, happens on its side).
        """
        by_sm = self._by_sm
        for sm_id, line_addr, fill_cycle in deliveries:
            lane = by_sm[sm_id]
            lane.proxy.deliver_fill(line_addr, fill_cycle)
            if lane.sleep_until is not None and fill_cycle < lane.sleep_until:
                lane.sleep_until = fill_cycle
        issued = False
        entries: list[BoundaryEntry] = []
        wake: Optional[int] = None
        all_quiesced = True
        max_quiesced: Optional[int] = None
        for lane in self.lanes:
            if lane.quiesced_at is None:
                sleep = lane.sleep_until
                if sleep is not None and sleep >= end:
                    # Nothing can happen to this lane before the window
                    # ends: don't even enter it. The skipped cycles are
                    # pure idle, reconstructed by the engine's identity.
                    all_quiesced = False
                    if sleep != WAIT_FOR_BARRIER and (
                            wake is None or sleep < wake):
                        wake = sleep
                    continue
                if lane.run_window(start, end, exact):
                    issued = True
            if lane.quiesced_at is None:
                all_quiesced = False
                sleep = lane.sleep_until
                if sleep == WAIT_FOR_BARRIER:
                    hint = None
                elif sleep is not None:
                    hint = sleep
                else:
                    hint = lane.wake_hint(end - 1)
                if hint is not None and (wake is None or hint < wake):
                    wake = hint
            elif max_quiesced is None or lane.quiesced_at > max_quiesced:
                max_quiesced = lane.quiesced_at
            entries.extend(lane.proxy.drain_log())
        telemetry = None
        if self.lanes and self.lanes[0].recorder is not None:
            telemetry = self._telemetry_payload()
        return BarrierReport(
            entries=entries,
            issued=issued,
            wake=wake,
            all_quiesced=all_quiesced,
            max_quiesced_at=max_quiesced,
            instructions=self.stats.instructions,
            fills_completed=self.fills_completed,
            telemetry=telemetry,
        )

    def _telemetry_payload(self) -> dict:
        """Collect every lane's telemetry buffers for the barrier merge.

        A lane that recorded no outcome this window was skipped entirely
        (quiesced or sleeping) — provably inert, so its cached idle
        classification stands for every tick of the window and is shipped
        through ``inert`` instead.
        """
        from repro.shard.telemetry import NO_WARP
        outcomes: list[tuple[int, int, int]] = []
        inert: list[tuple[int, int]] = []
        drain: list[tuple[int, list]] = []
        cycle: list[tuple[int, list]] = []
        occupancy: list[tuple[int, float]] = []
        for lane in self.lanes:
            recorder = lane.recorder
            occupancy.append((lane.sm_id, lane.l1.mshr_occupancy))
            lane_out, lane_drain, lane_cycle = recorder.take()
            if lane_out:
                outcomes.extend(
                    (lane.sm_id, tick, code) for tick, code in lane_out
                )
            else:
                inert.append((
                    lane.sm_id,
                    NO_WARP if lane.quiesced_at is not None
                    else recorder.inert_code,
                ))
            if lane_drain:
                drain.append((lane.sm_id, lane_drain))
            if lane_cycle:
                cycle.append((lane.sm_id, lane_cycle))
        l1 = self.stats.l1
        return {
            "outcomes": outcomes,
            "inert": inert,
            "drain": drain,
            "cycle": cycle,
            "occupancy": occupancy,
            "counters": (
                self.stats.instructions,
                l1.accesses,
                l1.misses,
                l1.prefetch_issued,
                l1.prefetch_useful,
                l1.prefetch_demand_merged,
            ),
        }

    @property
    def fills_completed(self) -> int:
        """Total MSHR releases across this worker's L1s (watchdog signal)."""
        return sum(lane.l1.mshrs.released_total for lane in self.lanes)

    @property
    def engine_events(self) -> int:
        """Scheduler + prefetcher bookkeeping events (energy model input)."""
        return sum(
            lane.scheduler.events + lane.prefetcher.events
            for lane in self.lanes
        )

    # ------------------------------------------------------------------
    # Integrity
    # ------------------------------------------------------------------

    def check_invariants(self, now: int) -> None:
        """Serial subsystem invariants restated over shard-local state.

        Per-lane MSHR conservation is boundary-aware (handled by
        :meth:`ShardLane.check_invariants`); the stats accounting and
        prefetch-conservation checks hold per worker because this
        worker's ``stats`` is written only by its own lanes.
        """
        for lane in self.lanes:
            mshrs = lane.l1.mshrs
            live = len(mshrs)
            if live > mshrs.capacity:
                self._violate(
                    now, f"L1[{lane.sm_id}] holds {live} MSHR entries over "
                    f"capacity {mshrs.capacity}")
            if live != mshrs.allocated_total - mshrs.released_total:
                self._violate(
                    now, f"L1[{lane.sm_id}] MSHR leak: {live} live entries "
                    f"but {mshrs.allocated_total} allocated - "
                    f"{mshrs.released_total} released")
            lane.check_invariants(now)
        l1_stats = self.stats.l1
        if l1_stats.hits + l1_stats.misses != l1_stats.accesses:
            self._violate(
                now, f"L1 accounting: {l1_stats.hits} hits + "
                f"{l1_stats.misses} misses != {l1_stats.accesses} accesses")
        if (l1_stats.cold_misses + l1_stats.capacity_conflict_misses
                != l1_stats.misses):
            self._violate(
                now, f"L1 miss classes: {l1_stats.cold_misses} cold + "
                f"{l1_stats.capacity_conflict_misses} capacity/conflict != "
                f"{l1_stats.misses} misses")
        live_prefetch = sum(
            lane.l1.mshrs.live_prefetch_only for lane in self.lanes)
        accounted = (
            l1_stats.prefetch_fills
            + l1_stats.prefetch_demand_merged
            + live_prefetch
        )
        if l1_stats.prefetch_issued != accounted:
            self._violate(
                now, f"prefetch conservation: {l1_stats.prefetch_issued} "
                f"issued != {l1_stats.prefetch_fills} fills + "
                f"{l1_stats.prefetch_demand_merged} demand-merged + "
                f"{live_prefetch} live prefetch-only MSHRs")
        if (l1_stats.prefetch_useful + l1_stats.prefetch_early_evicted
                > l1_stats.prefetch_fills):
            self._violate(
                now, f"prefetch outcomes: {l1_stats.prefetch_useful} useful "
                f"+ {l1_stats.prefetch_early_evicted} early-evicted > "
                f"{l1_stats.prefetch_fills} prefetch fills")

    def _violate(self, now: int, message: str) -> None:
        raise InvariantError(
            f"shard {self.worker_id} invariant violated at cycle {now}: "
            f"{message}",
            details={
                "cycle": now,
                "shard": self.worker_id,
                "invariant": message,
            },
        )

    def describe(self) -> dict:
        """JSON-ready snapshot of this worker's lanes (diagnostics)."""
        return {
            "worker": self.worker_id,
            "sms": [lane.describe() for lane in self.lanes],
            "mshrs": [
                {
                    "sm": lane.sm_id,
                    "live": len(lane.l1.mshrs),
                    "capacity": lane.l1.mshrs.capacity,
                    "allocated_total": lane.l1.mshrs.allocated_total,
                    "released_total": lane.l1.mshrs.released_total,
                }
                for lane in self.lanes
            ],
        }
