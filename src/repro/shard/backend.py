"""Shard backends: how epoch windows reach the shard workers.

Two interchangeable carriers for the same window/barrier protocol:

* :class:`InprocBackend` — direct method calls, zero overhead, the
  default. On a single-core container this is also the *fast* path: the
  sharded engine's speedup comes from per-SM event-driven
  fast-forwarding inside :meth:`ShardLane.run_window`, not from OS-level
  parallelism.
* :class:`ProcessBackend` — one forked child per shard, pipes for the
  barrier exchange. Barrier replies double as heartbeats: a child that
  misses the supervisor deadline (hung, SIGSTOPped) or whose pipe hits
  EOF (crashed, OOM-killed) raises
  :class:`~repro.errors.ShardWorkerLost`, which the engine layer turns
  into kill-and-requeue and, past ``max_attempts``, degradation to the
  serial engine. Children are built by ``fork``, so they inherit the
  armed :mod:`repro.resilience.faults` plan and fire
  ``shard.window`` fault events deterministically.

Both backends expose the same five calls — ``run_window``,
``check_invariants``, ``describe``, ``finalize``, ``close`` — so the
engine never branches on the carrier.
"""

from __future__ import annotations

import multiprocessing
from typing import Optional, Sequence

import repro.errors as errors_mod
from repro.errors import ShardWorkerLost, SimulationError
from repro.resilience import faults
from repro.resilience.supervisor import SupervisorConfig
from repro.shard.worker import BarrierReport, FillDelivery, ShardWorker
from repro.stats.counters import SimStats
from repro.telemetry import flight

#: Exit code of a fault-injected shard crash (mirrors the pool workers).
_CRASH_EXIT = 73


class InprocBackend:
    """All shards in the parent process; calls instead of pipes."""

    __slots__ = ("workers",)

    def __init__(self, workers: Sequence[ShardWorker]):
        self.workers = list(workers)

    def run_window(
        self,
        start: int,
        end: int,
        exact: bool,
        deliveries: Sequence[Sequence[FillDelivery]],
    ) -> list[BarrierReport]:
        return [
            worker.run_window(start, end, exact, deliveries[idx])
            for idx, worker in enumerate(self.workers)
        ]

    def check_invariants(self, now: int) -> None:
        for worker in self.workers:
            worker.check_invariants(now)

    def describe(self) -> list[dict]:
        return [worker.describe() for worker in self.workers]

    def finalize(self) -> list[tuple[SimStats, int]]:
        return [
            (worker.stats, worker.engine_events) for worker in self.workers
        ]

    def close(self) -> None:  # symmetric with ProcessBackend
        pass


def _shard_child_main(worker: ShardWorker, conn, attempt: int,
                      plan: Optional[faults.FaultPlan]) -> None:
    """Child loop: answer window/check/describe/finish requests forever.

    Any simulator-side error is shipped to the parent as a structured
    ``("error", ...)`` message and re-raised there under its original
    exception class, so invariant violations inside a shard surface
    exactly like they do in-process.
    """
    if plan is not None:
        faults.arm(plan)
    window = 0
    try:
        while True:
            msg = conn.recv()
            tag = msg[0]
            if tag == "window":
                _, start, end, exact, deliveries = msg
                active = faults.ACTIVE
                if active is not None:
                    active.shard_window_fault(window, attempt)
                report = worker.run_window(start, end, exact, deliveries)
                conn.send(("report", report))
                window += 1
            elif tag == "check":
                worker.check_invariants(msg[1])
                conn.send(("ok",))
            elif tag == "describe":
                conn.send(("described", worker.describe()))
            elif tag == "finish":
                conn.send(("final", worker.stats, worker.engine_events))
            elif tag == "close":
                return
    except EOFError:
        return
    except Exception as exc:  # ship the failure, keep serving
        details = getattr(exc, "details", None)
        conn.send(("error", type(exc).__name__, str(exc), details))


class ProcessBackend:
    """One forked child per shard; pipes carry the barrier exchange."""

    __slots__ = ("workers", "_sup", "_attempt", "_procs", "_conns",
                 "_started")

    def __init__(self, workers: Sequence[ShardWorker],
                 supervisor: SupervisorConfig, attempt: int = 1):
        self.workers = list(workers)
        self._sup = supervisor
        self._attempt = attempt
        self._procs: list = []
        self._conns: list = []
        self._started = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def _ensure_started(self) -> None:
        if self._started:
            return
        ctx = multiprocessing.get_context("fork")
        for worker in self.workers:
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_shard_child_main,
                args=(worker, child_conn, self._attempt,
                      self._sup.fault_plan),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._conns.append(parent_conn)
        self._started = True

    def close(self) -> None:
        """Tear every child down; SIGKILL handles stopped (hung) ones too."""
        for conn in self._conns:
            try:
                conn.send(("close",))
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=0.2)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=1.0)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass
        self._procs = []
        self._conns = []
        self._started = False

    # ------------------------------------------------------------------
    # Message plumbing
    # ------------------------------------------------------------------

    def _lost(self, shard: int, kind: str) -> ShardWorkerLost:
        flight.record(
            "shard.worker_lost",
            shard=shard, cause=kind, attempt=self._attempt,
        )
        flight.dump(
            f"shard-worker-{kind}",
            details={"shard": shard, "kind": kind, "attempt": self._attempt},
        )
        self.close()
        return ShardWorkerLost(
            f"shard worker {shard} lost ({kind}) on attempt {self._attempt}",
            details={"shard": shard, "kind": kind, "attempt": self._attempt},
        )

    def _recv(self, shard: int):
        """One reply from a shard, supervised: EOF and deadline escalate.

        The reply itself is the heartbeat — a shard that goes silent past
        ``deadline_s`` (``None`` disables hang detection, matching the
        sweep supervisor's semantics) is declared lost; a dead process
        with a drained pipe likewise.
        """
        conn = self._conns[shard]
        proc = self._procs[shard]
        deadline = self._sup.deadline_s
        poll = self._sup.poll_interval_s or 0.05
        waited = 0.0
        while True:
            if conn.poll(poll):
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    raise self._lost(shard, "eof")
                if msg[0] == "error":
                    self.close()
                    _, name, text, details = msg
                    exc_cls = getattr(errors_mod, name, SimulationError)
                    raise exc_cls(text, details=details)
                return msg
            if not proc.is_alive():
                if conn.poll(0):
                    continue
                raise self._lost(shard, "eof")
            waited += poll
            if deadline is not None and waited >= deadline:
                raise self._lost(shard, "deadline")

    def _broadcast(self, message: tuple) -> None:
        self._ensure_started()
        for shard, conn in enumerate(self._conns):
            try:
                conn.send(message)
            except (BrokenPipeError, OSError):
                raise self._lost(shard, "eof")

    # ------------------------------------------------------------------
    # Backend API
    # ------------------------------------------------------------------

    def run_window(
        self,
        start: int,
        end: int,
        exact: bool,
        deliveries: Sequence[Sequence[FillDelivery]],
    ) -> list[BarrierReport]:
        self._ensure_started()
        for shard, conn in enumerate(self._conns):
            try:
                conn.send(
                    ("window", start, end, exact, list(deliveries[shard])))
            except (BrokenPipeError, OSError):
                raise self._lost(shard, "eof")
        return [
            self._recv(shard)[1] for shard in range(len(self._conns))
        ]

    def check_invariants(self, now: int) -> None:
        self._broadcast(("check", now))
        for shard in range(len(self._conns)):
            self._recv(shard)

    def describe(self) -> list[dict]:
        self._broadcast(("describe",))
        return [self._recv(shard)[1] for shard in range(len(self._conns))]

    def finalize(self) -> list[tuple[SimStats, int]]:
        self._broadcast(("finish",))
        return [
            (msg[1], msg[2])
            for msg in (self._recv(s) for s in range(len(self._conns)))
        ]


def make_backend(workers: Sequence[ShardWorker], backend: str,
                 supervisor: SupervisorConfig, attempt: int = 1):
    """Backend factory used by the engine (keeps the branch in one place)."""
    if backend == "process":
        return ProcessBackend(workers, supervisor, attempt=attempt)
    return InprocBackend(workers)
