"""Shard plan: SM partitioning, epoch length and compatibility guards.

A :class:`ShardPlan` is the frozen description of *how* one run is
sharded: how many shard workers, how many cycles each simulates between
barriers, and which backend carries the barrier exchange. It also owns
the composition rules of the ``--jobs`` x ``--shards`` matrix:

* ``--jobs`` owns the **process budget**. A sweep running ``--jobs N``
  already keeps N worker processes busy, so shards inside those workers
  always use the in-process backend — requesting the process backend
  under a parallel sweep is a :class:`~repro.errors.ShardConfigError`
  (nested pools would oversubscribe every core).
* ``--shards`` owns the **intra-run partition**. ``epoch_cycles == 1``
  is the lock-step mode whose statistics are bit-identical to the serial
  engine; larger epochs relax synchronisation for speed and report the
  measured drift instead.

Telemetry (stall attribution, interval metrics, trace capture) runs
under shards since the distributed-telemetry merge landed — see
:mod:`repro.shard.telemetry`. The remaining genuinely unsupported combo
(mid-run checkpointing: lane state cannot be snapshotted between
barriers) is rejected here with a clear error rather than silently
ignored.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import GPUConfig
from repro.errors import ShardConfigError

#: Backend spellings accepted by ``--shard-backend``.
BACKENDS = ("inproc", "process")

#: Default epoch length for relaxed mode (well inside the no-clamp window:
#: a fill takes at least ``l2.hit_latency`` cycles, so every completion
#: lands strictly after the barrier that delivers it).
DEFAULT_EPOCH_CYCLES = 64


@dataclass(frozen=True)
class ShardPlan:
    """Frozen description of one sharded execution."""

    num_shards: int
    epoch_cycles: int = DEFAULT_EPOCH_CYCLES
    backend: str = "inproc"

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ShardConfigError("need at least one shard")
        if self.epoch_cycles < 1:
            raise ShardConfigError("epoch length must be at least one cycle")
        if self.backend not in BACKENDS:
            raise ShardConfigError(
                f"unknown shard backend {self.backend!r}; "
                f"known: {', '.join(BACKENDS)}"
            )

    @property
    def bit_exact(self) -> bool:
        """True when this plan reproduces serial statistics bit-for-bit.

        Only the lock-step epoch (``E=1``) qualifies: the parent then
        drives exactly the serial engine's executed-tick set, so every
        counter — including tick-sensitive ones like
        ``reservation_fails`` — matches. Larger epochs fast-forward each
        SM independently and report drift instead.
        """
        return self.epoch_cycles == 1

    @property
    def identity_tag(self) -> "str | None":
        """Registry identity tag, or ``None`` when results match serial.

        Bit-exact plans share the serial engine's run ids (the results
        are indistinguishable); relaxed plans get their own identity so
        drifted metrics never collide with serial records under one id.
        """
        if self.bit_exact:
            return None
        return f"shard{self.num_shards}xE{self.epoch_cycles}"

    def validate(self, config: GPUConfig) -> None:
        """Check the plan against a concrete GPU configuration."""
        if self.num_shards > config.num_sms:
            raise ShardConfigError(
                f"{self.num_shards} shards over {config.num_sms} SMs: "
                "each shard needs at least one SM",
                details={"shards": self.num_shards, "num_sms": config.num_sms},
            )

    def groups(self, num_sms: int) -> list[range]:
        """Contiguous SM id ranges, one per shard (sizes differ by <= 1)."""
        base, extra = divmod(num_sms, self.num_shards)
        groups: list[range] = []
        lo = 0
        for shard in range(self.num_shards):
            hi = lo + base + (1 if shard < extra else 0)
            groups.append(range(lo, hi))
            lo = hi
        return groups

    def worker_processes(self) -> int:
        """OS processes this plan adds beyond the parent."""
        return self.num_shards if self.backend == "process" else 0


def resolve_plan(
    shards: "int | None",
    epoch_cycles: "int | None" = None,
    backend: "str | None" = None,
    *,
    jobs: int = 1,
) -> "ShardPlan | None":
    """Build a plan from CLI-ish inputs, enforcing the worker budget.

    Returns ``None`` when ``shards`` is unset (serial execution).
    ``--jobs`` has precedence over the backend choice: under a parallel
    sweep the process backend is refused rather than silently stacked.
    """
    if shards is None:
        if epoch_cycles is not None or backend is not None:
            raise ShardConfigError(
                "--epoch-cycles/--shard-backend require --shards"
            )
        return None
    chosen = backend or "inproc"
    if jobs > 1 and chosen == "process":
        raise ShardConfigError(
            f"--jobs {jobs} already owns the process budget; shards inside "
            "pool workers must use the in-process backend "
            "(drop --shard-backend process or run with --jobs 1)",
            details={"jobs": jobs, "shards": shards, "backend": chosen},
        )
    return ShardPlan(
        num_shards=shards,
        epoch_cycles=(
            DEFAULT_EPOCH_CYCLES if epoch_cycles is None else epoch_cycles
        ),
        backend=chosen,
    )


def reject_unsupported(plan: "ShardPlan | None", **features: object) -> None:
    """Raise :class:`ShardConfigError` for feature combos shards can't run.

    ``features`` maps a human-readable flag name to its value; any truthy
    value is an unsupported combination. Used by the CLI and the runner
    so every entry point rejects the same set the same way.

    The set has shrunk to mid-run checkpointing: ``--telemetry``,
    ``--trace-out`` and ``--intervals-out`` are now supported under
    ``--shards`` (barrier-merged; see :mod:`repro.shard.telemetry`), and
    the error says so to catch stale muscle memory.
    """
    if plan is None:
        return
    offending = sorted(name for name, value in features.items() if value)
    if offending:
        raise ShardConfigError(
            f"--shards cannot be combined with: {', '.join(offending)} "
            "(lane state cannot be checkpointed between epoch barriers; "
            "drop --shards or the conflicting flags — note that "
            "--telemetry/--trace-out/--intervals-out ARE supported under "
            "--shards now)",
            details={"unsupported": offending, "shards": plan.num_shards},
        )
