"""Per-SM memory proxy: defers boundary traffic into an ordered log.

Inside a shard, each :class:`~repro.sm.pipeline.SMCore` talks to a
:class:`ShardMemoryProxy` instead of the shared
:class:`~repro.mem.subsystem.MemorySubsystem`. Everything SM-private
(the L1, hit wake-ups, latency accounting) is served locally and
immediately; everything that would touch the shared L2/DRAM — L1 misses,
prefetch fills, write-through stores — is appended to the boundary log
as ``(cycle, sm_id, seq, kind, line_addr)`` and resolved by the parent
at the next epoch barrier.

The per-SM ``seq`` counter preserves program order, so sorting the
merged log by ``(cycle, sm_id, seq)`` reproduces exactly the order in
which the serial engine's tick loop (SM 0..N-1, program order within an
SM) would have presented the same requests to the L2.

This relies on a load-bearing property of the L1: callers ignore the
:data:`~repro.mem.cache.MissForwarder` return value, and fill data only
ever arrives through :meth:`~repro.mem.cache.L1Cache.fill` events — so a
miss can be forwarded *later* without the issuing SM observing anything
until its fill event lands.
"""

from __future__ import annotations

from repro.config import GPUConfig
from repro.mem.cache import L1Cache, MissForwarder
from repro.mem.subsystem import EventQueue, _L1FillEvent
from repro.stats.counters import SimStats

#: Boundary request kinds (log entry field 3).
REQ_MISS = 0
REQ_PREFETCH = 1
REQ_STORE = 2

#: One log entry: (cycle, sm_id, seq, kind, line_addr).
BoundaryEntry = tuple[int, int, int, int, int]


class _ShardMissForwarder(MissForwarder):
    """Per-L1 miss path into the boundary log (picklable MissForwarder)."""

    __slots__ = ("proxy",)

    def __init__(self, proxy: "ShardMemoryProxy"):
        self.proxy = proxy

    def __call__(self, line_addr: int, now: int, is_prefetch: bool) -> int:
        return self.proxy.forward_miss(line_addr, now, is_prefetch)


class ShardMemoryProxy:  # simlint: boundary[per-shard deferred L2/DRAM exchange: drained serially at epoch barriers]
    """One SM's stand-in for the memory subsystem inside a shard.

    Mirrors the :class:`~repro.mem.subsystem.MemorySubsystem` surface the
    SM pipeline touches (``events``, ``store``, ``record_hit_latency``)
    plus the L1 miss forwarder, but owns only SM-private state: a local
    event queue, the boundary log, and the in-flight boundary count.
    """

    __slots__ = ("sm_id", "events", "log", "pending", "recorder", "_stats",
                 "_line_size", "_seq", "_l1")

    def __init__(self, sm_id: int, config: GPUConfig, stats: SimStats):
        self.sm_id = sm_id
        #: SM-local time-ordered events: hit wake-ups and delivered fills.
        self.events = EventQueue()
        #: Boundary requests accumulated since the last barrier.
        self.log: list[BoundaryEntry] = []
        #: Misses forwarded but not yet answered by a barrier delivery.
        self.pending = 0
        #: Event-capturing lane telemetry recorder, when tracing under
        #: shards (see repro.shard.telemetry); None costs one identity test.
        self.recorder = None
        self._stats = stats
        self._line_size = config.l1.line_size
        self._seq = 0
        self._l1: "L1Cache | None" = None

    def attach_l1(self, l1: L1Cache) -> None:
        """Bind the lane's L1 (constructed after the proxy; see ShardLane)."""
        self._l1 = l1

    # ------------------------------------------------------------------
    # MemorySubsystem surface used by the SM pipeline
    # ------------------------------------------------------------------

    def forward_miss(self, line_addr: int, now: int, is_prefetch: bool) -> int:
        """Log an L1 miss for barrier replay; the fill arrives as an event.

        The returned cycle is a placeholder — the L1's callers ignore it,
        and the authoritative fill time is computed when the parent
        replays the log through the shared L2/DRAM.
        """
        kind = REQ_PREFETCH if is_prefetch else REQ_MISS
        self.log.append((now, self.sm_id, self._seq, kind, line_addr))
        recorder = self.recorder
        if recorder is not None:
            # Reserve the fill's serial schedule tag and leave a boundary
            # marker where the shared-side L2/DRAM events belong.
            recorder.on_forward(self._seq)
        self._seq += 1
        self.pending += 1
        return -1

    def record_hit_latency(self, latency: int) -> None:
        """Fold L1 hits into the average-latency metric (Figure 13)."""
        self._stats.memory.demand_latency_sum += latency
        self._stats.memory.demand_latency_count += 1

    def record_latency(self, issue_cycle: int, done_cycle: int) -> None:
        """Demand-miss latency sink (the L1's ``stats_latency`` hook)."""
        self._stats.memory.demand_latency_sum += done_cycle - issue_cycle
        self._stats.memory.demand_latency_count += 1

    def store(self, sm_id: int, line_addrs: list[int], now: int) -> None:
        """Write-through stores: invalidate locally, log the L2 traffic."""
        l1 = self._l1
        assert l1 is not None
        log = self.log
        seq = self._seq
        for line in line_addrs:
            l1.store(line, now)
            log.append((now, sm_id, seq, REQ_STORE, line))
            seq += 1
        self._seq = seq

    # ------------------------------------------------------------------
    # Barrier side
    # ------------------------------------------------------------------

    def drain_log(self) -> list[BoundaryEntry]:
        """Hand the accumulated boundary log to the barrier and reset it."""
        log = self.log
        self.log = []
        return log

    def deliver_fill(self, line_addr: int, when: int) -> None:
        """Schedule one barrier-resolved fill into the local event queue."""
        self.events.schedule(when, _L1FillEvent(self._l1, line_addr))
        self.pending -= 1

    def pending_fill_events(self) -> int:
        """Locally scheduled fill events (lane invariant checks)."""
        return sum(
            1 for _, callback in self.events.iter_pending()
            if isinstance(callback, _L1FillEvent)
        )
