"""One SM's private execution context inside a shard.

A :class:`ShardLane` bundles an :class:`~repro.sm.pipeline.SMCore`, its
L1, its local event queue and its boundary proxy, and knows how to
simulate an epoch window ``[start, end)`` using only that private state.
Between barriers a lane never touches anything another lane can see —
the static isolation analysis (SL009) picks ``ShardLane.cycle`` up as a
per-SM call-graph root exactly like ``SMCore.cycle``.

Two window modes:

* **exact** (lock-step, ``epoch_cycles == 1``): a lane executes its
  core's ``cycle()`` whenever the core could do anything beyond counting
  an idle cycle (:meth:`SMCore.has_pending_work`). Skipped calls are
  provably pure ``idle_cycles`` increments, which the engine
  reconstructs arithmetically, so statistics stay bit-identical to the
  serial engine.
* **relaxed** (``epoch_cycles > 1``): the lane applies the serial
  engine's own advance rule *per SM* — cycle, and when nothing issued
  jump straight to the next local event or warp wake-up — instead of
  marching in lock-step with the other SMs. Issue timing is unaffected
  (a stalled warp can only become issuable through a local event or its
  own wake-up, both of which are jump targets), but tick-sensitive
  stall counters (``reservation_fails``, ``lsu_structural_stalls``)
  stop counting the ticks other SMs forced into the global schedule,
  so they drift from serial; the engine measures and reports that
  drift instead of hiding it.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.config import GPUConfig
from repro.errors import InvariantError
from repro.isa.program import KernelSpec
from repro.mem.cache import L1Cache
from repro.sm.pipeline import LoadObserver, SMCore
from repro.shard.proxy import ShardMemoryProxy, _ShardMissForwarder
from repro.stats.counters import SimStats

#: ``sleep_until`` sentinel: nothing local can ever wake this lane — only
#: a barrier-delivered fill can (the worker clears the sleep on delivery).
WAIT_FOR_BARRIER = 1 << 62


class ShardLane:
    """One SM plus its private L1, event queue and boundary proxy."""

    __slots__ = ("sm_id", "core", "l1", "proxy", "events", "quiesced_at",
                 "sleep_until", "scheduler", "prefetcher", "recorder")

    def __init__(
        self,
        sm_id: int,
        kernel: KernelSpec,
        config: GPUConfig,
        engine_factory,
        stats: SimStats,
        load_observers: Sequence[LoadObserver] = (),
        recorder=None,
    ):
        scheduler, prefetcher = engine_factory()
        self.scheduler = scheduler
        self.prefetcher = prefetcher
        proxy = ShardMemoryProxy(sm_id, config, stats)
        l1 = L1Cache(config.l1, stats.l1, _ShardMissForwarder(proxy))
        l1.stats_latency = proxy.record_latency
        proxy.attach_l1(l1)
        self.recorder = recorder
        if recorder is not None and recorder.events:
            # Event capture: swap in the tag-recording queue *before* the
            # core is built and give the proxy the marker hook. The
            # pipeline reads ``subsystem.events`` dynamically per call,
            # so the swap is transparent to it.
            from repro.shard.telemetry import _RecordingEventQueue
            proxy.events = _RecordingEventQueue(recorder)
            proxy.recorder = recorder
        core = SMCore(
            sm_id, config, kernel, scheduler, prefetcher, l1, proxy, stats
        )
        core.load_observers.extend(load_observers)
        if recorder is not None:
            core.attach_telemetry(recorder)
        self.sm_id = sm_id
        self.core = core
        self.l1 = l1
        self.proxy = proxy
        self.events = proxy.events
        #: First cycle at which this lane was finished with an empty queue
        #: and nothing in flight at the boundary; ``None`` while running.
        self.quiesced_at: Optional[int] = None
        #: Earliest cycle at which this lane has anything to do again, set
        #: when a window exits with no work left before its end. ``None``
        #: means the lane must run in the next window. Lets the worker
        #: skip stalled lanes without even entering :meth:`run_window`
        #: (pure idle; reconstructed arithmetically by the engine).
        self.sleep_until: Optional[int] = None

    # ------------------------------------------------------------------
    # Cycle path (effect-analysis root, mirroring SMCore.cycle)
    # ------------------------------------------------------------------

    def cycle(self, now: int) -> bool:
        """Advance this lane one cycle: drain due local events, then the core."""
        recorder = self.recorder
        if recorder is not None:
            recorder.begin_tick(now)
        self.events.run_until(now)
        return self.core.cycle(now)

    def run_window(self, start: int, end: int, exact: bool) -> bool:
        """Simulate ``[start, end)`` locally; True if an instruction issued.

        Only visits *interesting* cycles: issue ticks step by one, idle
        stretches jump straight to the next local event or warp wake-up.
        Skipped cycles are pure idle (reconstructed arithmetically by the
        engine), so no per-cycle work is done for stalled or finished SMs
        — the core of the sharded engine's single-run speedup.
        """
        core = self.core
        q = self.events
        recorder = self.recorder
        issued_any = False
        self.sleep_until = None
        t = start
        while t < end:
            if recorder is not None:
                recorder.begin_tick(t)
            q.run_until(t)
            # Cycle only when the core could do more than count idle: a
            # skipped call is a pure ``idle_cycles`` increment (lock-step
            # exactness relies on this; relaxed mode reconstructs idle
            # arithmetically anyway). Event-only ticks — e.g. a fill for
            # a load with other lines still outstanding — stay cheap,
            # and the same scan yields the wake hint for the jump below.
            execute, whint = core.pending_work_or_hint(t)
            issued = execute and core.cycle(t)
            if recorder is not None and not execute:
                # The core's telemetry hooks never ran this tick; record
                # the idle classification ourselves (the replay queue is
                # empty here, so MSHR gating is impossible).
                recorder.record_inert(t, core)
            if issued:
                issued_any = True
            # Quiescence is checked on every visited tick — including the
            # tick of the final issue — matching the serial engine's
            # finish check, which runs right after cycling the SMs.
            if (
                core.done
                and not len(q)
                and not self.proxy.pending
            ):
                self.quiesced_at = t
                break
            if issued:
                t += 1
                continue
            nxt = q.next_event_cycle
            if execute and (nxt is None or nxt > t + 1):
                # Cycled without issuing (scheduler throttle or LSU
                # gate): the combined scan stopped early, so compute the
                # hint now — unless an event is due next cycle anyway (a
                # warp hint is always ``> t`` and cannot lower the jump
                # target). Relaxed mode skips wake-ups that could only
                # charge LSU structural stalls; lock-step visits them to
                # keep the tick-accurate counters.
                whint = (
                    core.next_wake_hint(t) if exact
                    else core.next_issuable_hint(t)
                )
            if whint is not None and (nxt is None or whint < nxt):
                nxt = whint
            # The sleep latch may only persist across windows when the
            # lane is provably inert (lock-step: has_pending_work False,
            # so every skipped call is a pure idle increment). A lane
            # that cycled without issuing is charging stall counters and
            # must keep running tick by tick in lock-step mode.
            can_latch = not exact or not execute
            if nxt is None:
                # Only a barrier-delivered fill can wake this lane now
                # (in-flight boundary miss); the worker clears the sleep
                # when the delivery arrives.
                if can_latch:
                    self.sleep_until = WAIT_FOR_BARRIER
                break
            if nxt >= end:
                if can_latch:
                    self.sleep_until = nxt
                break
            t = nxt if nxt > t else t + 1
        return issued_any

    # ------------------------------------------------------------------
    # Barrier-side introspection
    # ------------------------------------------------------------------

    def wake_hint(self, now: int) -> Optional[int]:
        """Earliest future cycle with local work (events or warp wake-ups)."""
        wake = self.events.next_event_cycle
        hint = self.core.next_wake_hint(now)
        if hint is not None and (wake is None or hint < wake):
            wake = hint
        return wake

    def check_invariants(self, now: int) -> None:
        """Lane-level conservation: MSHRs vs local fills + boundary flight.

        The serial subsystem requires every live MSHR entry to have a
        pending fill event; in a shard the fill may instead still be in
        flight at the boundary (requested, not yet delivered), so the
        conserved quantity is their sum.
        """
        self.core.check_invariants(now)
        live = len(self.l1.mshrs)
        accounted = self.proxy.pending_fill_events() + self.proxy.pending
        if live != accounted:
            raise InvariantError(
                f"lane {self.sm_id}: {live} live MSHR entries but "
                f"{self.proxy.pending_fill_events()} local fill events + "
                f"{self.proxy.pending} boundary-pending misses",
                details={
                    "cycle": now,
                    "sm": self.sm_id,
                    "invariant": "lane MSHR/fill conservation",
                    "live_mshrs": live,
                    "boundary_pending": self.proxy.pending,
                },
            )

    def describe(self) -> dict:
        """JSON-ready lane snapshot (diagnostic dumps)."""
        info = self.core.describe()
        info["quiesced_at"] = self.quiesced_at
        info["boundary_pending"] = self.proxy.pending
        info["local_events"] = len(self.events)
        return info
