"""SAP: Scheduling Aware Prefetching (Section IV-B).

SAP fires only when a grouped load *misses* L1. The Prefetch Table (PT)
keeps, per static load PC, the warp ID and address of the load's previous
execution plus the stride computed from the two most recent executions.
The inter-warp stride is re-computed for the current miss; only if it
confirms the stored value does SAP generate one prefetch per other warp in
the group at ``miss_addr + (warp_delta * stride)``. The prefetched warp IDs
are fed back to LAWS so those warps are prioritised — the demand either
merges into the prefetch's MSHR entry or hits the freshly filled line
before contention can evict it.

In addition to the paper's inter-warp group prefetch, this implementation
runs a *per-warp* stream detector (the per-warp stride half of Lee et
al.'s many-thread-aware prefetcher, which the paper's SAP subsumes): when
the issuing warp's own stride through a static load repeats, its next
addresses are prefetched ahead of the warp's dependent-issue stalls. See
DESIGN.md for why this extension is needed in this substrate.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from repro.config import APRESConfig
from repro.core.laws import LAWSScheduler
from repro.mem.request import LoadAccess
from repro.prefetch.base import Prefetcher, PrefetchCandidate
from repro.telemetry.events import SAPDecisionEvent


@dataclass
class PTEntry:
    """Prefetch Table entry: PC-keyed load history (Figure 9)."""

    last_warp: int
    last_addr: int
    stride: Optional[int] = None


class SAPPrefetcher(Prefetcher):
    """Group-targeted inter-warp stride prefetcher coupled to LAWS."""

    name = "sap"

    def __init__(
        self,
        laws: LAWSScheduler,
        apres_config: APRESConfig | None = None,
        self_degree: int = 2,
        stream_entries: int = 256,
    ):
        super().__init__()
        cfg = apres_config or APRESConfig()
        self._laws = laws
        self._pt_capacity = cfg.pt_entries
        self._wq_capacity = cfg.wq_entries
        self._drq_capacity = cfg.drq_entries
        self._pt: OrderedDict[int, PTEntry] = OrderedDict()
        #: Per-(PC, warp) stream detector for self-prefetch.
        self._self_degree = self_degree
        self._stream_capacity = stream_entries
        self._streams: OrderedDict[tuple[int, int], PTEntry] = OrderedDict()

    def reset(self, num_warps: int) -> None:
        self._pt.clear()
        self._streams.clear()

    def observe_load(self, access: LoadAccess) -> list[PrefetchCandidate]:
        if access.primary_hit:
            return []
        self.events += 1
        group = self._laws.take_pending_group(access)
        out = self._self_prefetch(access)
        out.extend(self._group_prefetch(access, group))
        return out

    def _group_prefetch(
        self, access: LoadAccess, group: Optional[frozenset[int]]
    ) -> list[PrefetchCandidate]:
        """The paper's inter-warp prefetch for the missed group (Figure 9)."""
        entry = self._pt.get(access.pc)
        if entry is None:
            self._insert(access.pc, PTEntry(access.warp_id, access.primary_addr))
            return []
        self._pt.move_to_end(access.pc)

        if access.warp_id == entry.last_warp:
            # Re-execution by the same warp: the warp-ID-normalised stride
            # is undefined (Section III-B divides by the warp-ID delta), so
            # the entry keeps its anchor and no prefetch fires.
            return []
        stride = self._interwarp_stride(entry, access)
        confirmed = stride is not None and stride == entry.stride and stride != 0
        if stride is not None:
            entry.stride = stride
        entry.last_warp = access.warp_id
        entry.last_addr = access.primary_addr
        if not confirmed or not group:
            self._emit_decision(access, stride, confirmed, 0)
            return []

        # The Demand Request Queue holds only the lowest-thread request of
        # the missing warp; one prefetch is generated per other group member.
        targets = [w for w in sorted(group) if w != access.warp_id]
        targets = targets[: min(self._wq_capacity, self._drq_capacity)]
        assert entry.stride is not None
        self._emit_decision(access, stride, confirmed, len(targets))
        return [
            PrefetchCandidate(
                access.primary_addr + (w - access.warp_id) * entry.stride,
                target_warp=w,
            )
            for w in targets
        ]

    def _emit_decision(
        self, access: LoadAccess, stride: Optional[int], confirmed: bool, num_targets: int
    ) -> None:
        tel = self.telemetry
        if tel is not None and tel.events:
            tel.emit(SAPDecisionEvent(
                cycle=access.cycle,
                sm=tel.sm_id,
                pc=access.pc,
                stride=stride,
                confirmed=confirmed,
                num_targets=num_targets,
            ))

    def _self_prefetch(self, access: LoadAccess) -> list[PrefetchCandidate]:
        """Per-warp stream prefetch along the issuing warp's own stride."""
        key = (access.pc, access.warp_id)
        entry = self._streams.get(key)
        if entry is None:
            if len(self._streams) >= self._stream_capacity:
                self._streams.popitem(last=False)
            self._streams[key] = PTEntry(access.warp_id, access.primary_addr)
            return []
        self._streams.move_to_end(key)
        stride = access.primary_addr - entry.last_addr
        confirmed = stride == entry.stride and stride != 0
        entry.stride = stride
        entry.last_addr = access.primary_addr
        if not confirmed:
            return []
        return [
            PrefetchCandidate(
                access.primary_addr + k * stride, target_warp=access.warp_id
            )
            for k in range(1, self._self_degree + 1)
        ]

    def _interwarp_stride(self, entry: PTEntry, access: LoadAccess) -> Optional[int]:
        """Stride per warp-ID step between the two most recent executions."""
        delta = access.primary_addr - entry.last_addr
        warp_delta = access.warp_id - entry.last_warp
        if delta % warp_delta:
            return None
        return delta // warp_delta

    def _insert(self, pc: int, entry: PTEntry) -> None:
        if self._pt_capacity <= 0:
            return  # table disabled (ablations)
        if len(self._pt) >= self._pt_capacity:
            self._pt.popitem(last=False)
        self._pt[pc] = entry

    def stride_for(self, pc: int) -> Optional[int]:
        """Currently tracked stride of a static load (diagnostics/tests)."""
        entry = self._pt.get(pc)
        return entry.stride if entry else None
