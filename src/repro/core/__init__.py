"""APRES: the paper's contribution — LAWS scheduling + SAP prefetching."""

from repro.core.apres import APRESPair, build_apres
from repro.core.cost import HardwareCost, hardware_cost
from repro.core.laws import LAWSScheduler
from repro.core.llt import LastLoadTable
from repro.core.sap import SAPPrefetcher
from repro.core.wgt import WarpGroupTable

__all__ = [
    "APRESPair",
    "build_apres",
    "HardwareCost",
    "hardware_cost",
    "LAWSScheduler",
    "LastLoadTable",
    "SAPPrefetcher",
    "WarpGroupTable",
]
