"""LAWS: Locality Aware Warp Scheduler (Section IV-A).

LAWS keeps warps in a priority queue and always issues the first ready
warp from the head — an advanced greedy policy that naturally runs a small
leading pack. Warps that last issued the *same* static load (equal LLPC in
the Last Load Table) form a group: they will execute the next load at the
same PC soon, and static loads behave consistently across warps
(Section III-B). When a grouped load's outcome arrives from the LSU:

* **hit** — the load has locality; the whole group is moved to the queue
  head so its members access the (still-resident) lines back to back;
* **miss** — the load is streaming; the group is moved to the tail, and
  the group is handed to SAP, which may prefetch the other members' lines.
  Warps that received a prefetch are then promoted to the head so their
  demands merge into the prefetch MSHRs or hit the prefetched lines.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.config import APRESConfig
from repro.core.llt import LastLoadTable
from repro.core.wgt import WarpGroupTable
from repro.mem.request import LoadAccess
from repro.sched.base import IssueCandidate, WarpScheduler
from repro.telemetry.events import SchedGroupEvent


class LAWSScheduler(WarpScheduler):
    """Priority-queue warp scheduling driven by per-load cache outcomes."""

    name = "laws"

    def __init__(self, apres_config: APRESConfig | None = None):
        super().__init__()
        self._apres_config = apres_config or APRESConfig()
        self._queue: list[int] = []
        self._llt = LastLoadTable(1)
        self._wgt = WarpGroupTable(self._apres_config.wgt_entries, 1)
        self._pending_group: Optional[tuple[frozenset[int], LoadAccess]] = None
        self._finished: set[int] = set()

    def reset(self, num_warps: int) -> None:
        super().reset(num_warps)
        self._queue = list(range(num_warps))
        self._llt = LastLoadTable(num_warps)
        self._wgt = WarpGroupTable(self._apres_config.wgt_entries, num_warps)
        self._pending_group = None
        self._finished = set()

    # ------------------------------------------------------------------
    # Queue manipulation
    # ------------------------------------------------------------------

    @property
    def queue(self) -> tuple[int, ...]:
        """Current priority order (head first); exposed for tests."""
        return tuple(self._queue)

    def _move_to_head(self, warps: frozenset[int]) -> None:
        picked = [w for w in self._queue if w in warps]
        rest = [w for w in self._queue if w not in warps]
        self._queue = picked + rest
        self.events += 1

    def _move_to_tail(self, warps: frozenset[int], last: Optional[int] = None) -> None:
        """Demote a group; ``last`` (the warp that just missed — the most
        stalled member) goes to the very end, which keeps selection
        rotating fairly when one group spans the whole pool."""
        picked = [w for w in self._queue if w in warps and w != last]
        rest = [w for w in self._queue if w not in warps]
        self._queue = rest + picked
        if last is not None and last in warps:
            self._queue.append(last)
        self.events += 1

    # ------------------------------------------------------------------
    # Scheduler interface
    # ------------------------------------------------------------------

    def select(self, candidates: Sequence[IssueCandidate], cycle: int) -> Optional[int]:
        if not candidates:
            return None
        ready = {c.warp_id for c in candidates}
        for wid in self._queue:
            if wid in ready:
                return wid
        return None

    def notify_load_result(self, access: LoadAccess) -> None:
        """LSU feedback: form the group, then prioritise it by outcome."""
        wid = access.warp_id
        llpc = self._llt.get(wid)
        members = [
            w for w in self._llt.warps_with_llpc(llpc) if w not in self._finished
        ]
        group = frozenset(members) | {wid}
        self._llt.update(wid, access.pc)
        gid = self._wgt.insert(group)
        self.events += 1

        stored = self._wgt.invalidate(gid)
        if stored is None:
            # Evicted by WGT pressure before the outcome arrived; no action.
            return
        if access.primary_hit:
            self._move_to_head(stored)
            self._pending_group = None
        else:
            self._move_to_tail(stored, last=wid)
            self._pending_group = (stored, access)
        tel = self.telemetry
        if tel is not None and tel.events:
            tel.emit(SchedGroupEvent(
                cycle=access.cycle,
                sm=tel.sm_id,
                action="head" if access.primary_hit else "tail",
                warps=tuple(sorted(stored)),
            ))

    def take_pending_group(self, access: LoadAccess) -> Optional[frozenset[int]]:
        """Hand the missed group to SAP (one-shot, matched to the access)."""
        if self._pending_group is None:
            return None
        group, pending_access = self._pending_group
        if pending_access is not access:
            return None
        self._pending_group = None
        return group

    def notify_prefetch_targets(self, target_warps: Sequence[int]) -> None:
        if target_warps:
            self._move_to_head(frozenset(target_warps))

    def notify_warp_finished(self, warp_id: int) -> None:
        self._finished.add(warp_id)

    # Diagnostics -------------------------------------------------------

    def llpc_of(self, warp_id: int) -> Optional[int]:
        return self._llt.get(warp_id)
