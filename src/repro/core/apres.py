"""APRES = LAWS + SAP, wired together (Figure 5)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import APRESConfig
from repro.core.laws import LAWSScheduler
from repro.core.sap import SAPPrefetcher


@dataclass(frozen=True)
class APRESPair:
    """A LAWS scheduler and the SAP prefetcher coupled to it."""

    scheduler: LAWSScheduler
    prefetcher: SAPPrefetcher

    @property
    def events(self) -> int:
        """Total bookkeeping events (for the energy model)."""
        return self.scheduler.events + self.prefetcher.events


def build_apres(apres_config: APRESConfig | None = None) -> APRESPair:
    """Construct a coupled LAWS+SAP pair.

    The pair must be used together in one SM: SAP pulls the missed warp
    group out of LAWS, and the pipeline routes SAP's target-warp feedback
    back into LAWS via ``notify_prefetch_targets``.
    """
    cfg = apres_config or APRESConfig()
    laws = LAWSScheduler(cfg)
    sap = SAPPrefetcher(laws, cfg)
    return APRESPair(laws, sap)
