"""Hardware-cost model for APRES (Table II).

The paper accounts storage per SM: LAWS needs the Last Load Table and Warp
Group Table; SAP needs the Demand Request Queue, Warp Queue and Prefetch
Table. With the default geometry this reproduces Table II's 724 bytes and
the 2.06%-of-L1 figure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import APRESConfig, CacheConfig

#: Structure field widths in bytes (Table II).
LLT_ENTRY_BYTES = 4  # one PC
DRQ_ENTRY_BYTES = 8  # one memory address
WQ_ENTRY_BYTES = 1  # one warp ID
PT_ENTRY_BYTES = 4 + 1 + 8 + 8  # PC + warp ID + address + stride


@dataclass(frozen=True)
class HardwareCost:
    """Per-SM storage cost breakdown in bytes."""

    llt_bytes: int
    wgt_bytes: int
    drq_bytes: int
    wq_bytes: int
    pt_bytes: int

    @property
    def laws_bytes(self) -> int:
        return self.llt_bytes + self.wgt_bytes

    @property
    def sap_bytes(self) -> int:
        return self.drq_bytes + self.wq_bytes + self.pt_bytes

    @property
    def total_bytes(self) -> int:
        return self.laws_bytes + self.sap_bytes

    def fraction_of_cache(self, cache: CacheConfig) -> float:
        """Storage relative to the L1 data array (the paper reports ~2.06%,
        which includes tag/peripheral overheads from CACTI; the raw data
        ratio is slightly lower)."""
        return self.total_bytes / cache.size_bytes


def hardware_cost(config: APRESConfig | None = None, max_warps: int = 48) -> HardwareCost:
    """Compute Table II for a given APRES geometry."""
    cfg = config or APRESConfig()
    wgt_bits = cfg.wgt_entries * max_warps  # one bit per warp per entry
    return HardwareCost(
        llt_bytes=LLT_ENTRY_BYTES * max_warps,
        wgt_bytes=(wgt_bits + 7) // 8,
        drq_bytes=DRQ_ENTRY_BYTES * cfg.drq_entries,
        wq_bytes=WQ_ENTRY_BYTES * cfg.wq_entries,
        pt_bytes=PT_ENTRY_BYTES * cfg.pt_entries,
    )
