"""Last Load Table (Section IV-A).

One entry per warp holding the PC of the last long-latency (global) load
that warp issued. Warps sharing the same LLPC executed the same load last,
so — since warps run the same kernel code — they are expected to execute
the *next* load at roughly the same point soon. That is the grouping signal
LAWS uses.
"""

from __future__ import annotations

from typing import Optional


class LastLoadTable:
    """Warp-indexed table of last-load PCs."""

    def __init__(self, num_warps: int):
        if num_warps < 1:
            raise ValueError("LLT needs at least one warp")
        self._llpc: list[Optional[int]] = [None] * num_warps

    def __len__(self) -> int:
        return len(self._llpc)

    def get(self, warp_id: int) -> Optional[int]:
        """LLPC of a warp; ``None`` until the warp issues its first load."""
        return self._llpc[warp_id]

    def update(self, warp_id: int, pc: int) -> None:
        self._llpc[warp_id] = pc

    def warps_with_llpc(self, llpc: Optional[int]) -> list[int]:
        """All warps whose LLPC matches (the group-formation search)."""
        return [w for w, pc in enumerate(self._llpc) if pc == llpc]
