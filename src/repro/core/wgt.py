"""Warp Group Table (Section IV-A).

Each entry is a warp bit-vector naming one in-flight group. The paper sizes
the WGT at 3 entries — the number of pipeline stages between issue and
execute — so every in-flight load can have its group parked until the
cache outcome arrives. Entries are invalidated once the group has been
prioritised.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from typing import Optional


class WarpGroupTable:
    """Fixed-capacity table of warp groups, FIFO replacement."""

    def __init__(self, num_entries: int, num_warps: int):
        if num_entries < 1:
            raise ValueError("WGT needs at least one entry")
        self._capacity = num_entries
        self._num_warps = num_warps
        self._entries: OrderedDict[int, frozenset[int]] = OrderedDict()
        self._ids = itertools.count()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def capacity(self) -> int:
        return self._capacity

    def insert(self, warps: frozenset[int]) -> int:
        """Store a group; returns its id. Oldest entry is dropped when full."""
        bad = sorted(w for w in warps if not 0 <= w < self._num_warps)
        if bad:
            raise ValueError(f"warp ids out of range: {bad}")
        if len(self._entries) >= self._capacity:
            self._entries.popitem(last=False)
        gid = next(self._ids)
        self._entries[gid] = warps
        return gid

    def lookup(self, group_id: int) -> Optional[frozenset[int]]:
        return self._entries.get(group_id)

    def invalidate(self, group_id: int) -> Optional[frozenset[int]]:
        """Remove and return a group (after its prioritisation is applied)."""
        return self._entries.pop(group_id, None)
