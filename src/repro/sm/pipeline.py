"""One SM's issue pipeline.

Each cycle the SM issues at most one warp-instruction, chosen by the
scheduler. Loads are coalesced into line requests and sent to the L1; if
the L1 runs out of MSHRs mid-load the remaining requests enter a replay
queue that blocks further memory issue (a structural hazard) until they
commit. The LSU reports each load's primary outcome back to the scheduler
(the signal LAWS acts on) and to the prefetcher, whose candidates are
issued into the L1 as prefetch fills.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from repro.config import GPUConfig
from repro.isa.instructions import Instr, Op
from repro.isa.program import KernelSpec
from repro.mem.cache import AccessOutcome, L1Cache
from repro.mem.request import LoadAccess
from repro.mem.subsystem import MemorySubsystem
from repro.prefetch.base import Prefetcher
from repro.sched.base import IssueCandidate, WarpScheduler
from repro.sm.warp import WarpContext
from repro.stats.counters import SimStats
from repro.telemetry.events import (
    LoadIssueEvent,
    LoadOutcomeEvent,
    MemCompleteEvent,
    PrefetchDropEvent,
    PrefetchIssueEvent,
    SchedGroupEvent,
    WarpIssueEvent,
)

#: Observer invoked for every executed load: ``fn(access, line_hits)``.
LoadObserver = Callable[[LoadAccess, list[bool]], None]


class _WarpMemDone:
    """Completion callback for one of a warp's line requests.

    A module-level callable (not a closure) so MSHR callback lists and the
    event queue stay picklable for checkpointing.
    """

    __slots__ = ("sm", "warp")

    def __init__(self, sm: "SMCore", warp: WarpContext):
        self.sm = sm
        self.warp = warp

    def __call__(self, when: int) -> None:
        self.sm._mem_done(self.warp, when)


class _PendingLoad:
    """A load whose line requests have not all been accepted by the L1."""

    __slots__ = ("warp", "pc", "primary_addr", "remaining", "line_addrs", "line_hits")

    def __init__(
        self,
        warp: WarpContext,
        pc: int,
        primary_addr: int,
        remaining: deque[int],
        line_addrs: tuple[int, ...],
        line_hits: list[bool],
    ):
        self.warp = warp
        self.pc = pc
        self.primary_addr = primary_addr
        self.remaining = remaining
        self.line_addrs = line_addrs
        self.line_hits = line_hits


class SMCore:
    """Cycle-level model of one streaming multiprocessor."""

    __slots__ = (
        "sm_id",
        "_config",
        "_scheduler",
        "_prefetcher",
        "_l1",
        "_subsystem",
        "_stats",
        "warps",
        "_replay",
        "_is_mem_at",
        "_issue_latency",
        "_line_size",
        "_finished_warps",
        "mem_requests_issued",
        "mem_requests_completed",
        "load_observers",
        "_telemetry",
    )

    #: MSHR occupancy above which prefetches are dropped.
    PREFETCH_MSHR_LIMIT = 0.75
    #: Loads that can wait on MSHR reservation before memory issue blocks.
    LSU_QUEUE_DEPTH = 4

    def __init__(
        self,
        sm_id: int,
        config: GPUConfig,
        kernel: KernelSpec,
        scheduler: WarpScheduler,
        prefetcher: Prefetcher,
        l1: L1Cache,
        subsystem: MemorySubsystem,
        stats: SimStats,
    ):
        self.sm_id = sm_id
        self._config = config
        self._scheduler = scheduler
        self._prefetcher = prefetcher
        self._l1 = l1
        self._subsystem = subsystem
        self._stats = stats
        wave_stride = config.num_sms * config.max_warps_per_sm
        if not kernel.fresh_waves:
            wave_stride = 0
        self.warps = [
            WarpContext(w, sm_id * config.max_warps_per_sm + w, kernel, wave_stride)
            for w in range(config.max_warps_per_sm)
        ]
        self._replay: deque[_PendingLoad] = deque()
        self._is_mem_at = tuple(i.is_mem for i in kernel.body)
        # Hoisted config scalars: the cycle loop reads these every issue and
        # attribute chains through frozen dataclasses are comparatively slow.
        self._issue_latency = config.issue_latency
        self._line_size = config.l1.line_size
        #: Warps whose ``finished`` flag is set, so ``done`` is O(1).
        self._finished_warps = 0
        #: Line requests handed to the L1 / completed back, for the
        #: integrity layer's conservation check against warp.outstanding.
        self.mem_requests_issued = 0
        self.mem_requests_completed = 0
        self.load_observers: list[LoadObserver] = []
        #: Per-SM telemetry proxy; ``None`` (the default) keeps the issue
        #: loop's instrumentation to one identity test per cycle.
        self._telemetry = None
        scheduler.reset(len(self.warps))
        scheduler.attach_l1(l1)
        prefetcher.reset(len(self.warps))
        l1.eviction_listener = scheduler.notify_eviction

    def attach_telemetry(self, proxy) -> None:
        """Share one per-SM telemetry proxy with the engines and the L1."""
        self._telemetry = proxy
        self._scheduler.telemetry = proxy
        self._prefetcher.telemetry = proxy
        self._l1.telemetry = proxy

    # ------------------------------------------------------------------
    # Public state
    # ------------------------------------------------------------------

    @property
    def done(self) -> bool:
        return self._finished_warps == len(self.warps) and not self._replay

    def next_wake_hint(self, now: int) -> Optional[int]:
        """Earliest future cycle a warp becomes ready without an event.

        Warps stalled on memory (or loads parked in the replay queue) wake
        through fill events, so they contribute no hint.
        """
        hint: Optional[int] = None
        for w in self.warps:
            if w.finished or w.outstanding:
                continue
            if w.ready_at > now and (hint is None or w.ready_at < hint):
                hint = w.ready_at
        return hint

    def next_issuable_hint(self, now: int) -> Optional[int]:
        """Earliest wake-up that could actually *issue*, LSU permitting.

        Like :meth:`next_wake_hint`, but when the LSU replay queue is
        full, warps whose next instruction is a load/store are skipped:
        they cannot issue until a fill drains the queue, and fills arrive
        as events (which are jump targets of their own). Used by the
        sharded engine's relaxed mode to fast-forward past wake-ups that
        would only charge structural stalls; the serial engine and the
        lock-step mode keep using :meth:`next_wake_hint`, whose
        tick-accurate stall accounting they preserve.
        """
        if len(self._replay) < self.LSU_QUEUE_DEPTH:
            return self.next_wake_hint(now)
        hint: Optional[int] = None
        is_mem_at = self._is_mem_at
        for w in self.warps:
            if w.finished or w.outstanding or is_mem_at[w.pc_index]:
                continue
            if w.ready_at > now and (hint is None or w.ready_at < hint):
                hint = w.ready_at
        return hint

    def has_pending_work(self, now: int) -> bool:
        """True when :meth:`cycle` at ``now`` could do more than count idle.

        Exactly the condition under which ``cycle(now)`` mutates anything
        besides ``idle_cycles``: a parked load to retry, or a warp that
        enters the candidate scan (even if it only charges an LSU
        structural stall). The sharded engine's lock-step mode uses this
        to skip inert SMs while reproducing the serial engine's counters
        bit-for-bit.
        """
        if self._replay:
            return True
        for w in self.warps:
            if not w.finished and not w.outstanding and w.ready_at <= now:
                return True
        return False

    def pending_work_or_hint(self, now: int) -> tuple[bool, Optional[int]]:
        """``(has_pending_work(now), wake hint)`` in a single warp scan.

        The hint is only produced on the ``False`` branch (it is exactly
        :meth:`next_wake_hint`, and — the replay queue being empty —
        also :meth:`next_issuable_hint`); when there *is* pending work
        the scan stops early and the hint is ``None``. Saves the sharded
        lane a second full scan on event-only ticks.
        """
        if self._replay:
            return True, None
        hint: Optional[int] = None
        for w in self.warps:
            if w.finished or w.outstanding:
                continue
            ready_at = w.ready_at
            if ready_at <= now:
                return True, None
            if hint is None or ready_at < hint:
                hint = ready_at
        return False, hint

    # ------------------------------------------------------------------
    # Cycle loop
    # ------------------------------------------------------------------

    def cycle(self, now: int) -> bool:
        """Advance one cycle; returns True if an instruction was issued."""
        replay = self._replay
        if replay:
            self._process_replay(now)
        lsu_blocked = len(replay) >= self.LSU_QUEUE_DEPTH
        tel = self._telemetry
        stats = self._stats
        # Snapshot the structural-stall counter so the idle branch can tell
        # MSHR gating apart without any work inside the candidate loop.
        gate_base = stats.lsu_structural_stalls if tel is not None else 0

        candidates = []
        append = candidates.append
        is_mem_at = self._is_mem_at
        for w in self.warps:
            if w.finished or w.outstanding or w.ready_at > now:
                continue
            is_mem = is_mem_at[w.pc_index]
            if is_mem and lsu_blocked:
                stats.lsu_structural_stalls += 1
                continue
            append(IssueCandidate(w.warp_id, is_mem))
        if not candidates:
            stats.idle_cycles += 1
            if tel is not None:
                tel.on_idle(
                    self, now, stats.lsu_structural_stalls - gate_base
                )
            return False

        chosen = self._scheduler.select(candidates, now)
        if chosen is None:
            self._stats.idle_cycles += 1
            if tel is not None:
                tel.on_throttle(now)
            return False
        warp = self.warps[chosen]
        self._issue(warp, warp.current_instr, now)
        return True

    # ------------------------------------------------------------------
    # Issue paths
    # ------------------------------------------------------------------

    def _issue(self, warp: WarpContext, instr: Instr, now: int) -> None:
        stats = self._stats
        stats.instructions += 1
        tel = self._telemetry
        if tel is not None:
            tel.on_issue()
            if tel.events:
                if instr.op is Op.ALU:
                    dur = self._issue_latency
                elif instr.op is Op.STORE:
                    dur = 1
                else:
                    dur = None  # a load's span ends at its mem_complete
                tel.emit(
                    WarpIssueEvent(
                        cycle=now,
                        sm=self.sm_id,
                        warp=warp.warp_id,
                        pc=instr.pc,
                        op=instr.op.name,
                        dur=dur,
                    )
                )
        self._scheduler.notify_issue(warp.warp_id, instr.is_mem, now)
        if instr.op is Op.ALU:
            # ALU chains are dependent: the next same-warp issue waits.
            stats.alu_instructions += 1
            warp.ready_at = now + self._issue_latency
        elif instr.op is Op.STORE:
            # Stores retire into the write path without blocking the warp.
            stats.store_instructions += 1
            _, lines = instr.addr_gen.coalesced(
                warp.global_id, warp.iteration, self._line_size
            )
            self._subsystem.store(self.sm_id, lines, now)
            warp.ready_at = now + 1
        else:
            stats.load_instructions += 1
            self._issue_load(warp, instr, now)
        self._finish_instruction(warp)

    def _issue_load(self, warp: WarpContext, instr: Instr, now: int) -> None:
        addr_gen = instr.addr_gen
        assert addr_gen is not None
        primary, lines = addr_gen.coalesced(
            warp.global_id, warp.iteration, self._line_size
        )
        # Stall on use: the warp resumes when its last request returns.
        warp.outstanding += len(lines)
        self.mem_requests_issued += len(lines)
        warp.ready_at = now + 1
        tel = self._telemetry
        if tel is not None and tel.events:
            tel.emit(
                LoadIssueEvent(
                    cycle=now,
                    sm=self.sm_id,
                    warp=warp.warp_id,
                    pc=instr.pc,
                    primary_addr=primary,
                    num_lines=len(lines),
                )
            )
        pending = _PendingLoad(
            warp=warp,
            pc=instr.pc,
            primary_addr=primary,
            remaining=deque(lines),
            line_addrs=tuple(lines),
            line_hits=[],
        )
        self._drain_pending(pending, now)
        if pending.remaining:
            self._replay.append(pending)

    def _process_replay(self, now: int) -> None:
        """Retry stalled loads in order; a stuck head does not starve the rest."""
        for _ in range(len(self._replay)):
            pending = self._replay[0]
            self._drain_pending(pending, now)
            if pending.remaining:
                self._replay.rotate(-1)
            else:
                self._replay.popleft()

    def _drain_pending(self, pending: _PendingLoad, now: int) -> None:
        """Send line requests to L1 until done or a reservation fails."""
        warp = pending.warp
        while pending.remaining:
            line = pending.remaining[0]
            outcome, ready = self._l1.access(
                line, warp.warp_id, now, on_fill=_WarpMemDone(self, warp)
            )
            if outcome is AccessOutcome.STALL:
                return
            pending.remaining.popleft()
            hit = outcome is AccessOutcome.HIT
            pending.line_hits.append(hit)
            if hit:
                assert ready is not None
                self._subsystem.record_hit_latency(ready - now)
                self._subsystem.events.schedule(ready, _WarpMemDone(self, warp))
            if len(pending.line_hits) == 1:
                # Primary request committed: emit the LSU feedback.
                self._emit_load_feedback(pending, hit, now)
        # All lines committed; remaining per-line outcomes (for observers)
        # were accumulated as they went.
        if self.load_observers and len(pending.line_hits) == len(pending.line_addrs):
            access = LoadAccess(
                sm_id=self.sm_id,
                warp_id=warp.warp_id,
                pc=pending.pc,
                primary_addr=pending.primary_addr,
                line_addrs=pending.line_addrs,
                primary_hit=pending.line_hits[0],
                cycle=now,
            )
            for observer in self.load_observers:
                observer(access, list(pending.line_hits))

    def _emit_load_feedback(self, pending: _PendingLoad, primary_hit: bool, now: int) -> None:
        access = LoadAccess(
            sm_id=self.sm_id,
            warp_id=pending.warp.warp_id,
            pc=pending.pc,
            primary_addr=pending.primary_addr,
            line_addrs=pending.line_addrs,
            primary_hit=primary_hit,
            cycle=now,
        )
        tel = self._telemetry
        emit_events = tel is not None and tel.events
        if emit_events:
            tel.emit(
                LoadOutcomeEvent(
                    cycle=now,
                    sm=self.sm_id,
                    warp=access.warp_id,
                    pc=access.pc,
                    hit=primary_hit,
                )
            )
        self._scheduler.notify_load_result(access)
        candidates = self._prefetcher.observe_load(access)
        line_size = self._line_size
        targets = []
        for cand in candidates:
            line = cand.addr - (cand.addr % line_size)
            # Prefetches must not crowd out demand misses: leave MSHR
            # headroom (adaptive throttling, as both STR and SAP do).
            if self._l1.mshr_occupancy >= self.PREFETCH_MSHR_LIMIT:
                self._l1.stats.prefetch_dropped += 1
                if emit_events:
                    tel.emit(
                        PrefetchDropEvent(
                            cycle=now,
                            sm=self.sm_id,
                            line_addr=line,
                            reason="mshr_pressure",
                        )
                    )
                continue
            issued = self._l1.prefetch(line, now)
            if issued:
                if emit_events:
                    tel.emit(
                        PrefetchIssueEvent(
                            cycle=now,
                            sm=self.sm_id,
                            line_addr=line,
                            target_warp=cand.target_warp,
                        )
                    )
                if cand.target_warp is not None:
                    targets.append(cand.target_warp)
        if targets:
            self._scheduler.notify_prefetch_targets(targets)
            if emit_events:
                tel.emit(
                    SchedGroupEvent(
                        cycle=now,
                        sm=self.sm_id,
                        action="promote",
                        warps=tuple(targets),
                    )
                )

    def _mem_done(self, warp: WarpContext, when: int) -> None:
        warp.outstanding -= 1
        self.mem_requests_completed += 1
        if warp.outstanding < 0:
            raise AssertionError("memory completion underflow")
        if warp.outstanding == 0:
            warp.ready_at = max(warp.ready_at, when)
            tel = self._telemetry
            if tel is not None and tel.events:
                tel.emit(
                    MemCompleteEvent(cycle=when, sm=self.sm_id, warp=warp.warp_id)
                )
            self._scheduler.notify_mem_complete(warp.warp_id, when)

    def _finish_instruction(self, warp: WarpContext) -> None:
        warp.advance()
        if warp.finished:
            self._finished_warps += 1
            self._scheduler.notify_warp_finished(warp.warp_id)

    # ------------------------------------------------------------------
    # Integrity
    # ------------------------------------------------------------------

    def check_invariants(self, now: int) -> None:
        """Conservation checks over warp and request state (read-only).

        Raises :class:`InvariantError` with a structured snapshot on the
        first violation.
        """
        from repro.errors import InvariantError

        def violate(message: str) -> None:
            raise InvariantError(
                f"SM {self.sm_id} invariant violated at cycle {now}: {message}",
                details={"cycle": now, "invariant": message, "sm": self.describe()},
            )

        if len(self.warps) != self._config.max_warps_per_sm:
            violate(
                f"{len(self.warps)} warp contexts but "
                f"{self._config.max_warps_per_sm} were launched")
        finished = sum(1 for w in self.warps if w.finished)
        if finished != self._finished_warps:
            violate(
                f"finished-warp counter {self._finished_warps} disagrees with "
                f"{finished} warps whose finished flag is set")
        outstanding = 0
        for w in self.warps:
            if w.outstanding < 0:
                violate(f"warp {w.warp_id} outstanding count is negative "
                        f"({w.outstanding})")
            if w.finished and w.outstanding:
                violate(f"finished warp {w.warp_id} still has "
                        f"{w.outstanding} requests in flight")
            outstanding += w.outstanding
        in_flight = self.mem_requests_issued - self.mem_requests_completed
        if outstanding != in_flight:
            violate(
                f"warps report {outstanding} outstanding requests but "
                f"{self.mem_requests_issued} issued - "
                f"{self.mem_requests_completed} completed = {in_flight}")
        for pending in self._replay:
            if pending.warp.finished:
                violate(f"replay queue holds a load of finished warp "
                        f"{pending.warp.warp_id}")

    def describe(self) -> dict:
        """JSON-ready snapshot of this SM (watchdog/invariant diagnostics)."""
        return {
            "sm": self.sm_id,
            "done": self.done,
            "replay_depth": len(self._replay),
            "mem_requests_issued": self.mem_requests_issued,
            "mem_requests_completed": self.mem_requests_completed,
            "mshr_occupancy": self._l1.mshr_occupancy,
            "warps": [
                {
                    "warp": w.warp_id,
                    "pc_index": w.pc_index,
                    "iteration": w.iteration,
                    "wave": w.wave,
                    "ready_at": w.ready_at,
                    "outstanding": w.outstanding,
                    "finished": w.finished,
                }
                for w in self.warps
            ],
        }
