"""Per-warp architectural state."""

from __future__ import annotations

from repro.isa.instructions import Instr
from repro.isa.program import KernelSpec


class WarpContext:
    """Execution state of one warp.

    The warp stalls on use: a load blocks further issue from this warp
    until its last coalesced request returns (the next instruction consumes
    the value), which is what staggers warp progress on real GPUs and
    creates the prefetch window APRES exploits. ALU instructions carry the
    dependent-issue latency (8 cycles, Section IV).
    """

    __slots__ = (
        "warp_id",
        "global_id",
        "kernel",
        "pc_index",
        "iteration",
        "wave",
        "wave_stride",
        "ready_at",
        "outstanding",
        "finished",
    )

    def __init__(self, warp_id: int, global_id: int, kernel: KernelSpec,
                 wave_stride: int = 0):
        self.warp_id = warp_id
        self.global_id = global_id
        self.kernel = kernel
        self.pc_index = 0
        self.iteration = 0
        self.wave = 0
        #: Added to ``global_id`` on refill so each wave's warps get fresh,
        #: stride-consistent global IDs.
        self.wave_stride = wave_stride
        self.ready_at = 0
        self.outstanding = 0
        self.finished = False

    @property
    def current_instr(self) -> Instr:
        return self.kernel.body[self.pc_index]

    def is_ready(self, now: int) -> bool:
        return not self.finished and self.outstanding == 0 and self.ready_at <= now

    def advance(self) -> None:
        """Retire the current instruction pointer, refilling across waves."""
        self.pc_index += 1
        if self.pc_index < len(self.kernel.body):
            return
        self.pc_index = 0
        self.iteration += 1
        if self.iteration < self.kernel.iterations:
            return
        self.iteration = 0
        self.wave += 1
        if self.wave < self.kernel.waves:
            # Occupancy refill: the slot picks up the next thread block.
            self.global_id += self.wave_stride
        else:
            self.finished = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WarpContext(id={self.warp_id}, iter={self.iteration}/"
            f"{self.kernel.iterations}, pc_index={self.pc_index}, "
            f"outstanding={self.outstanding}, finished={self.finished})"
        )
