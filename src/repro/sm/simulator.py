"""Whole-GPU simulator: N SMs over a shared memory subsystem.

The main loop is cycle-driven with event-queue fast-forwarding: when every
SM is stalled (all warps waiting on memory or dependent-issue delays) the
clock jumps straight to the next wake-up, which makes memory-bound phases
cheap to simulate without changing any observable timing.

The loop is resumable: all progress lives in instance state (``_now`` and
the component objects), so a run can be paused with :meth:`step_until`,
serialised with :meth:`snapshot`, and continued bit-identically after
:meth:`restore` — the foundation of the crash-safe sweep runner. The
integrity layer (invariant guards, watchdog; see :mod:`repro.integrity`)
hooks into every tick but is read-only, so enabling it never changes
simulated timing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.config import GPUConfig
from repro.errors import InvariantError, SimulationError
from repro.integrity.checkpoint import dump_simulator, load_simulator, save_checkpoint
from repro.integrity.invariants import InvariantChecker
from repro.integrity.watchdog import Watchdog
from repro.isa.program import KernelSpec
from repro.mem.subsystem import MemorySubsystem
from repro.prefetch.base import Prefetcher
from repro.sched.base import WarpScheduler
from repro.sm.pipeline import LoadObserver, SMCore
from repro.stats.counters import SimStats
from repro.telemetry.hub import TelemetryHub

#: Builds one (scheduler, prefetcher) pair per SM. APRES couples the two,
#: which is why they are constructed together.
EngineFactory = Callable[[], tuple[WarpScheduler, Prefetcher]]


@dataclass(slots=True)
class SimulationResult:
    """Outcome of one simulation run."""

    stats: SimStats
    #: Scheduler + prefetcher bookkeeping events (energy model input).
    engine_events: int
    config: GPUConfig
    kernel_name: str

    @property
    def cycles(self) -> int:
        return self.stats.cycles

    @property
    def ipc(self) -> float:
        return self.stats.ipc


class GPUSimulator:
    """Runs one kernel across ``config.num_sms`` SMs."""

    __slots__ = ("_kernel", "_config", "stats", "_subsystem", "_sms",
                 "_engines", "_now", "_prev_cycle", "_finished",
                 "_integrity", "watchdog", "telemetry")

    def __init__(
        self,
        kernel: KernelSpec,
        config: GPUConfig,
        engine_factory: EngineFactory,
        load_observers: Sequence[LoadObserver] = (),
        telemetry: Optional[TelemetryHub] = None,
    ):
        self._kernel = kernel
        self._config = config
        self.stats = SimStats()
        self._subsystem = MemorySubsystem(config, self.stats)
        self._sms: list[SMCore] = []
        self._engines: list[tuple[WarpScheduler, Prefetcher]] = []
        for sm_id in range(config.num_sms):
            scheduler, prefetcher = engine_factory()
            self._engines.append((scheduler, prefetcher))
            sm = SMCore(
                sm_id,
                config,
                kernel,
                scheduler,
                prefetcher,
                self._subsystem.l1s[sm_id],
                self._subsystem,
                self.stats,
            )
            sm.load_observers.extend(load_observers)
            self._sms.append(sm)
        self._now = 0
        #: Cycle of the last completed tick; the monotonic-clock guard.
        self._prev_cycle: Optional[int] = None
        self._finished = False
        self._integrity = (
            InvariantChecker(config.integrity_interval)
            if config.integrity_interval
            else None
        )
        self.watchdog = Watchdog(config.watchdog_cycles)
        #: Optional observability layer; ``None`` keeps every hook to a
        #: single identity test (see :mod:`repro.telemetry`).
        self.telemetry = telemetry
        if telemetry is not None:
            telemetry.bind(self)

    # ------------------------------------------------------------------
    # Introspection (also consumed by the integrity layer)
    # ------------------------------------------------------------------

    @property
    def subsystem(self) -> MemorySubsystem:
        return self._subsystem

    @property
    def sms(self) -> Sequence[SMCore]:
        return self._sms

    @property
    def kernel_name(self) -> str:
        return self._kernel.name

    @property
    def current_cycle(self) -> int:
        return self._now

    @property
    def finished(self) -> bool:
        return self._finished

    @property
    def last_checked_cycle(self) -> Optional[int]:
        return self._prev_cycle

    @property
    def fills_completed(self) -> int:
        """Total line fills landed in any L1 (watchdog progress signal)."""
        return sum(l1.mshrs.released_total for l1 in self._subsystem.l1s)

    @property
    def engine_events(self) -> int:
        """Scheduler + prefetcher bookkeeping events so far (energy input).

        Readable mid-run — the sampled executor measures per-interval
        deltas of it — and equal to ``result().engine_events`` at finish.
        """
        return sum(s.events + p.events for s, p in self._engines)

    def describe(self, now: Optional[int] = None) -> dict:
        """JSON-ready snapshot of machine state (diagnostic dumps)."""
        if now is None:
            now = self._now
        return {
            "kernel": self._kernel.name,
            "cycle": now,
            "finished": self._finished,
            "stats": {
                "instructions": self.stats.instructions,
                "idle_cycles": self.stats.idle_cycles,
                "l1_accesses": self.stats.l1.accesses,
                "l1_misses": self.stats.l1.misses,
                "fills_completed": self.fills_completed,
                "integrity_checks": self.stats.integrity_checks,
            },
            "sms": [sm.describe() for sm in self._sms],
            "memory": self._subsystem.describe(now),
        }

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def run(
        self,
        *,
        checkpoint_path: Optional[str] = None,
        checkpoint_every: Optional[int] = None,
    ) -> SimulationResult:
        """Simulate to completion; returns aggregated statistics.

        With ``checkpoint_path`` and ``checkpoint_every`` set, the full
        simulator state is written atomically to that path every
        ``checkpoint_every`` cycles, so a crashed run can be continued via
        :meth:`restore` + ``run()``.
        """
        last_saved = self._now
        while not self._finished:
            self._tick()
            if (
                checkpoint_path is not None
                and checkpoint_every
                and not self._finished
                and self._now - last_saved >= checkpoint_every
            ):
                save_checkpoint(self, checkpoint_path)
                last_saved = self._now
        return self.result()

    def step_until(self, stop_cycle: int) -> bool:
        """Advance until ``stop_cycle`` is reached (or the kernel finishes).

        Returns True when the simulation is complete. Pausing and resuming
        at any cycle is observable-state free: the continuation produces
        bit-identical statistics.
        """
        while not self._finished and self._now < stop_cycle:
            self._tick()
        return self._finished

    def result(self) -> SimulationResult:
        """Aggregate statistics of a completed run."""
        if not self._finished:
            raise SimulationError(
                f"kernel {self._kernel.name!r} still running at cycle "
                f"{self._now}; result() requires a completed simulation"
            )
        engine_events = self.engine_events
        return SimulationResult(
            stats=self.stats,
            engine_events=engine_events,
            config=self._config,
            kernel_name=self._kernel.name,
        )

    def _tick(self) -> None:
        """One iteration of the main loop: drain events, cycle SMs, advance."""
        now = self._now
        events = self._subsystem.events
        events.run_until(now)
        issued_any = False
        for sm in self._sms:
            issued_any |= sm.cycle(now)
        telemetry = self.telemetry
        if telemetry is not None:
            telemetry.on_tick(now)
        if all(sm.done for sm in self._sms) and not len(events):
            self._now = now + 1
            self._prev_cycle = now
            self._finished = True
            self.stats.cycles = self._now
            if telemetry is not None:
                telemetry.finish(self.stats)
            return
        if self._integrity is not None:
            self._integrity.maybe_check(self, now)
        self.watchdog.observe(self, now)
        if now >= self._config.max_cycles:
            self.watchdog.budget_exceeded(self, now, self._config.max_cycles)
        if issued_any:
            self._now = now + 1
        else:
            self._now = self._fast_forward(now)
        if self._now <= now:
            raise InvariantError(
                f"clock failed to advance past cycle {now}",
                details={"cycle": now, "next_cycle": self._now,
                         "invariant": "monotonic clock"},
            )
        self._prev_cycle = now

    def _fast_forward(self, now: int) -> int:
        """Jump to the next cycle at which anything can happen."""
        wake: Optional[int] = self._subsystem.events.next_event_cycle
        for sm in self._sms:
            hint = sm.next_wake_hint(now)
            if hint is not None and (wake is None or hint < wake):
                wake = hint
        if wake is None:
            raise SimulationError(
                f"kernel {self._kernel.name!r} deadlocked at cycle {now}: "
                "no ready warps and no pending events",
                details=self.describe(now),
            )
        if wake <= now:
            return now + 1
        skipped = wake - now - 1
        if skipped > 0:
            self.stats.idle_cycles += skipped * len(self._sms)
            if self.telemetry is not None:
                self.telemetry.on_skip(skipped)
        return wake

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------

    def snapshot(self) -> bytes:
        """Serialise the entire simulator state (resumable; see restore)."""
        return dump_simulator(self)

    @classmethod
    def restore(cls, blob: bytes) -> "GPUSimulator":
        """Rebuild a simulator from :meth:`snapshot` bytes."""
        return load_simulator(blob)


def simulate(
    kernel: KernelSpec,
    config: GPUConfig,
    engine_factory: EngineFactory,
    load_observers: Sequence[LoadObserver] = (),
    telemetry: Optional[TelemetryHub] = None,
) -> SimulationResult:
    """Convenience wrapper: build a :class:`GPUSimulator` and run it."""
    return GPUSimulator(
        kernel, config, engine_factory, load_observers, telemetry=telemetry
    ).run()
