"""Whole-GPU simulator: N SMs over a shared memory subsystem.

The main loop is cycle-driven with event-queue fast-forwarding: when every
SM is stalled (all warps waiting on memory or dependent-issue delays) the
clock jumps straight to the next wake-up, which makes memory-bound phases
cheap to simulate without changing any observable timing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.config import GPUConfig
from repro.errors import SimulationError
from repro.isa.program import KernelSpec
from repro.mem.subsystem import MemorySubsystem
from repro.prefetch.base import Prefetcher
from repro.sched.base import WarpScheduler
from repro.sm.pipeline import LoadObserver, SMCore
from repro.stats.counters import SimStats

#: Builds one (scheduler, prefetcher) pair per SM. APRES couples the two,
#: which is why they are constructed together.
EngineFactory = Callable[[], tuple[WarpScheduler, Prefetcher]]


@dataclass
class SimulationResult:
    """Outcome of one simulation run."""

    stats: SimStats
    #: Scheduler + prefetcher bookkeeping events (energy model input).
    engine_events: int
    config: GPUConfig
    kernel_name: str

    @property
    def cycles(self) -> int:
        return self.stats.cycles

    @property
    def ipc(self) -> float:
        return self.stats.ipc


class GPUSimulator:
    """Runs one kernel across ``config.num_sms`` SMs."""

    def __init__(
        self,
        kernel: KernelSpec,
        config: GPUConfig,
        engine_factory: EngineFactory,
        load_observers: Sequence[LoadObserver] = (),
    ):
        self._kernel = kernel
        self._config = config
        self.stats = SimStats()
        self._subsystem = MemorySubsystem(config, self.stats)
        self._sms: list[SMCore] = []
        self._engines: list[tuple[WarpScheduler, Prefetcher]] = []
        for sm_id in range(config.num_sms):
            scheduler, prefetcher = engine_factory()
            self._engines.append((scheduler, prefetcher))
            sm = SMCore(
                sm_id,
                config,
                kernel,
                scheduler,
                prefetcher,
                self._subsystem.l1s[sm_id],
                self._subsystem,
                self.stats,
            )
            sm.load_observers.extend(load_observers)
            self._sms.append(sm)

    @property
    def subsystem(self) -> MemorySubsystem:
        return self._subsystem

    def run(self) -> SimulationResult:
        """Simulate to completion; returns aggregated statistics."""
        now = 0
        max_cycles = self._config.max_cycles
        events = self._subsystem.events
        while True:
            events.run_until(now)
            issued_any = False
            for sm in self._sms:
                issued_any |= sm.cycle(now)
            if all(sm.done for sm in self._sms) and not len(events):
                now += 1
                break
            if now >= max_cycles:
                raise SimulationError(
                    f"kernel {self._kernel.name!r} exceeded {max_cycles} cycles"
                )
            if issued_any:
                now += 1
                continue
            now = self._fast_forward(now)
        self.stats.cycles = now
        engine_events = sum(s.events + p.events for s, p in self._engines)
        return SimulationResult(
            stats=self.stats,
            engine_events=engine_events,
            config=self._config,
            kernel_name=self._kernel.name,
        )

    def _fast_forward(self, now: int) -> int:
        """Jump to the next cycle at which anything can happen."""
        wake: Optional[int] = self._subsystem.events.next_event_cycle
        for sm in self._sms:
            hint = sm.next_wake_hint(now)
            if hint is not None and (wake is None or hint < wake):
                wake = hint
        if wake is None:
            raise SimulationError(
                f"kernel {self._kernel.name!r} deadlocked at cycle {now}: "
                "no ready warps and no pending events"
            )
        if wake <= now:
            return now + 1
        skipped = wake - now - 1
        if skipped > 0:
            self.stats.idle_cycles += skipped * len(self._sms)
        return wake


def simulate(
    kernel: KernelSpec,
    config: GPUConfig,
    engine_factory: EngineFactory,
    load_observers: Sequence[LoadObserver] = (),
) -> SimulationResult:
    """Convenience wrapper: build a :class:`GPUSimulator` and run it."""
    return GPUSimulator(kernel, config, engine_factory, load_observers).run()
