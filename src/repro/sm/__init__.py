"""Streaming-multiprocessor pipeline and the whole-GPU simulator."""

from repro.sm.pipeline import SMCore
from repro.sm.simulator import GPUSimulator, SimulationResult, simulate
from repro.sm.warp import WarpContext

__all__ = ["SMCore", "GPUSimulator", "SimulationResult", "simulate", "WarpContext"]
