"""Simulation configuration mirroring the paper's Table III.

The defaults reproduce the GPGPU-sim configuration used in the paper:
15 SMs at 1.4 GHz, 48 concurrent warps per SM, a 32 KB / 8-way / 128 B-line
L1 data cache with 64 MSHRs, a 768 KB shared L2 with 200-cycle latency, and
a 6-partition DRAM with 440-cycle latency.

Pure-Python cycle simulation of 15 SMs is slow, so experiments usually run
:meth:`GPUConfig.scaled` — fewer SMs with DRAM service bandwidth scaled
proportionally, preserving per-SM contention.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.errors import ConfigError

#: Cache line size used throughout the paper (bytes).
LINE_SIZE = 128

#: Threads per warp (NVIDIA SIMT width).
WARP_SIZE = 32


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one cache level."""

    size_bytes: int
    associativity: int
    line_size: int = LINE_SIZE
    #: Cycles until hit data is usable. GPGPU-sim's L1 is pipelined and
    #: returns hits within a few cycles; misses pay the L2/DRAM latencies.
    hit_latency: int = 4
    num_mshrs: int = 64
    #: Maximum demand requests merged into one MSHR entry.
    mshr_merge_limit: int = 8
    #: Interleaved banks limiting throughput (0/1 banks+0 service = unlimited).
    num_banks: int = 1
    #: Cycles one bank is busy serving a line (0 = unlimited bandwidth).
    service_cycles: int = 0

    def __post_init__(self) -> None:
        if self.size_bytes % (self.associativity * self.line_size):
            raise ConfigError(
                f"cache size {self.size_bytes} not divisible by "
                f"{self.associativity} ways x {self.line_size}B lines"
            )
        # Set indexing is modulo, so non-power-of-two set counts are fine
        # (the 768 KB L2 of Table III has 768 sets).

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.associativity * self.line_size)

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_size


@dataclass(frozen=True)
class DRAMConfig:
    """Off-chip memory model: fixed access latency plus per-partition queuing."""

    num_partitions: int = 6
    latency: int = 440
    #: Cycles a partition is busy serving one 128-byte line. Derived from the
    #: paper's 924 MHz GDDR5 interface: one partition moves a line in roughly
    #: 4 core cycles; queuing delay beyond that emerges from contention.
    service_cycles: int = 4


@dataclass(frozen=True)
class APRESConfig:
    """Geometry of the LAWS + SAP structures (Section IV, Table II)."""

    #: Warp Group Table entries; 3 covers in-flight loads issue->execute.
    wgt_entries: int = 3
    #: SAP Prefetch Table entries.
    pt_entries: int = 10
    #: Demand Request Queue entries (one uncoalesced load = up to 32 requests).
    drq_entries: int = 32
    #: Warp Queue entries (one per schedulable warp).
    wq_entries: int = 48


@dataclass(frozen=True)
class GPUConfig:
    """Full simulation configuration (Table III defaults)."""

    num_sms: int = 15
    max_warps_per_sm: int = 48
    warp_size: int = WARP_SIZE
    #: Cycles before a dependent instruction from the same warp can issue.
    issue_latency: int = 8
    l1: CacheConfig = dataclasses.field(
        default_factory=lambda: CacheConfig(size_bytes=32 * 1024, associativity=8)
    )
    l2: CacheConfig = dataclasses.field(
        default_factory=lambda: CacheConfig(
            size_bytes=768 * 1024,
            associativity=8,
            hit_latency=200,
            num_mshrs=128,
            # Aggregate L2/NoC bandwidth of roughly 2x DRAM bandwidth.
            num_banks=6,
            service_cycles=2,
        )
    )
    dram: DRAMConfig = dataclasses.field(default_factory=DRAMConfig)
    apres: APRESConfig = dataclasses.field(default_factory=APRESConfig)
    #: Safety valve: abort simulations that exceed this many cycles.
    max_cycles: int = 20_000_000
    #: Cycles between conservation-invariant sweeps (0 disables them).
    #: Checks are read-only and cannot change simulated timing.
    integrity_interval: int = 0
    #: Abort with :class:`~repro.errors.WatchdogTimeout` when no instruction
    #: retires and no memory fill completes for this many cycles (0 disables).
    watchdog_cycles: int = 0

    def __post_init__(self) -> None:
        if self.num_sms < 1:
            raise ConfigError("need at least one SM")
        if self.max_warps_per_sm < 1:
            raise ConfigError("need at least one warp per SM")
        if self.issue_latency < 1:
            raise ConfigError("issue latency must be positive")
        if self.max_cycles < 1:
            raise ConfigError("cycle budget must be positive")
        if self.integrity_interval < 0:
            raise ConfigError("integrity interval cannot be negative")
        if self.watchdog_cycles < 0:
            raise ConfigError("watchdog threshold cannot be negative")

    def scaled(self, num_sms: int) -> "GPUConfig":
        """Return a config with ``num_sms`` SMs and proportional DRAM bandwidth.

        Per-partition service time is stretched so that DRAM bandwidth *per
        SM* matches the full-size machine, preserving the queuing behaviour
        each SM observes.
        """
        if num_sms < 1:
            raise ConfigError("need at least one SM")
        factor = self.num_sms / num_sms
        dram_service = max(1, round(self.dram.service_cycles * factor))
        l2_service = self.l2.service_cycles
        if l2_service:
            l2_service = max(1, round(l2_service * factor))
        return dataclasses.replace(
            self,
            num_sms=num_sms,
            dram=dataclasses.replace(self.dram, service_cycles=dram_service),
            l2=dataclasses.replace(self.l2, service_cycles=l2_service),
        )

    def with_limits(
        self,
        *,
        max_cycles: "int | None" = None,
        watchdog_cycles: "int | None" = None,
        integrity_interval: "int | None" = None,
    ) -> "GPUConfig":
        """Return a config with the given integrity limits overridden.

        ``None`` keeps the current value; the CLI's ``--cycle-budget`` and
        ``--watchdog`` flags funnel through here.
        """
        changes: dict = {}
        if max_cycles is not None:
            changes["max_cycles"] = max_cycles
        if watchdog_cycles is not None:
            changes["watchdog_cycles"] = watchdog_cycles
        if integrity_interval is not None:
            changes["integrity_interval"] = integrity_interval
        return dataclasses.replace(self, **changes) if changes else self

    def with_l1_size(self, size_bytes: int) -> "GPUConfig":
        """Return a config whose L1 capacity is ``size_bytes`` (e.g. Figure 2's 32 MB)."""
        return dataclasses.replace(
            self, l1=dataclasses.replace(self.l1, size_bytes=size_bytes)
        )
