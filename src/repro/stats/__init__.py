"""Simulation statistics: counters, miss classification and the energy model."""

from repro.stats.counters import CacheStats, MemoryStats, SimStats
from repro.stats.energy import EnergyCosts, EnergyModel, EnergyReport

__all__ = [
    "CacheStats",
    "MemoryStats",
    "SimStats",
    "EnergyCosts",
    "EnergyModel",
    "EnergyReport",
]
