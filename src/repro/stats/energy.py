"""Event-count dynamic energy model (GPUWattch substitute).

Figure 15 of the paper reports *relative* dynamic energy, simulated with
GPUWattch. We replace it with a per-event energy model: every architectural
event is charged a fixed energy, so the relative ordering between
configurations — which is all the figure claims — is preserved. Per-event
costs are loosely derived from published 40 nm GPU numbers (DRAM access two
orders of magnitude above an ALU op, L2 roughly 5x L1).

The APRES structures (LLT/WGT/PT lookups) are charged per scheduling event;
the paper measured this overhead below 3% of total energy and so does this
model under default costs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.stats.counters import SimStats


@dataclass(frozen=True)
class EnergyCosts:
    """Per-event energies in picojoules (relative scale is what matters)."""

    alu_op: float = 2.0
    l1_access: float = 20.0
    l2_access: float = 100.0
    dram_access: float = 500.0
    #: Per issued warp-instruction front-end cost (fetch/decode/operand).
    issue: float = 4.0
    #: Per-cycle cost of clocking one SM.
    sm_cycle: float = 1.0
    #: APRES table lookup/update per scheduler or prefetcher event.
    apres_event: float = 0.5


@dataclass(frozen=True)
class EnergyReport:
    """Breakdown of dynamic energy for one run (picojoules)."""

    core: float
    l1: float
    l2: float
    dram: float
    apres: float

    @property
    def total(self) -> float:
        return self.core + self.l1 + self.l2 + self.dram + self.apres


class EnergyModel:
    """Computes an :class:`EnergyReport` from simulation counters."""

    def __init__(self, costs: EnergyCosts | None = None):
        self._costs = costs or EnergyCosts()

    def report(self, stats: SimStats, apres_events: int = 0, num_sms: int = 1) -> EnergyReport:
        c = self._costs
        core = (
            stats.alu_instructions * c.alu_op
            + stats.instructions * c.issue
            + stats.cycles * c.sm_cycle * num_sms
        )
        l1_events = stats.l1.accesses + stats.l1.prefetch_issued + stats.l1.evictions
        l2_events = stats.memory.l2_accesses
        dram_events = stats.memory.dram_requests + stats.memory.bytes_stored // 128
        return EnergyReport(
            core=core,
            l1=l1_events * c.l1_access,
            l2=l2_events * c.l2_access,
            dram=dram_events * c.dram_access,
            apres=apres_events * c.apres_event,
        )
