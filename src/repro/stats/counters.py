"""Counter bundles updated by the simulator.

One :class:`SimStats` is shared by all SMs of a simulation; figures in the
paper report per-benchmark aggregates, so counters are aggregated rather
than kept per SM. Derived metrics (ratios, IPC) are provided as properties
so raw counters stay the single source of truth.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field


@dataclass
class CacheStats:  # simlint: boundary[aggregated counters: merged per epoch, tolerant of ordering]
    """L1 data-cache counters (demand accesses unless noted)."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    cold_misses: int = 0
    capacity_conflict_misses: int = 0
    #: Hits whose immediately preceding access (to this cache) also hit.
    hit_after_hit: int = 0
    hit_after_miss: int = 0
    mshr_demand_merges: int = 0
    #: Access replays because no MSHR could be allocated or merged.
    reservation_fails: int = 0
    evictions: int = 0
    # Prefetch accounting (Figures 4 and 12).
    prefetch_issued: int = 0
    #: Prefetches dropped because the line was present/in-flight or no MSHR.
    prefetch_dropped: int = 0
    prefetch_fills: int = 0
    #: Prefetch-filled lines that served at least one demand hit.
    prefetch_useful: int = 0
    #: Demand requests that merged into a prefetch-initiated MSHR entry.
    prefetch_demand_merged: int = 0
    #: Prefetch-filled lines evicted before any demand touched them.
    prefetch_early_evicted: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def cold_miss_ratio(self) -> float:
        """Cold misses over all demand accesses (Figure 2/11 stack segment)."""
        return self.cold_misses / self.accesses if self.accesses else 0.0

    @property
    def capacity_conflict_ratio(self) -> float:
        return self.capacity_conflict_misses / self.accesses if self.accesses else 0.0

    @property
    def hit_after_hit_ratio(self) -> float:
        return self.hit_after_hit / self.accesses if self.accesses else 0.0

    @property
    def hit_after_miss_ratio(self) -> float:
        return self.hit_after_miss / self.accesses if self.accesses else 0.0

    @property
    def early_eviction_ratio(self) -> float:
        """Early evictions over correctly prefetched lines (Section III-C).

        A correct prefetch either served a demand (hit or MSHR merge) or was
        evicted before the demand arrived; mispredicted-and-unused lines are
        excluded by construction of the accounting.
        """
        correct = self.prefetch_useful + self.prefetch_demand_merged + self.prefetch_early_evicted
        return self.prefetch_early_evicted / correct if correct else 0.0

    def merge(self, other: "CacheStats") -> None:
        """Accumulate ``other`` into this bundle (aggregating SMs)."""
        for name in self.__dataclass_fields__:
            setattr(self, name, getattr(self, name) + getattr(other, name))


@dataclass
class MemoryStats:  # simlint: boundary[aggregated counters: merged per epoch, tolerant of ordering]
    """Interconnect / DRAM counters."""

    #: Sum and count of demand load latencies (issue to data ready), hits included.
    demand_latency_sum: int = 0
    demand_latency_count: int = 0
    #: Bytes filled from L2 into any L1 (includes prefetch fills).
    bytes_l2_to_l1: int = 0
    bytes_dram_to_l2: int = 0
    bytes_stored: int = 0
    l2_accesses: int = 0
    l2_hits: int = 0
    dram_requests: int = 0

    @property
    def avg_demand_latency(self) -> float:
        if not self.demand_latency_count:
            return 0.0
        return self.demand_latency_sum / self.demand_latency_count

    @property
    def total_traffic_bytes(self) -> int:
        """Data moved toward the SMs plus store traffic (Figure 14)."""
        return self.bytes_l2_to_l1 + self.bytes_stored

    def merge(self, other: "MemoryStats") -> None:
        """Accumulate ``other`` into this bundle (aggregating shards)."""
        for name in self.__dataclass_fields__:
            setattr(self, name, getattr(self, name) + getattr(other, name))


@dataclass
class SimStats:  # simlint: boundary[aggregated counters: merged per epoch, tolerant of ordering]
    """Top-level statistics for one simulation run."""

    cycles: int = 0
    instructions: int = 0
    alu_instructions: int = 0
    load_instructions: int = 0
    store_instructions: int = 0
    #: Cycles in which an SM had no ready warp to issue.
    idle_cycles: int = 0
    #: Load/store issues rejected because the LSU replay queue was busy.
    lsu_structural_stalls: int = 0
    #: Invariant sweeps executed by the integrity layer (diagnostic only).
    integrity_checks: int = 0
    l1: CacheStats = field(default_factory=CacheStats)
    memory: MemoryStats = field(default_factory=MemoryStats)

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    def as_dict(self) -> dict:
        """Raw counters as a JSON-serialisable nested dict.

        The sweep runner's JSONL records and the watchdog's dumps both use
        this, so on-disk results stay diffable between runs.
        """
        return dataclasses.asdict(self)

    def merge(self, other: "SimStats") -> None:
        """Accumulate ``other``'s counters into this bundle.

        Every field is an additive count, so merging per-shard bundles in
        any order yields the same totals the serial engine accumulates
        into its single shared instance. ``cycles`` is a timestamp rather
        than a count and is intentionally *not* summed — the sharded
        engine sets it from the global finish cycle.
        """
        for name in self.__dataclass_fields__:
            if name in ("cycles", "l1", "memory"):
                continue
            setattr(self, name, getattr(self, name) + getattr(other, name))
        self.l1.merge(other.l1)
        self.memory.merge(other.memory)
