"""Registry self-healing: detect, quarantine and repair corrupted records.

``repro fsck`` audits a :class:`~repro.registry.store.RegistryStore` for
every corruption class the chaos harness can inject (and the real world
produces):

* **torn lines** — a truncated JSONL tail from a crash mid-append, or any
  line that is not a JSON record at all;
* **run-id mismatches** — a record whose ``run_id`` no longer equals the
  content hash of its identity (the identity was tampered with);
* **payload-hash mismatches** — an archived sweep record whose recomputed
  sha256 disagrees with the ``sweep_record_sha256`` stamped at ingest
  (bit rot or a corrupted archive: still valid JSON, wrong numbers);
* **duplicates** — byte-identical repeated lines (a replayed append);
* **index drift** — SQLite rows with no matching JSONL line (orphaned) or
  JSONL lines the index never received (missing).

``--repair`` quarantines every bad raw line under
``<registry>/quarantine/``, restores restorable records from a sweep
store (an archived sweep record is a pure function of its JSONL source
under a pinned provenance epoch, so restoration is lossless), rewrites
``records.jsonl`` atomically, and rebuilds the SQLite index from the
healed mirror.
"""

from __future__ import annotations

import json
import os
import pathlib
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.resilience.atomic import append_line, atomic_write

#: File under ``<registry>/quarantine/`` receiving quarantined raw lines.
QUARANTINE_FILE = "quarantined.jsonl"


@dataclass
class FsckIssue:
    """One detected problem, with its (optional) repair outcome."""

    kind: str  # torn-line | run-id-mismatch | payload-hash-mismatch |
    #            duplicate | missing-index-row | orphaned-index-row
    detail: str
    lineno: Optional[int] = None
    run_id: Optional[str] = None
    #: Repair outcome: restored in place (lossless) ...
    repaired: bool = False
    #: ... or removed to the quarantine file.
    quarantined: bool = False


@dataclass
class FsckReport:
    """Outcome of one :func:`fsck` pass."""

    root: str
    #: Well-formed records seen in the JSONL mirror.
    records: int = 0
    issues: list[FsckIssue] = field(default_factory=list)
    #: True when a repair pass rewrote the store.
    repaired: bool = False
    quarantine_path: Optional[str] = None

    @property
    def ok(self) -> bool:
        return not self.issues

    def counts(self) -> dict[str, int]:
        """Issue tally by kind (stable order for display/JSON)."""
        tally: Counter[str] = Counter(issue.kind for issue in self.issues)
        return dict(sorted(tally.items()))


def _verify_payload(payload: Any) -> Optional[tuple[str, str]]:
    """(issue kind, detail) when a parsed record fails verification."""
    from repro.registry.records import content_hash, record_sha256

    if not isinstance(payload, dict) or not isinstance(
            payload.get("run_id"), str):
        return "torn-line", "parsed JSON is not a registry record"
    identity = payload.get("identity")
    if isinstance(identity, dict) and identity:
        expected = content_hash(identity)
        if payload["run_id"] != expected:
            return (
                "run-id-mismatch",
                f"run_id {payload['run_id']} != identity hash {expected}",
            )
    data = payload.get("data") or {}
    stamped = data.get("sweep_record_sha256")
    archived = data.get("sweep_record")
    if isinstance(stamped, str) and isinstance(archived, dict):
        actual = record_sha256(archived)
        if actual != stamped:
            return (
                "payload-hash-mismatch",
                f"archived sweep record hashes to {actual[:16]}..., "
                f"ingest stamped {stamped[:16]}...",
            )
    return None


def _restore_line(payload: dict, restore_records: dict[str, dict]
                  ) -> Optional[str]:
    """Regenerated registry line for a corrupted record, if restorable.

    An archived sweep record is deterministic given its sweep JSONL
    source: rebuilding through
    :func:`repro.registry.records.sweep_point_record` under the same
    provenance epoch reproduces the original line byte-for-byte.
    """
    from repro.registry.records import sweep_point_record

    key = (payload.get("data") or {}).get("sweep_key")
    source = restore_records.get(key) if isinstance(key, str) else None
    if source is None or source.get("status") != "ok":
        return None
    rebuilt = sweep_point_record(source)
    if rebuilt is None:
        return None
    return json.dumps(rebuilt.as_dict(), sort_keys=True, default=str)


def fsck(
    store: Any,
    repair: bool = False,
    restore_from: Optional[str] = None,
) -> FsckReport:
    """Audit ``store`` (a :class:`RegistryStore`); optionally repair it.

    With ``repair``, bad lines are quarantined (raw, under
    ``<registry>/quarantine/``), records restorable from the
    ``restore_from`` sweep store are regenerated in place, the JSONL
    mirror is rewritten atomically and the SQLite index rebuilt from it.
    The returned report reflects what was *found*; per-issue
    ``repaired``/``quarantined`` flags say what happened to each.
    """
    report = FsckReport(root=str(store.root))
    jsonl_path = pathlib.Path(store.jsonl_path)
    raw_lines: list[str] = []
    if jsonl_path.exists():
        raw_lines = jsonl_path.read_text(encoding="utf-8").splitlines()

    restore_records: dict[str, dict] = {}
    if repair and restore_from and os.path.exists(restore_from):
        from repro.experiments.sweep import ResultsStore

        restore_records = ResultsStore(restore_from).load()

    kept: list[str] = []
    quarantined_raw: list[str] = []
    seen: set[str] = set()
    mutated = False
    for lineno, raw in enumerate(raw_lines, start=1):
        stripped = raw.strip()
        issue: Optional[FsckIssue] = None
        payload: Optional[dict] = None
        if not stripped:
            issue = FsckIssue("torn-line", "blank line", lineno=lineno)
        else:
            try:
                parsed = json.loads(stripped)
            except json.JSONDecodeError:
                issue = FsckIssue(
                    "torn-line",
                    f"undecodable JSON ({len(stripped)} bytes)"
                    + (" at end of file" if lineno == len(raw_lines)
                       else ""),
                    lineno=lineno,
                )
            else:
                verdict = _verify_payload(parsed)
                if verdict is not None:
                    kind, detail = verdict
                    run_id = (parsed.get("run_id")
                              if isinstance(parsed, dict) else None)
                    issue = FsckIssue(kind, detail, lineno=lineno,
                                      run_id=run_id)
                    payload = parsed if isinstance(parsed, dict) else None
                elif stripped in seen:
                    issue = FsckIssue(
                        "duplicate",
                        f"byte-identical to an earlier record "
                        f"({parsed['run_id']})",
                        lineno=lineno, run_id=parsed["run_id"],
                    )
        if issue is None:
            seen.add(stripped)
            kept.append(stripped)
            report.records += 1
            continue
        report.issues.append(issue)
        if not repair:
            kept.append(stripped)  # check mode never rewrites
            continue
        restored = (
            _restore_line(payload, restore_records)
            if payload is not None and issue.kind in (
                "run-id-mismatch", "payload-hash-mismatch")
            else None
        )
        mutated = True
        if restored is not None:
            issue.repaired = True
            seen.add(restored)
            kept.append(restored)
            report.records += 1
        else:
            issue.quarantined = True
            quarantined_raw.append(raw)

    # Index drift: the SQLite rows must be exactly the good JSONL lines.
    index_lines = _index_lines(store)
    if index_lines is not None:
        jsonl_counts = Counter(kept)
        index_counts = Counter(index_lines)
        for line, count in sorted(jsonl_counts.items()):
            missing = count - index_counts.get(line, 0)
            if missing > 0:
                report.issues.append(FsckIssue(
                    "missing-index-row",
                    f"{missing} record(s) absent from the SQLite index "
                    f"(run_id {_line_run_id(line)})",
                    run_id=_line_run_id(line),
                    repaired=repair,
                ))
                mutated = mutated or repair
        for line, count in sorted(index_counts.items()):
            orphaned = count - jsonl_counts.get(line, 0)
            if orphaned > 0:
                report.issues.append(FsckIssue(
                    "orphaned-index-row",
                    f"{orphaned} index row(s) with no matching JSONL "
                    f"record (run_id {_line_run_id(line)})",
                    run_id=_line_run_id(line),
                    repaired=repair,
                ))
                mutated = mutated or repair

    if repair:
        if quarantined_raw:
            quarantine_path = (
                pathlib.Path(store.root) / "quarantine" / QUARANTINE_FILE)
            for raw in quarantined_raw:
                append_line(quarantine_path, raw)
            report.quarantine_path = str(quarantine_path)
        if mutated or not pathlib.Path(store.db_path).exists():
            if jsonl_path.exists() or kept:
                atomic_write(
                    jsonl_path,
                    "".join(line + "\n" for line in kept))
            store.rebuild_index()
            report.repaired = True
    return report


def _index_lines(store: Any) -> Optional[list[str]]:
    """Raw record JSON of every SQLite index row (None: no index yet)."""
    import sqlite3

    db_path = pathlib.Path(store.db_path)
    if not db_path.exists():
        return None
    try:
        with sqlite3.connect(db_path) as conn:
            rows = conn.execute(
                "SELECT json FROM records ORDER BY seq").fetchall()
    except sqlite3.DatabaseError:
        return []  # unreadable index: every JSONL line is "missing"
    return [row[0] for row in rows]


def _line_run_id(line: str) -> Optional[str]:
    try:
        payload = json.loads(line)
    except json.JSONDecodeError:
        return None
    return payload.get("run_id") if isinstance(payload, dict) else None


def format_fsck(report: FsckReport) -> str:
    """Human-readable fsck report (one line per issue + a verdict)."""
    lines = [f"fsck {report.root}: {report.records} record(s)"]
    for issue in report.issues:
        where = f" line {issue.lineno}" if issue.lineno is not None else ""
        outcome = ""
        if issue.repaired:
            outcome = " [repaired]"
        elif issue.quarantined:
            outcome = " [quarantined]"
        lines.append(f"  {issue.kind}{where}: {issue.detail}{outcome}")
    if report.quarantine_path:
        lines.append(f"quarantine: {report.quarantine_path}")
    if report.ok:
        lines.append("clean: no issues found")
    elif report.repaired:
        lines.append(
            f"repaired: {len(report.issues)} issue(s) resolved "
            "(index rebuilt)")
    else:
        lines.append(
            f"found {len(report.issues)} issue(s); re-run with --repair")
    return "\n".join(lines)
