"""Hardened process pool: heartbeat deadlines, kill-and-requeue, quarantine.

:class:`concurrent.futures.ProcessPoolExecutor` — the engine behind plain
``--jobs N`` sweeps — has two failure modes a long campaign cannot
afford: a worker that *dies* breaks the whole pool (every outstanding
future raises ``BrokenProcessPool``), and a worker that *hangs* (SIGSTOP,
runaway kernel, NFS stall) wedges the sweep forever. This module replaces
it with a supervised pool when resilience is requested:

* the parent assigns work through **per-worker task queues** and records
  the assignment on its side *at dispatch time* — detection never depends
  on a message from the worker, because a worker frozen right after
  accepting a task would freeze its queue feeder thread too and the
  message would simply never arrive.
* every worker runs a daemon **heartbeat thread** posting ticks to the
  parent; a SIGSTOP freezes all threads, so heartbeats ceasing is exactly
  the hang signal. The parent timestamps receipt on its own clock (child
  clocks are never trusted) and escalates any assigned worker silent past
  ``deadline_s``: SIGKILL → attempt accounting → **requeue** with capped
  exponential backoff and deterministic jitter → replacement worker.
* a worker that dies outright (crash, OOM-kill) is detected via its
  process handle and handled the same way — the sweep's other points
  never notice.
* a point that keeps killing its workers is **quarantined** after
  ``max_attempts`` dispatches: the supervisor yields
  :class:`PointQuarantined` for it (the sweep driver turns that into a
  structured failure record marked ``"quarantined": true``) and the sweep
  continues.
* if the pool keeps dying (``degrade_after`` worker deaths), the
  supervisor stops spawning replacements and **degrades gracefully to
  serial** in-parent execution of the remaining points.

Requeued attempts re-run the same deterministic simulation, so a sweep
that recovers from any number of crashes/hangs still produces output
byte-identical to an undisturbed serial run — the property ``repro
chaos`` asserts end-to-end.
"""

from __future__ import annotations

import contextlib
import heapq
import multiprocessing
import queue as queue_mod
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional, Sequence

from repro.errors import ReproError
from repro.resilience import faults
from repro.telemetry import flight
from repro.telemetry.metrics import get_registry


class PointQuarantined(ReproError):
    """A sweep point was abandoned after exhausting its dispatch attempts.

    ``details`` carries ``kind`` (``worker-hang`` / ``worker-crash`` /
    ``worker-error``), the attempt count, and ``quarantined: True`` — the
    marker the sweep driver persists so ``--resume-from`` skips the point
    instead of re-poisoning the pool (``--retry-failed`` overrides).
    """


@dataclass(frozen=True)
class SupervisorConfig:
    """Tuning knobs of one supervised-pool run (picklable, no callables)."""

    #: Escalate an assigned worker silent for this long (None: hang
    #: detection off; crash detection needs no heartbeats and stays on).
    deadline_s: Optional[float] = None
    #: Worker-side heartbeat period; keep well under ``deadline_s``.
    heartbeat_interval_s: float = 0.2
    #: Total dispatches per point before quarantine.
    max_attempts: int = 3
    #: First-requeue backoff; doubles per subsequent attempt.
    backoff_base_s: float = 0.25
    #: Ceiling on the exponential backoff.
    backoff_cap_s: float = 5.0
    #: Deterministic-jitter fraction added to each backoff (0..1).
    jitter_frac: float = 0.25
    #: Seed for the jitter stream (paired with point index + attempt).
    seed: int = 0
    #: Worker deaths tolerated before degrading to in-parent serial.
    degrade_after: int = 6
    #: Parent poll period while waiting for worker messages.
    poll_interval_s: float = 0.05
    #: Fault schedule armed inside each worker (chaos/testing).
    fault_plan: Optional[faults.FaultPlan] = None


@dataclass
class _Assignment:
    """Parent-side record of one in-flight dispatch (set at dispatch)."""

    index: int
    attempt: int
    last_seen: float = field(default_factory=time.monotonic)


def _worker_main(
    worker_id: int,
    task_queue: Any,
    result_queue: Any,
    plan: Optional[faults.FaultPlan],
    heartbeat_interval_s: float,
    telemetry_queue: Any,
) -> None:
    """Supervised worker: heartbeat thread + task loop.

    Runs tasks with the same integrity wrapper as the plain pool
    (:func:`repro.experiments.parallel._run_point_task`), so records are
    byte-identical regardless of which engine produced them.
    """
    from repro.experiments.parallel import _init_worker, _run_point_task

    faults.arm(plan)
    _init_worker(telemetry_queue)
    stop = threading.Event()

    def _beat() -> None:
        while not stop.wait(heartbeat_interval_s):
            try:
                result_queue.put(("hb", worker_id))
            except Exception:  # queue torn down mid-shutdown
                return

    threading.Thread(target=_beat, daemon=True).start()
    while True:
        item = task_queue.get()
        if item is None:
            break
        task, attempt = item
        if plan is not None:
            plan.worker_point_fault(task.index, attempt)
        try:
            index, record = _run_point_task(task)
            result_queue.put(("done", worker_id, index, record))
        except BaseException as exc:
            result_queue.put(
                ("error", worker_id, task.index,
                 f"{type(exc).__name__}: {exc}"))
    stop.set()


class SupervisedPool:
    """Kill-and-requeue pool supervisor. One instance per run() call."""

    def __init__(
        self,
        config: SupervisorConfig,
        on_event: Optional[Callable[[str], None]] = None,
    ):
        self.config = config
        self._on_event = on_event
        #: Human-readable escalation log (tests assert against this).
        self.events: list[str] = []
        self._ctx = multiprocessing.get_context()
        self._workers: dict[int, Any] = {}
        self._queues: dict[int, Any] = {}
        self._idle: list[int] = []
        self._next_worker_id = 0
        self.worker_deaths = 0
        self.degraded = False

    # ------------------------------------------------------------------

    def _event(self, message: str) -> None:
        self.events.append(message)
        if self._on_event is not None:
            self._on_event(message)

    def _backoff_delay(self, index: int, attempt: int) -> float:
        cfg = self.config
        base = min(cfg.backoff_cap_s,
                   cfg.backoff_base_s * (2 ** max(0, attempt - 2)))
        jitter = random.Random(f"{cfg.seed}:{index}:{attempt}").uniform(
            0.0, cfg.jitter_frac)
        return base * (1.0 + jitter)

    def _spawn_worker(self, result_queue: Any, telemetry_queue: Any) -> int:
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        task_queue = self._ctx.Queue()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(worker_id, task_queue, result_queue,
                  self.config.fault_plan, self.config.heartbeat_interval_s,
                  telemetry_queue),
            daemon=True,
        )
        proc.start()
        self._workers[worker_id] = proc
        self._queues[worker_id] = task_queue
        self._idle.append(worker_id)
        get_registry().gauge("pool.workers.alive").set(len(self._workers))
        flight.record("pool.worker_spawned", worker=worker_id)
        return worker_id

    def _kill_worker(self, worker_id: int) -> None:
        proc = self._workers.pop(worker_id, None)
        task_queue = self._queues.pop(worker_id, None)
        if worker_id in self._idle:
            self._idle.remove(worker_id)
        if proc is not None:
            if proc.is_alive():
                proc.kill()  # SIGKILL: works on SIGSTOPped processes too
            proc.join(timeout=5)
        if task_queue is not None:
            # An undelivered task must not block the feeder at teardown.
            with contextlib.suppress(Exception):
                task_queue.cancel_join_thread()
                task_queue.close()
        get_registry().gauge("pool.workers.alive").set(len(self._workers))

    def _shutdown(self) -> None:
        for worker_id in list(self._workers):
            self._kill_worker(worker_id)

    # ------------------------------------------------------------------

    def run(
        self,
        tasks: Sequence[Any],
        jobs: int,
        telemetry_queue: Any = None,
    ) -> Iterator[tuple[int, Any]]:
        """Execute tasks, yielding ``(index, record-or-exception)``.

        Yields in completion order (the sweep driver owns point ordering).
        Every task index is yielded exactly once: a success record, a
        failure record produced inside the worker, or
        :class:`PointQuarantined` after escalation exhausts its attempts.
        """
        if not tasks:
            return
        cfg = self.config
        tasks_by_index = {task.index: task for task in tasks}
        attempts = {task.index: 0 for task in tasks}  # dispatches so far
        completed: set[int] = set()
        assigned: dict[int, _Assignment] = {}
        #: Points awaiting (re)dispatch: (ready_at, seq, index).
        pending: list[tuple[float, int, int]] = [
            (0.0, order, task.index) for order, task in enumerate(tasks)]
        heapq.heapify(pending)
        seq = len(tasks)
        result_queue = self._ctx.Queue()

        def escalate(index: int, kind: str,
                     detail: str) -> Optional[PointQuarantined]:
            """Account one failed dispatch; requeue or quarantine."""
            nonlocal seq
            if index in completed:
                return None
            attempt = attempts[index]
            if attempt >= cfg.max_attempts:
                self._event(
                    f"quarantined point {index} after {attempt} "
                    f"attempts ({kind}: {detail})")
                get_registry().counter("pool.worker.quarantines").inc()
                flight.record("pool.quarantine", index=index,
                              attempts=attempt, cause=kind)
                flight.dump("pool-quarantine", details={
                    "index": index, "attempts": attempt,
                    "kind": kind, "detail": detail,
                })
                return PointQuarantined(
                    f"point abandoned after {attempt} attempts "
                    f"({kind}: {detail})",
                    details={"kind": kind, "attempts": attempt,
                             "quarantined": True},
                )
            delay = self._backoff_delay(index, attempt + 1)
            self._event(
                f"requeueing point {index} (attempt "
                f"{attempt + 1}/{cfg.max_attempts}, {kind}, "
                f"backoff {delay:.2f}s)")
            get_registry().counter("pool.worker.requeues").inc()
            flight.record("pool.requeue", index=index,
                          attempt=attempt + 1, cause=kind,
                          backoff_s=round(delay, 3))
            seq += 1
            heapq.heappush(pending, (time.monotonic() + delay, seq, index))
            return None

        try:
            for _ in range(min(jobs, len(tasks))):
                self._spawn_worker(result_queue, telemetry_queue)

            while len(completed) < len(tasks):
                now = time.monotonic()
                # Dispatch: parent-side assignment *before* the queue put,
                # so a worker frozen mid-accept is still accountable.
                while pending and pending[0][0] <= now and self._idle:
                    _ready, _seq, index = heapq.heappop(pending)
                    if index in completed:
                        continue
                    worker_id = self._idle.pop()
                    attempts[index] += 1
                    assigned[worker_id] = _Assignment(
                        index=index, attempt=attempts[index], last_seen=now)
                    self._queues[worker_id].put(
                        (tasks_by_index[index], attempts[index]))

                if self.degraded and not self._workers:
                    yield from self._run_serially(tasks_by_index, completed)
                    return

                # Drain everything already queued, then one blocking poll —
                # so a chatty pool cannot starve the deadline checks below.
                messages: list[tuple] = []
                while True:
                    try:
                        messages.append(result_queue.get_nowait())
                    except queue_mod.Empty:
                        break
                if not messages:
                    try:
                        messages.append(
                            result_queue.get(timeout=cfg.poll_interval_s))
                    except queue_mod.Empty:
                        pass
                for message in messages:
                    kind, worker_id = message[0], message[1]
                    assignment = assigned.get(worker_id)
                    if assignment is not None:
                        assignment.last_seen = time.monotonic()
                    if kind == "done":
                        index, record = message[2], message[3]
                        assigned.pop(worker_id, None)
                        if (worker_id in self._workers
                                and worker_id not in self._idle):
                            self._idle.append(worker_id)
                        if index not in completed:
                            completed.add(index)
                            yield index, record
                    elif kind == "error":
                        index, detail = message[2], message[3]
                        assigned.pop(worker_id, None)
                        if (worker_id in self._workers
                                and worker_id not in self._idle):
                            self._idle.append(worker_id)
                        quarantine = escalate(index, "worker-error", detail)
                        if quarantine is not None:
                            completed.add(index)
                            yield index, quarantine

                now = time.monotonic()
                # Hang detection: assigned worker silent past the deadline.
                if cfg.deadline_s is not None:
                    for worker_id in list(assigned):
                        assignment = assigned[worker_id]
                        silent = now - assignment.last_seen
                        if silent <= cfg.deadline_s:
                            continue
                        self._event(
                            f"worker {worker_id} missed its heartbeat "
                            f"deadline on point {assignment.index} "
                            f"({silent:.1f}s silent); killing")
                        assigned.pop(worker_id, None)
                        self._kill_worker(worker_id)
                        self.worker_deaths += 1
                        get_registry().counter("pool.worker.deaths").inc()
                        flight.record("pool.worker_death", worker=worker_id,
                                      cause="hang", index=assignment.index,
                                      silent_s=round(silent, 2))
                        flight.dump("pool-worker-hang", details={
                            "worker": worker_id, "index": assignment.index,
                            "silent_s": round(silent, 2),
                        })
                        quarantine = escalate(
                            assignment.index, "worker-hang",
                            f"no heartbeat for {silent:.1f}s")
                        if quarantine is not None:
                            completed.add(assignment.index)
                            yield assignment.index, quarantine
                        self._maybe_respawn(result_queue, telemetry_queue)

                # Crash detection: a worker process that died outright.
                for worker_id, proc in list(self._workers.items()):
                    if proc.is_alive():
                        continue
                    exitcode = proc.exitcode
                    assignment = assigned.pop(worker_id, None)
                    self._kill_worker(worker_id)
                    self.worker_deaths += 1
                    get_registry().counter("pool.worker.deaths").inc()
                    flight.record(
                        "pool.worker_death", worker=worker_id, cause="crash",
                        exitcode=exitcode,
                        index=(assignment.index
                               if assignment is not None else None))
                    flight.dump("pool-worker-crash", details={
                        "worker": worker_id, "exitcode": exitcode,
                        "index": (assignment.index
                                  if assignment is not None else None),
                    })
                    if assignment is not None:
                        self._event(
                            f"worker {worker_id} died on point "
                            f"{assignment.index} (exitcode {exitcode})")
                        quarantine = escalate(
                            assignment.index, "worker-crash",
                            f"worker exitcode {exitcode}")
                        if quarantine is not None:
                            completed.add(assignment.index)
                            yield assignment.index, quarantine
                    else:
                        self._event(
                            f"idle worker {worker_id} died "
                            f"(exitcode {exitcode})")
                    self._maybe_respawn(result_queue, telemetry_queue)
        finally:
            self._shutdown()

    def _maybe_respawn(self, result_queue: Any, telemetry_queue: Any) -> None:
        """Replace a dead worker, or trip the serial-degradation switch."""
        if self.worker_deaths >= self.config.degrade_after:
            if not self.degraded:
                self.degraded = True
                self._event(
                    f"pool degraded to serial after "
                    f"{self.worker_deaths} worker deaths")
                flight.record("pool.degraded", deaths=self.worker_deaths)
            for worker_id in list(self._workers):
                self._kill_worker(worker_id)
            return
        self._spawn_worker(result_queue, telemetry_queue)

    def _run_serially(
        self,
        tasks_by_index: dict[int, Any],
        completed: set[int],
    ) -> Iterator[tuple[int, Any]]:
        """Degraded mode: finish the remaining points in the parent.

        Worker-site faults never fire here — they are tripped only by the
        supervised worker wrapper, which arms the plan per worker process
        — so a plan that keeps killing workers cannot take the parent
        down with it.
        """
        from repro.experiments.parallel import _run_point_task

        for index in sorted(set(tasks_by_index) - completed):
            try:
                _index, record = _run_point_task(tasks_by_index[index])
            except Exception as exc:
                completed.add(index)
                yield index, exc
                continue
            completed.add(index)
            yield index, record
