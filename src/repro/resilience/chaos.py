"""End-to-end chaos harness: inject faults, recover, prove byte-identity.

``repro chaos`` is the proof that the resilience layer composes: it runs
the same small sweep twice —

1. a **clean reference**: serial, no faults, its own registry;
2. a **chaotic run**: ``--jobs N`` under a seeded
   :class:`~repro.resilience.faults.FaultPlan` (worker crashes, hangs,
   torn writes, disk-full, fsync failures, registry corruption) on the
   supervised pool, then ``fsck --repair`` against the faulted registry —

and asserts the final sweep JSONL **and** registry JSONL are
byte-identical between the two. Worker faults are healed by
kill-and-requeue, append faults by the self-healing atomic append,
registry corruption by hash-verified restore from the sweep store; if
any recovery path leaked a single byte of damage, the comparison fails.

Provenance timestamps are pinned via ``REPRO_PROVENANCE_EPOCH`` for both
runs (every other provenance field is already stable within one host and
checkout), which is what makes registry byte-comparison meaningful.
"""

from __future__ import annotations

import contextlib
import os
import pathlib
import tempfile
from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

from repro.resilience import faults
from repro.resilience.fsck import FsckReport, fsck
from repro.resilience.supervisor import SupervisorConfig

#: Epoch pinned into provenance for both runs of one chaos invocation.
DEFAULT_EPOCH = 1_700_000_000.0

#: Default point grid: small enough to finish in seconds, two workloads
#: so ``--jobs 2`` genuinely overlaps work.
DEFAULT_APPS = ("BFS", "KM")
DEFAULT_CONFIGS = ("base",)
DEFAULT_SCALE = 0.05


@dataclass
class ChaosReport:
    """Outcome of one chaos invocation."""

    out_dir: str
    kinds: list[str]
    points: int
    jobs: int
    seed: int
    store_identical: bool = False
    registry_identical: bool = False
    #: Fault events of the plan, with their parent-side fired state.
    plan_events: list[str] = field(default_factory=list)
    #: Sweep counters of the chaotic run.
    simulated: int = 0
    failed: int = 0
    quarantined_keys: list[str] = field(default_factory=list)
    #: The repair pass over the faulted registry.
    fsck: Optional[FsckReport] = None
    #: Post-repair verification pass (must be clean).
    fsck_verify_ok: bool = False

    @property
    def ok(self) -> bool:
        return (self.store_identical and self.registry_identical
                and not self.failed and self.fsck_verify_ok)


@contextlib.contextmanager
def _pinned_epoch(epoch: float) -> Iterator[None]:
    from repro.registry.provenance import PROVENANCE_EPOCH_ENV

    previous = os.environ.get(PROVENANCE_EPOCH_ENV)
    os.environ[PROVENANCE_EPOCH_ENV] = repr(epoch)
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(PROVENANCE_EPOCH_ENV, None)
        else:
            os.environ[PROVENANCE_EPOCH_ENV] = previous


def run_chaos(
    kinds: Sequence[str],
    *,
    apps: Sequence[str] = DEFAULT_APPS,
    configs: Sequence[str] = DEFAULT_CONFIGS,
    scale: float = DEFAULT_SCALE,
    jobs: int = 2,
    seed: int = 0,
    out_dir: Optional[str] = None,
    deadline_s: float = 5.0,
    heartbeat_interval_s: float = 0.1,
    max_attempts: int = 3,
    backoff_base_s: float = 0.1,
    backoff_cap_s: float = 0.5,
    epoch: float = DEFAULT_EPOCH,
) -> ChaosReport:
    """Run the chaos experiment; see the module docstring for the shape.

    ``kinds`` selects the injected fault classes (any subset of
    :data:`~repro.resilience.faults.FAULT_KINDS`). Artifacts land in
    ``out_dir`` (a fresh temp directory by default): ``clean.jsonl`` /
    ``chaos.jsonl`` sweep stores and ``clean_registry`` /
    ``chaos_registry`` registry roots, left in place for inspection.
    """
    from repro.experiments.configs import experiment_gpu_config
    from repro.experiments.sweep import run_sweep, sweep_points
    from repro.registry.store import RegistryStore

    kinds = list(kinds)
    root = pathlib.Path(
        out_dir if out_dir is not None
        else tempfile.mkdtemp(prefix="repro-chaos-"))
    root.mkdir(parents=True, exist_ok=True)
    points = sweep_points(list(apps), list(configs), scales=(scale,))
    gpu_config = experiment_gpu_config()
    plan = faults.FaultPlan.build(kinds, points=len(points), seed=seed)
    report = ChaosReport(
        out_dir=str(root), kinds=kinds, points=len(points),
        jobs=jobs, seed=seed,
    )

    clean_store = str(root / "clean.jsonl")
    chaos_store = str(root / "chaos.jsonl")
    clean_registry = RegistryStore(root / "clean_registry")
    chaos_registry = RegistryStore(root / "chaos_registry")

    with _pinned_epoch(epoch):
        # 1. Clean reference: serial, fault-free, its own registry.
        run_sweep(points, clean_store, gpu_config=gpu_config,
                  registry=clean_registry)

        # 2. Chaotic run: armed plan, supervised pool.
        supervisor = SupervisorConfig(
            deadline_s=deadline_s,
            heartbeat_interval_s=heartbeat_interval_s,
            max_attempts=max_attempts,
            backoff_base_s=backoff_base_s,
            backoff_cap_s=backoff_cap_s,
            seed=seed,
        )
        faults.arm(plan)
        try:
            summary = run_sweep(
                points, chaos_store, gpu_config=gpu_config,
                registry=chaos_registry, jobs=jobs, supervisor=supervisor,
            )
        finally:
            faults.disarm()
        report.simulated = summary.simulated
        report.failed = summary.failed
        report.quarantined_keys = list(summary.quarantined_keys)

        # 3. Heal the faulted registry from the (self-healed) sweep store.
        report.fsck = fsck(chaos_registry, repair=True,
                           restore_from=chaos_store)
        report.fsck_verify_ok = fsck(chaos_registry).ok

    report.plan_events = [
        f"{event.site}[{event.key}] {event.kind}"
        + (" (fired)" if event.fired else "")
        for event in plan.events
    ]
    report.store_identical = (
        pathlib.Path(clean_store).read_bytes()
        == pathlib.Path(chaos_store).read_bytes())
    report.registry_identical = (
        _registry_bytes(clean_registry) == _registry_bytes(chaos_registry))
    return report


def _registry_bytes(store) -> bytes:
    path = pathlib.Path(store.jsonl_path)
    return path.read_bytes() if path.exists() else b""


def format_chaos(report: ChaosReport) -> str:
    """Human-readable chaos verdict."""
    lines = [
        f"chaos: {report.points} point(s), jobs={report.jobs}, "
        f"seed={report.seed}, faults: {', '.join(report.kinds) or 'none'}",
    ]
    for event in report.plan_events:
        lines.append(f"  plan: {event}")
    lines.append(
        f"chaotic sweep: {report.simulated} simulated, "
        f"{report.failed} failed"
        + (f", quarantined: {', '.join(report.quarantined_keys)}"
           if report.quarantined_keys else ""))
    if report.fsck is not None:
        found = len(report.fsck.issues)
        lines.append(
            f"fsck --repair: {found} issue(s) found"
            + (", store repaired" if report.fsck.repaired else ""))
    lines.append(
        "post-repair fsck: "
        + ("clean" if report.fsck_verify_ok else "STILL DIRTY"))
    lines.append(
        "sweep store:  "
        + ("byte-identical to clean run"
           if report.store_identical else "MISMATCH vs clean run"))
    lines.append(
        "registry:     "
        + ("byte-identical to clean run"
           if report.registry_identical else "MISMATCH vs clean run"))
    lines.append(f"artifacts: {report.out_dir}")
    lines.append("verdict: " + ("OK" if report.ok else "FAILED"))
    return "\n".join(lines)
