"""Atomic file writes: torn output is impossible, not just unlikely.

Two primitives cover every persistence path in the experiment layer:

* :func:`atomic_write` — full-file replace via write-temp → flush →
  fsync → ``os.replace`` (→ best-effort directory fsync). A reader can
  observe the old file or the new file, never a mixture, and a crash at
  any instruction leaves the old file intact.
* :func:`append_line` — one JSONL line as a *single* ``os.write`` on an
  ``O_APPEND`` descriptor, fsynced. A single syscall cannot interleave
  with another writer, and the append path is *self-healing*: the file
  size is snapshotted before the write, and on a short write or an
  ``OSError`` (disk full, I/O error, injected fault) the file is
  truncated back to the snapshot and the append retried — so a torn line
  never survives into the store. Callers of this function are the sole
  writer of their file (the sweep/registry single-writer invariant),
  which is what makes truncate-and-retry safe.

Both primitives carry the :mod:`repro.resilience.faults` hook points for
``torn-write`` / ``disk-full`` / ``fsync-fail`` injection; with no plan
armed the hooks are a single ``is None`` test.
"""

from __future__ import annotations

import contextlib
import os
import pathlib
from typing import Union

from repro.resilience import faults

PathLike = Union[str, "os.PathLike[str]"]

#: Self-healing append retries before the error propagates.
APPEND_RETRIES = 3


def _fsync_dir(path: pathlib.Path) -> None:
    """Best-effort fsync of a directory (persists the rename itself)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return  # platform/filesystem without directory fds
    try:
        os.fsync(fd)
    except OSError:
        pass  # non-fatal: the data write itself was already fsynced
    finally:
        os.close(fd)


def atomic_write(path: PathLike, text: str, encoding: str = "utf-8") -> None:
    """Replace ``path`` with ``text`` atomically (temp + fsync + rename)."""
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    tmp = target.with_name(target.name + f".tmp.{os.getpid()}")
    try:
        with open(tmp, "w", encoding=encoding) as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, target)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp)
        raise
    _fsync_dir(target.parent)


def atomic_write_bytes(path: PathLike, payload: bytes) -> None:
    """Byte-level :func:`atomic_write` (checkpoints, binary artifacts)."""
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    tmp = target.with_name(target.name + f".tmp.{os.getpid()}")
    try:
        with open(tmp, "wb") as fh:
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, target)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp)
        raise
    _fsync_dir(target.parent)


def append_line(path: PathLike, line: str, retries: int = APPEND_RETRIES) -> None:
    """Append one line to ``path`` atomically, healing torn writes.

    The line is written as a single ``os.write`` on an ``O_APPEND``
    descriptor and fsynced. On any failure — short write, ``ENOSPC``,
    fsync error — the file is truncated back to its pre-append size and
    the write retried up to ``retries`` times before the error
    propagates; either the full line is durably on disk or the file is
    byte-identical to before the call.
    """
    payload = (line + "\n").encode("utf-8")
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    fd = os.open(target, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        last_error: Exception | None = None
        for _attempt in range(max(1, retries)):
            start = os.fstat(fd).st_size
            try:
                plan = faults.ACTIVE
                if plan is not None:
                    plan.append_write_fault(fd, payload)
                written = os.write(fd, payload)
                if written != len(payload):
                    raise OSError(
                        f"short write: {written}/{len(payload)} bytes")
                if plan is not None:
                    plan.append_fsync_fault()
                os.fsync(fd)
                return
            except OSError as exc:
                last_error = exc
                # Heal: drop whatever fraction of the line landed so the
                # retry (or the caller's recovery) starts from a clean tail.
                with contextlib.suppress(OSError):
                    os.ftruncate(fd, start)
        assert last_error is not None
        raise last_error
    finally:
        os.close(fd)
