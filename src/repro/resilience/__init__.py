"""Failure injection, detection and recovery for the experiment layer.

Long parallel simulation campaigns are only trustworthy when failures are
*detected, attributed and recovered deterministically*. This package is
that layer:

* :mod:`repro.resilience.faults` — a seeded, deterministic fault injector
  (:class:`~repro.resilience.faults.FaultPlan`) threaded through the sweep
  driver, the process-pool engine and the registry store behind
  zero-overhead hook points (one ``is None`` test when disarmed).
* :mod:`repro.resilience.atomic` — write-temp/fsync/rename full-file
  writes and self-healing ``O_APPEND`` single-syscall line appends, so a
  torn write can never persist into a store or the registry.
* :mod:`repro.resilience.supervisor` — a hardened process pool: per-worker
  heartbeat deadlines escalate hung workers to kill-and-requeue with
  capped exponential backoff and deterministic jitter, poisoned points are
  quarantined after N attempts, and a pool that keeps dying degrades
  gracefully to in-parent serial execution.
* :mod:`repro.resilience.fsck` — registry self-healing: detect truncated
  JSONL tails, hash mismatches, duplicate records and orphaned/missing
  SQLite index rows; quarantine bad entries, restore restorable ones from
  a sweep store, and rebuild the index.
* :mod:`repro.resilience.chaos` — the end-to-end proof: run a sweep under
  a fault schedule and assert the final store and registry are
  byte-identical to a fault-free serial run.
"""

from __future__ import annotations

from repro.resilience.atomic import append_line, atomic_write
from repro.resilience.faults import FAULT_KINDS, FaultEvent, FaultPlan
from repro.resilience.supervisor import PointQuarantined, SupervisorConfig

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultPlan",
    "PointQuarantined",
    "SupervisorConfig",
    "append_line",
    "atomic_write",
]
