"""Seeded, deterministic fault injection.

A :class:`FaultPlan` is a picklable schedule of fault events, each bound
to a *site* (a named hook point in the experiment layer) and a *key*
(which occurrence of that site fires). The schedule is derived from a
seed, so two runs with the same plan inject exactly the same faults at
exactly the same places — which is what lets ``repro chaos`` assert a
faulted run converges to the byte-identical output of a clean one.

Hook points cost one module-global load and an ``is None`` test while no
plan is armed; they are placed on I/O and dispatch paths (appends,
registry ingests, worker task starts), never inside the cycle loop.

Sites and their fault kinds:

========================  ====================================  =========
site                      fires                                 kinds
========================  ====================================  =========
``worker.point``          in a pool worker, before simulating   ``crash``
                          point *key* (first attempt only        ``hang``
                          unless ``every_attempt``)
``append.write``          in the parent, on the *key*-th        ``torn-write``
                          store/registry line append             ``disk-full``
``append.fsync``          on the *key*-th append fsync          ``fsync-fail``
``registry.ingest``       after the *key*-th registry ingest    ``corrupt-record``
========================  ====================================  =========

``crash`` makes the worker ``os._exit``; ``hang`` makes it SIGSTOP
itself (heartbeats cease, which is exactly what the supervisor's
deadline detects). ``torn-write`` persists half a line then fails the
write; ``disk-full`` and ``fsync-fail`` raise transient ``OSError``\\ s.
``corrupt-record`` flips a metric inside the just-ingested registry
record — in the JSONL mirror *and* the SQLite index — producing a
syntactically valid record whose payload hash no longer matches.
"""

from __future__ import annotations

import errno
import json
import os
import random
import signal
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

#: Fault kinds accepted by ``--faults`` (CLI spelling).
FAULT_KINDS = (
    "crash",
    "hang",
    "torn-write",
    "disk-full",
    "fsync-fail",
    "corrupt-record",
)

#: Kinds that fire inside pool workers (site ``worker.point``).
WORKER_KINDS = frozenset({"crash", "hang"})

#: The armed plan of this process; ``None`` keeps every hook inert.
ACTIVE: Optional["FaultPlan"] = None


def arm(plan: Optional["FaultPlan"]) -> None:
    """Install ``plan`` as this process's active fault schedule."""
    global ACTIVE
    ACTIVE = plan


def disarm() -> None:
    """Remove the active plan (hooks become no-ops again)."""
    arm(None)


@dataclass
class FaultEvent:
    """One scheduled fault: fire ``kind`` at occurrence ``key`` of ``site``.

    ``every_attempt`` only matters for worker faults: by default a worker
    fault fires on the *first* attempt of its point only, so the
    supervisor's requeue converges (the retried attempt runs clean). A
    permanently poisoned point — the quarantine test case — sets it.
    """

    site: str
    key: int
    kind: str
    every_attempt: bool = False
    fired: bool = False

    def matches(self, site: str, key: int, attempt: int) -> bool:
        if self.site != site or self.key != key:
            return False
        if self.every_attempt:
            return True
        return not self.fired and attempt <= 1


@dataclass
class FaultPlan:
    """Deterministic, picklable fault schedule.

    Build one with :meth:`build` (seeded placement over a point count) or
    assemble events directly for surgical tests. Occurrence counters for
    parent-side sites live on the plan instance, so consumption state is
    per-process — worker processes receive their own copy and only ever
    consult ``worker.point`` events, which are attempt-gated instead of
    consumption-gated (state cannot propagate back across ``fork``).
    """

    seed: int = 0
    events: list[FaultEvent] = field(default_factory=list)
    #: Per-site occurrence counters (parent-side sites only).
    counters: dict[str, int] = field(default_factory=dict)

    @classmethod
    def build(
        cls,
        kinds: Sequence[str],
        *,
        points: int,
        appends: Optional[int] = None,
        seed: int = 0,
    ) -> "FaultPlan":
        """Place one event per requested kind over ``points`` sweep points.

        Placement is drawn from ``random.Random(seed)``, so the schedule
        is a pure function of ``(kinds, points, appends, seed)``.
        ``appends`` bounds the append-site occurrence indices (default:
        ``points``, since each point appends one store line).
        """
        for kind in kinds:
            if kind not in FAULT_KINDS:
                raise ValueError(
                    f"unknown fault kind {kind!r}; known: {', '.join(FAULT_KINDS)}")
        if points < 1:
            raise ValueError("fault plan needs at least one point")
        rng = random.Random(seed)
        appends = appends if appends is not None else points
        events: list[FaultEvent] = []
        for kind in kinds:
            if kind in WORKER_KINDS:
                events.append(FaultEvent(
                    "worker.point", rng.randrange(points), kind))
            elif kind in ("torn-write", "disk-full"):
                events.append(FaultEvent(
                    "append.write", rng.randrange(max(1, appends)), kind))
            elif kind == "fsync-fail":
                events.append(FaultEvent(
                    "append.fsync", rng.randrange(max(1, appends)), kind))
            else:  # corrupt-record
                events.append(FaultEvent(
                    "registry.ingest", rng.randrange(points), kind))
        return cls(seed=seed, events=events)

    # ------------------------------------------------------------------
    # Hook-side API
    # ------------------------------------------------------------------

    def trip(self, site: str, key: int, attempt: int = 1) -> Optional[str]:
        """Fault kind scheduled for ``(site, key, attempt)``, consuming it."""
        for event in self.events:
            if event.matches(site, key, attempt):
                event.fired = True
                return event.kind
        return None

    def next_occurrence(self, site: str) -> int:
        """Advance and return the occurrence counter for a parent-side site."""
        count = self.counters.get(site, 0)
        self.counters[site] = count + 1
        return count

    # ------------------------------------------------------------------
    # Fault behaviours (called from the hook points)
    # ------------------------------------------------------------------

    def worker_point_fault(self, index: int, attempt: int) -> None:
        """Worker-side hook: crash or hang before simulating point ``index``."""
        kind = self.trip("worker.point", index, attempt)
        if kind == "crash":
            # A hard exit, not an exception: models SIGKILL/OOM. os._exit
            # skips atexit/finally, exactly like the real failure would.
            os._exit(73)
        elif kind == "hang":
            # SIGSTOP freezes every thread, including the heartbeat
            # thread — the supervisor sees heartbeats cease and escalates.
            os.kill(os.getpid(), signal.SIGSTOP)

    def shard_window_fault(self, window_index: int, attempt: int) -> None:
        """Shard-worker hook: crash or hang before executing one epoch window.

        Fires inside a :mod:`repro.shard` worker process at the start of
        epoch ``window_index``. Attempt-gated like ``worker.point``: the
        sharded engine's retry re-forks fresh workers, so a default event
        fires once and the retried attempt runs clean (kill-and-requeue
        converges); ``every_attempt`` forces degradation to serial.
        """
        kind = self.trip("shard.window", window_index, attempt)
        if kind == "crash":
            os._exit(73)
        elif kind == "hang":
            os.kill(os.getpid(), signal.SIGSTOP)

    def append_write_fault(self, fd: int, payload: bytes) -> None:
        """Parent-side hook: fail (and possibly tear) one line append."""
        kind = self.trip("append.write", self.next_occurrence("append.write"))
        if kind == "torn-write":
            os.write(fd, payload[: max(1, len(payload) // 2)])
            raise OSError(errno.EIO, "injected torn write")
        if kind == "disk-full":
            raise OSError(errno.ENOSPC, "injected disk full")

    def append_fsync_fault(self) -> None:
        """Parent-side hook: fail one append fsync."""
        kind = self.trip("append.fsync", self.next_occurrence("append.fsync"))
        if kind == "fsync-fail":
            raise OSError(errno.EIO, "injected fsync failure")

    def registry_ingest_fault(self, store: Any) -> None:
        """Parent-side hook: corrupt the record just ingested into ``store``."""
        kind = self.trip(
            "registry.ingest", self.next_occurrence("registry.ingest"))
        if kind == "corrupt-record":
            corrupt_last_record(store)


def corrupt_last_record(store: Any) -> Optional[str]:
    """Corrupt the newest record of a registry store, returning its run id.

    Flips a metric inside ``data.sweep_record`` (falling back to the
    top-level ``metrics``) of the last JSONL line and mirrors the
    corruption into the SQLite index row, so both read paths serve the
    bad payload. The record stays syntactically valid JSON — only
    content-hash verification (``repro fsck``, the sweep's memo check)
    can tell.
    """
    jsonl_path = store.jsonl_path
    with open(jsonl_path, "r", encoding="utf-8") as fh:
        lines = fh.read().splitlines()
    if not lines:
        return None
    payload = json.loads(lines[-1])
    target = (payload.get("data") or {}).get("sweep_record")
    if not isinstance(target, dict):
        target = payload.setdefault("metrics", {})
    for key, value in sorted(target.items()):
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            target[key] = value + 1.0
            break
    else:
        target["__corrupt__"] = 1.0
    corrupted = json.dumps(payload, sort_keys=True, default=str)
    lines[-1] = corrupted
    from repro.resilience.atomic import atomic_write

    atomic_write(jsonl_path, "\n".join(lines) + "\n")
    import sqlite3

    with sqlite3.connect(store.db_path) as conn:
        conn.execute(
            "UPDATE records SET json = ? WHERE seq = "
            "(SELECT MAX(seq) FROM records)",
            (corrupted,),
        )
    return str(payload.get("run_id"))
