"""Checkpoint/restore of in-flight simulations.

A checkpoint is a pickle of the whole :class:`GPUSimulator` object graph —
warp contexts, scheduler and prefetcher tables (LAWS/SAP included), MSHRs,
pending events, and statistics. Event callbacks are picklable callable
objects by construction (see :mod:`repro.mem.subsystem` and
:mod:`repro.sm.pipeline`), and pickling preserves shared references, so a
restored simulator continues bit-identically to an uninterrupted run.

Files are written atomically (temp file + ``os.replace``) so a crash
mid-write can never leave a truncated checkpoint behind.
"""

from __future__ import annotations

import os
import pickle
import zlib

from repro.errors import CheckpointError

#: Bump when the on-disk layout changes incompatibly.
CHECKPOINT_FORMAT = 1

_MAGIC = "repro-checkpoint"

#: zlib level for lightweight periodic checkpoints: the simulator object
#: graph is mostly small-integer lists, which deflate well, and level 6
#: keeps the profiling pass's per-boundary cost low.
_COMPRESS_LEVEL = 6


def dump_simulator(simulator) -> bytes:
    """Serialise a simulator (mid-run or fresh) to bytes."""
    payload = {
        "magic": _MAGIC,
        "format": CHECKPOINT_FORMAT,
        "cycle": simulator.current_cycle,
        "kernel": simulator.kernel_name,
        "simulator": simulator,
    }
    try:
        return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:  # pickling errors span TypeError/AttributeError/...
        raise CheckpointError(
            f"cannot serialise simulator state: {exc}",
            details={"kernel": simulator.kernel_name,
                     "cycle": simulator.current_cycle},
        ) from exc


def load_simulator(blob: bytes):
    """Reconstruct a simulator from :func:`dump_simulator` bytes."""
    try:
        payload = pickle.loads(blob)
    except Exception as exc:
        raise CheckpointError(f"cannot deserialise checkpoint: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("magic") != _MAGIC:
        raise CheckpointError("not a repro checkpoint")
    if payload.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(
            f"checkpoint format {payload.get('format')!r} unsupported "
            f"(expected {CHECKPOINT_FORMAT})",
            details={"format": payload.get("format")},
        )
    from repro.sm.simulator import GPUSimulator

    simulator = payload.get("simulator")
    if not isinstance(simulator, GPUSimulator):
        raise CheckpointError("checkpoint payload is not a GPUSimulator")
    return simulator


def dump_simulator_compressed(simulator) -> bytes:
    """:func:`dump_simulator`, zlib-compressed (periodic profile checkpoints)."""
    return zlib.compress(dump_simulator(simulator), _COMPRESS_LEVEL)


def load_simulator_compressed(blob: bytes):
    """Reconstruct a simulator from :func:`dump_simulator_compressed` bytes."""
    try:
        raw = zlib.decompress(blob)
    except zlib.error as exc:
        raise CheckpointError(f"corrupt compressed checkpoint: {exc}") from exc
    return load_simulator(raw)


class CheckpointSeries:
    """Bounded series of periodic lightweight checkpoints (profiling pass).

    The sampled-simulation profiler offers a compressed snapshot at every
    interval boundary; once the series would exceed ``max_entries`` it
    doubles its stride and prunes retained entries to the new stride, so
    arbitrarily long runs keep a bounded, evenly spaced checkpoint set.
    Thinning is a pure function of the boundary indices offered, which
    keeps the retained set deterministic for identical runs.
    """

    def __init__(self, max_entries: int = 256):
        if max_entries < 1:
            raise ValueError("checkpoint series needs max_entries >= 1")
        self.max_entries = max_entries
        self.stride = 1
        #: boundary index -> (cycle, compressed blob), ascending insertion.
        self._entries: dict[int, tuple[int, bytes]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def offer(self, index: int, simulator) -> bool:
        """Snapshot ``simulator`` for boundary ``index`` if the stride keeps it."""
        if index % self.stride:
            return False
        self._entries[index] = (
            simulator.current_cycle,
            dump_simulator_compressed(simulator),
        )
        while len(self._entries) > self.max_entries:
            self.stride *= 2
            # Deterministic: offer() inserts ascending boundary indices, and
            # this key-filtered rebuild preserves that insertion order.
            self._entries = {
                i: entry
                for i, entry in self._entries.items()  # simlint: ignore[SL001]
                if i % self.stride == 0
            }
        return True

    def cycles(self) -> list[int]:
        """Retained checkpoint cycles, ascending."""
        return sorted(cycle for cycle, _ in self._entries.values())

    def entries(self) -> list[tuple[int, bytes]]:
        """Retained ``(cycle, compressed blob)`` pairs, ascending by cycle."""
        return sorted(self._entries.values(), key=lambda entry: entry[0])

    def best_for(self, target_cycle: int):
        """Newest retained checkpoint at or before ``target_cycle``, or None."""
        best = None
        # Max-scan over retained checkpoints is order-insensitive: the result
        # depends only on the (cycle, blob) set, not on iteration order.
        for cycle, blob in self._entries.values():  # simlint: ignore[SL001]
            if cycle <= target_cycle and (best is None or cycle > best[0]):
                best = (cycle, blob)
        return best


def save_checkpoint(simulator, path: str) -> None:
    """Atomically write a simulator checkpoint to ``path``."""
    blob = dump_simulator(simulator)
    tmp = f"{path}.tmp"
    try:
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        with open(tmp, "wb") as fh:
            fh.write(blob)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except OSError as exc:
        raise CheckpointError(
            f"cannot write checkpoint {path!r}: {exc}",
            details={"path": path},
        ) from exc


def load_checkpoint(path: str):
    """Load a simulator checkpoint written by :func:`save_checkpoint`."""
    try:
        with open(path, "rb") as fh:
            blob = fh.read()
    except OSError as exc:
        raise CheckpointError(
            f"cannot read checkpoint {path!r}: {exc}",
            details={"path": path},
        ) from exc
    return load_simulator(blob)
