"""Checkpoint/restore of in-flight simulations.

A checkpoint is a pickle of the whole :class:`GPUSimulator` object graph —
warp contexts, scheduler and prefetcher tables (LAWS/SAP included), MSHRs,
pending events, and statistics. Event callbacks are picklable callable
objects by construction (see :mod:`repro.mem.subsystem` and
:mod:`repro.sm.pipeline`), and pickling preserves shared references, so a
restored simulator continues bit-identically to an uninterrupted run.

Files are written atomically (temp file + ``os.replace``) so a crash
mid-write can never leave a truncated checkpoint behind.
"""

from __future__ import annotations

import os
import pickle

from repro.errors import CheckpointError

#: Bump when the on-disk layout changes incompatibly.
CHECKPOINT_FORMAT = 1

_MAGIC = "repro-checkpoint"


def dump_simulator(simulator) -> bytes:
    """Serialise a simulator (mid-run or fresh) to bytes."""
    payload = {
        "magic": _MAGIC,
        "format": CHECKPOINT_FORMAT,
        "cycle": simulator.current_cycle,
        "kernel": simulator.kernel_name,
        "simulator": simulator,
    }
    try:
        return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:  # pickling errors span TypeError/AttributeError/...
        raise CheckpointError(
            f"cannot serialise simulator state: {exc}",
            details={"kernel": simulator.kernel_name,
                     "cycle": simulator.current_cycle},
        ) from exc


def load_simulator(blob: bytes):
    """Reconstruct a simulator from :func:`dump_simulator` bytes."""
    try:
        payload = pickle.loads(blob)
    except Exception as exc:
        raise CheckpointError(f"cannot deserialise checkpoint: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("magic") != _MAGIC:
        raise CheckpointError("not a repro checkpoint")
    if payload.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(
            f"checkpoint format {payload.get('format')!r} unsupported "
            f"(expected {CHECKPOINT_FORMAT})",
            details={"format": payload.get("format")},
        )
    from repro.sm.simulator import GPUSimulator

    simulator = payload.get("simulator")
    if not isinstance(simulator, GPUSimulator):
        raise CheckpointError("checkpoint payload is not a GPUSimulator")
    return simulator


def save_checkpoint(simulator, path: str) -> None:
    """Atomically write a simulator checkpoint to ``path``."""
    blob = dump_simulator(simulator)
    tmp = f"{path}.tmp"
    try:
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        with open(tmp, "wb") as fh:
            fh.write(blob)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except OSError as exc:
        raise CheckpointError(
            f"cannot write checkpoint {path!r}: {exc}",
            details={"path": path},
        ) from exc


def load_checkpoint(path: str):
    """Load a simulator checkpoint written by :func:`save_checkpoint`."""
    try:
        with open(path, "rb") as fh:
            blob = fh.read()
    except OSError as exc:
        raise CheckpointError(
            f"cannot read checkpoint {path!r}: {exc}",
            details={"path": path},
        ) from exc
    return load_simulator(blob)
