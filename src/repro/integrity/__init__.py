"""Simulation integrity layer: invariant guards, watchdog, checkpointing.

Long sweeps must survive bugs, hangs, and interruptions instead of
silently corrupting results, so every simulation can be made
self-checking (:class:`InvariantChecker`), bounded (:class:`Watchdog`),
and resumable (:mod:`repro.integrity.checkpoint`). The pieces are wired
into :class:`repro.sm.simulator.GPUSimulator` via
``GPUConfig.integrity_interval`` and ``GPUConfig.watchdog_cycles``; the
crash-safe sweep driver in :mod:`repro.experiments.sweep` builds on all
three.
"""

from repro.integrity.checkpoint import (
    CheckpointSeries,
    dump_simulator,
    dump_simulator_compressed,
    load_checkpoint,
    load_simulator,
    load_simulator_compressed,
    save_checkpoint,
)
from repro.integrity.invariants import InvariantChecker
from repro.integrity.watchdog import Watchdog

__all__ = [
    "CheckpointSeries",
    "InvariantChecker",
    "Watchdog",
    "dump_simulator",
    "dump_simulator_compressed",
    "load_simulator",
    "load_simulator_compressed",
    "save_checkpoint",
    "load_checkpoint",
]
