"""Livelock/deadlock watchdog with structured diagnostic dumps.

Progress is defined as *an instruction issuing or a line fill completing*.
A simulation whose clock keeps advancing (event churn, fast-forward jumps)
without either of those for ``stall_cycles`` simulated cycles is livelocked
— e.g. a buggy fill path that keeps re-deferring itself — and is aborted
with :class:`~repro.errors.WatchdogTimeout`. The hard cycle budget
(``GPUConfig.max_cycles``) funnels through the same dump machinery so every
abort carries per-warp status, MSHR occupancy, and DRAM queue depths.
"""

from __future__ import annotations

import json
import os
from typing import Optional

from repro.errors import WatchdogTimeout


class Watchdog:
    """Detects wall-progress without forward progress.

    Holds only plain counters and paths, so it checkpoints along with the
    simulator it guards.
    """

    def __init__(self, stall_cycles: int = 0, dump_dir: Optional[str] = None):
        if stall_cycles < 0:
            raise ValueError("watchdog threshold cannot be negative")
        #: Stall threshold in cycles; 0 disables stall detection (the dump
        #: machinery stays available for cycle-budget aborts).
        self.stall_cycles = stall_cycles
        if dump_dir is None:
            dump_dir = os.environ.get("REPRO_DUMP_DIR") or None
        self.dump_dir = dump_dir
        self._last_signature: Optional[tuple[int, int]] = None
        self._last_progress_cycle = 0

    def observe(self, simulator, now: int) -> None:
        """Record progress at ``now``; raise on a livelocked simulation."""
        if not self.stall_cycles:
            return
        signature = (simulator.stats.instructions, simulator.fills_completed)
        if signature != self._last_signature:
            self._last_signature = signature
            self._last_progress_cycle = now
            return
        stalled = now - self._last_progress_cycle
        if stalled < self.stall_cycles:
            return
        self.abort(
            simulator, now,
            f"no instruction issued and no fill completed for {stalled} "
            f"cycles (threshold {self.stall_cycles})",
        )

    def budget_exceeded(self, simulator, now: int, budget: int) -> None:
        """Abort because the hard cycle budget was exhausted."""
        self.abort(simulator, now, f"exceeded {budget} cycles")

    def abort(self, simulator, now: int, reason: str) -> None:
        """Build the diagnostic dump, persist it, raise WatchdogTimeout."""
        from repro.telemetry import flight

        details = simulator.describe(now)
        details["reason"] = reason
        dump_path = self._write_dump(simulator, now, details)
        if dump_path is not None:
            details["dump_path"] = dump_path
        flight.record("watchdog.abort", kernel=simulator.kernel_name,
                      cycle=now, reason=reason)
        flight_path = flight.dump(
            "watchdog-abort", directory=self.dump_dir,
            details={"kernel": simulator.kernel_name, "cycle": now,
                     "reason": reason},
        )
        if flight_path is not None:
            details["flight_dump_path"] = flight_path
        summary = _summarise(details)
        raise WatchdogTimeout(
            f"kernel {simulator.kernel_name!r} {reason} at cycle {now}"
            + (f" [{summary}]" if summary else "")
            + (f" (dump: {dump_path})" if dump_path else ""),
            details=details,
        )

    def _write_dump(self, simulator, now: int, details: dict) -> Optional[str]:
        if self.dump_dir is None:
            return None
        os.makedirs(self.dump_dir, exist_ok=True)
        name = f"watchdog-{simulator.kernel_name}-cycle{now}.json"
        path = os.path.join(self.dump_dir, name)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(details, fh, indent=2, sort_keys=True, default=str)
            fh.write("\n")
        os.replace(tmp, path)
        return path


def _summarise(details: dict) -> str:
    """One-line digest of a dump for the exception message."""
    parts = []
    sms = details.get("sms", [])
    blocked = sum(
        1 for sm in sms for w in sm.get("warps", ())
        if not w["finished"] and w["outstanding"]
    )
    unfinished = sum(
        1 for sm in sms for w in sm.get("warps", ()) if not w["finished"]
    )
    if sms:
        parts.append(f"{unfinished} warps unfinished, {blocked} blocked on memory")
    memory = details.get("memory", {})
    mshrs = memory.get("mshrs")
    if mshrs:
        live = sum(m["live"] for m in mshrs)
        cap = sum(m["capacity"] for m in mshrs)
        parts.append(f"MSHRs {live}/{cap}")
    depths = memory.get("dram_queue_depths")
    if depths:
        parts.append(f"max DRAM queue {max(depths)} cycles")
    return "; ".join(parts)
