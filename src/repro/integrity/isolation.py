"""Runtime write instrumentation behind ``repro lint --verify-isolation``.

The static effect analysis (:mod:`repro.analysis.effects`) *claims* that
every mutable location reachable from ``SMCore.cycle`` is SM-private or
behind a declared boundary class. This module provides the dynamic half
of the proof: a :class:`WriteRecorder` that patches ``__setattr__`` on
the simulator's hot classes (``repro.sm.*``, ``repro.mem.*``,
``repro.stats.counters``) and attributes every attribute write to the
execution context it happened under — ``init`` (simulator construction),
``epoch`` (the serial inter-SM portion of a tick: event drain, telemetry,
integrity) or ``sm<N>`` (inside SM *N*'s ``cycle``).

Event callbacks are the subtle case: an ``_L1FillEvent`` is *created*
inside ``sm<N>`` but *executed* later from the epoch's event drain. Under
a parallel cycle loop it would run on SM *N*'s worker, so the recorder
replays the creation context: instrumented classes that define
``__call__`` re-enter the context they were first written under
(creation-context replay), attributing the fill's writes to the SM that
owns them.

Everything is restored in :meth:`WriteRecorder.uninstall`; the recorder
is strictly a scoped, opt-in diagnostic.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional

#: Context label for writes during simulator construction.
CTX_INIT = "init"
#: Context label for the serial portion of a tick (events, telemetry).
CTX_EPOCH = "epoch"


class WriteRecorder:
    """Records ``(class, attr) -> {context}`` plus per-object SM writers."""

    def __init__(self) -> None:
        self.context = CTX_INIT
        #: (class name, attr) -> set of contexts that wrote it.
        self.writes: dict[tuple[str, str], set[str]] = {}
        #: id(obj) -> (mro class names, set of sm contexts, attrs sm-written).
        self.objects: dict[int, tuple[tuple[str, ...], set[str], set[str]]] = {}
        #: id(obj) -> context of the first observed write (creation context).
        self.first_ctx: dict[int, str] = {}
        #: class names that saw at least one non-init write.
        self.touched_classes: set[str] = set()
        self.total_writes = 0
        self._patches: list[tuple[type, str, bool, Any]] = []
        #: Strong refs to every recorded object — ``id()`` keys above are
        #: only unique while the object is alive, so pin them (the smoke
        #: run is small; this is a diagnostic mode, not a hot path).
        self._refs: list[Any] = []

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def record(self, obj: Any, attr: str) -> None:
        ctx = self.context
        cls = type(obj)
        self.total_writes += 1
        self.writes.setdefault((cls.__name__, attr), set()).add(ctx)
        key = id(obj)  # simlint: ignore[SL001] — diagnostic identity map, never ordered over
        if key not in self.first_ctx:
            self.first_ctx[key] = ctx
            self._refs.append(obj)
        if ctx != CTX_INIT:
            self.touched_classes.add(cls.__name__)
        if ctx.startswith("sm"):
            entry = self.objects.get(key)
            if entry is None:
                mro = tuple(
                    base.__name__ for base in cls.__mro__ if base is not object
                )
                entry = (mro, set(), set())
                self.objects[key] = entry
            entry[1].add(ctx)
            entry[2].add(attr)

    # ------------------------------------------------------------------
    # Instrumentation
    # ------------------------------------------------------------------

    def install(self, classes: Iterable[type]) -> None:
        """Patch ``__setattr__`` (and ``__call__`` replay) on ``classes``.

        Classes are processed bases-first so a subclass that merely
        inherits an already-instrumented ``__setattr__`` is not wrapped a
        second time.
        """
        ordered = sorted(set(classes), key=lambda c: len(c.__mro__))
        for cls in ordered:
            current = getattr(cls, "__setattr__")
            if getattr(current, "_simlint_recorder", None) is self:
                pass  # inherited instrumented setattr covers this class
            else:
                self._patch(cls, "__setattr__", self._make_setattr(current))
            call = cls.__dict__.get("__call__")
            if call is not None and not hasattr(call, "_simlint_recorder"):
                self._patch(cls, "__call__", self._make_call(call))

    def _patch(self, cls: type, name: str, wrapper: Any) -> None:
        had_own = name in cls.__dict__
        original = cls.__dict__.get(name)
        try:
            setattr(cls, name, wrapper)
        except (AttributeError, TypeError):
            return  # immutable type; leave it uninstrumented
        self._patches.append((cls, name, had_own, original))

    def _make_setattr(
        self, original: Callable[[Any, str, Any], None]
    ) -> Callable[[Any, str, Any], None]:
        recorder = self

        def instrumented(obj: Any, attr: str, value: Any) -> None:
            original(obj, attr, value)
            recorder.record(obj, attr)

        instrumented._simlint_recorder = recorder  # type: ignore[attr-defined]
        return instrumented

    def _make_call(self, original: Callable[..., Any]) -> Callable[..., Any]:
        recorder = self

        def replayed(obj: Any, *call_args: Any, **call_kwargs: Any) -> Any:
            # Keying a diagnostic-only identity map, never ordered over.
            created_in = recorder.first_ctx.get(id(obj))  # simlint: ignore[SL001]
            if created_in is None or not created_in.startswith("sm"):
                return original(obj, *call_args, **call_kwargs)
            saved = recorder.context
            recorder.context = created_in
            try:
                return original(obj, *call_args, **call_kwargs)
            finally:
                recorder.context = saved

        replayed._simlint_recorder = recorder  # type: ignore[attr-defined]
        return replayed

    def wrap_cycle(self, sm_class: type) -> None:
        """Patch ``sm_class.cycle`` to enter the per-SM context."""
        recorder = self
        original = sm_class.cycle

        def cycling(sm: Any, now: int) -> bool:
            saved = recorder.context
            recorder.context = f"sm{sm.sm_id}"
            try:
                return bool(original(sm, now))
            finally:
                recorder.context = saved

        cycling._simlint_recorder = recorder  # type: ignore[attr-defined]
        self._patch(sm_class, "cycle", cycling)

    def uninstall(self) -> None:
        """Undo every patch, newest first."""
        for cls, name, had_own, original in reversed(self._patches):
            if had_own:
                setattr(cls, name, original)
            else:
                try:
                    delattr(cls, name)
                except AttributeError:
                    pass
        self._patches.clear()


def hot_simulator_classes() -> list[type]:
    """Classes whose writes the sanitizer observes: sm/, mem/, shard/, stats."""
    import inspect

    import repro.mem.cache
    import repro.mem.coalescer
    import repro.mem.dram
    import repro.mem.l2
    import repro.mem.mshr
    import repro.mem.request
    import repro.mem.subsystem
    import repro.mem.tags
    import repro.mem.victim
    import repro.shard.lane
    import repro.shard.proxy
    import repro.sm.pipeline
    import repro.sm.warp
    import repro.stats.counters

    modules = [
        repro.sm.pipeline,
        repro.sm.warp,
        repro.mem.cache,
        repro.mem.coalescer,
        repro.mem.dram,
        repro.mem.l2,
        repro.mem.mshr,
        repro.mem.request,
        repro.mem.subsystem,
        repro.mem.tags,
        repro.mem.victim,
        repro.shard.lane,
        repro.shard.proxy,
        repro.stats.counters,
    ]
    classes: list[type] = []
    for module in modules:
        for _, obj in inspect.getmembers(module, inspect.isclass):
            if obj.__module__ == module.__name__:
                classes.append(obj)
    return classes


def sm_context_of(label: str) -> Optional[int]:
    """Parse ``sm<N>`` labels back to the SM index (None for init/epoch)."""
    if label.startswith("sm") and label[2:].isdigit():
        return int(label[2:])
    return None
