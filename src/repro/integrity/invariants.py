"""Cadenced conservation checks over live simulator state.

The checks themselves live next to the state they audit
(:meth:`repro.mem.subsystem.MemorySubsystem.check_invariants`,
:meth:`repro.sm.pipeline.SMCore.check_invariants`); this module owns the
cadence and the simulator-wide invariants that no single component can
see — most importantly that the fast-forward clock only moves forward.

Checks are read-only: a run with guards enabled produces bit-identical
statistics to one without.
"""

from __future__ import annotations

from repro.errors import InvariantError


class InvariantChecker:
    """Runs every component's conservation checks at a fixed cycle cadence.

    Holds only plain counters, so it checkpoints along with the simulator.
    """

    def __init__(self, interval: int):
        if interval < 1:
            raise ValueError("invariant check interval must be >= 1 cycle")
        self.interval = interval
        #: Cycle of the last completed sweep (-inf semantics via None).
        self._last_checked: int | None = None
        #: Total sweeps executed (mirrored into ``SimStats.integrity_checks``).
        self.checks_run = 0

    def maybe_check(self, simulator, now: int) -> None:
        """Run a sweep if at least ``interval`` cycles passed since the last."""
        if self._last_checked is not None and now - self._last_checked < self.interval:
            return
        self.check(simulator, now)

    def check(self, simulator, now: int) -> None:
        """Run one full sweep immediately; raises :class:`InvariantError`."""
        self._last_checked = now
        self.checks_run += 1
        simulator.stats.integrity_checks += 1
        last_now = simulator.last_checked_cycle
        if last_now is not None and now < last_now:
            raise InvariantError(
                f"clock moved backwards: cycle {now} after {last_now}",
                details={"cycle": now, "previous_cycle": last_now,
                         "invariant": "monotonic clock"},
            )
        simulator.subsystem.check_invariants(now)
        for sm in simulator.sms:
            sm.check_invariants(now)
