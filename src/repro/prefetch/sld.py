"""SLD: Spatial Locality Detection prefetching (Jog et al., ISCA '13).

Cache lines are grouped into macro-blocks of four consecutive lines. When
a second distinct line of a macro-block is touched, the remaining two lines
are prefetched. The scheme is cheap but only covers strides below two cache
lines (256 B with 128 B lines) — the limitation Section III-C demonstrates
against Table I's large strides.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.mem.request import LoadAccess
from repro.prefetch.base import Prefetcher, PrefetchCandidate


class SLDPrefetcher(Prefetcher):
    """Macro-block (4-line) spatial prefetcher."""

    name = "sld"

    LINES_PER_BLOCK = 4

    def __init__(self, line_size: int = 128, table_entries: int = 64):
        super().__init__()
        self._line = line_size
        self._block = line_size * self.LINES_PER_BLOCK
        self._capacity = table_entries
        #: macro-block base -> bitmap of touched lines.
        self._blocks: OrderedDict[int, int] = OrderedDict()
        #: blocks whose prefetch already fired (avoid re-issuing).
        self._fired: OrderedDict[int, None] = OrderedDict()

    def reset(self, num_warps: int) -> None:
        self._blocks.clear()
        self._fired.clear()

    def observe_load(self, access: LoadAccess) -> list[PrefetchCandidate]:
        out: list[PrefetchCandidate] = []
        for line in access.line_addrs:
            out.extend(self.observe_line(line, hit=False, cycle=access.cycle))
        return out

    def observe_line(self, line_addr: int, hit: bool, cycle: int) -> list[PrefetchCandidate]:
        self.events += 1
        base = line_addr - (line_addr % self._block)
        slot = (line_addr - base) // self._line
        bitmap = self._blocks.get(base, 0) | (1 << slot)
        self._touch(base, bitmap)
        if bin(bitmap).count("1") < 2 or base in self._fired:
            return []
        self._fire(base)
        return [
            PrefetchCandidate(base + i * self._line)
            for i in range(self.LINES_PER_BLOCK)
            if not bitmap & (1 << i)
        ]

    def _touch(self, base: int, bitmap: int) -> None:
        if base in self._blocks:
            self._blocks.move_to_end(base)
        elif len(self._blocks) >= self._capacity:
            self._blocks.popitem(last=False)
        self._blocks[base] = bitmap

    def _fire(self, base: int) -> None:
        if len(self._fired) >= self._capacity:
            self._fired.popitem(last=False)
        self._fired[base] = None
