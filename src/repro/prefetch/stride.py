"""STR: per-PC stride prefetching (Section III-C's STR baseline).

One table entry per static load PC holds the most recent address and the
last observed delta. When a newly computed delta confirms the stored one,
the next ``degree`` addresses along the stride are prefetched; otherwise
the entry adapts and nothing is issued (the adaptive gate that keeps
Figure 14's traffic near baseline). Because warp schedulers interleave
warps over the same static load, the per-PC delta is normally the
*inter-warp* stride — which can be arbitrarily large, unlike the 4-line
macro-blocks SLD covers (Section III-C). Under greedy schedulers the
consecutive-execution stream is less regular and STR fires less — the
behaviour the paper's Figure 3 reflects.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from repro.mem.request import LoadAccess
from repro.prefetch.base import Prefetcher, PrefetchCandidate


@dataclass
class _StrideEntry:
    last_addr: int
    stride: Optional[int] = None


class STRPrefetcher(Prefetcher):
    """PC-indexed, confirmation-gated stride prefetcher."""

    name = "str"

    def __init__(self, table_entries: int = 16, degree: int = 2):
        super().__init__()
        if degree < 1:
            raise ValueError("prefetch degree must be >= 1")
        self._capacity = table_entries
        self._degree = degree
        self._table: OrderedDict[int, _StrideEntry] = OrderedDict()

    def reset(self, num_warps: int) -> None:
        self._table.clear()

    def observe_load(self, access: LoadAccess) -> list[PrefetchCandidate]:
        self.events += 1
        entry = self._table.get(access.pc)
        if entry is None:
            self._insert(access.pc, _StrideEntry(access.primary_addr))
            return []
        self._table.move_to_end(access.pc)
        new_stride = access.primary_addr - entry.last_addr
        confirmed = new_stride == entry.stride and new_stride != 0
        entry.stride = new_stride
        entry.last_addr = access.primary_addr
        if not confirmed:
            return []
        return [
            PrefetchCandidate(access.primary_addr + k * new_stride)
            for k in range(1, self._degree + 1)
        ]

    def _insert(self, pc: int, entry: _StrideEntry) -> None:
        if len(self._table) >= self._capacity:
            self._table.popitem(last=False)
        self._table[pc] = entry

    def stride_for(self, pc: int) -> Optional[int]:
        """Currently tracked stride of a static load (diagnostics/tests)."""
        entry = self._table.get(pc)
        return entry.stride if entry else None
