"""No-op prefetcher (the baseline configuration)."""

from __future__ import annotations

from repro.mem.request import LoadAccess
from repro.prefetch.base import Prefetcher, PrefetchCandidate


class NullPrefetcher(Prefetcher):
    """Issues nothing."""

    name = "none"

    def observe_load(self, access: LoadAccess) -> list[PrefetchCandidate]:
        return []
