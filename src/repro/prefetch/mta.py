"""MTA: per-warp stride prefetching (the per-warp half of Lee et al.,
MICRO '10).

Unlike STR's single per-PC entry, MTA keys its table by ``(PC, warp)`` and
follows each warp's own address stream, so it keeps firing under greedy
schedulers where consecutive executions of a PC come from one warp. This
is the detector SAP's self-prefetch extension borrows; exposing it as a
standalone prefetcher lets the ablation benches separate "per-warp stream
coverage" from APRES's group mechanism.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from repro.mem.request import LoadAccess
from repro.prefetch.base import Prefetcher, PrefetchCandidate


@dataclass
class _StreamEntry:
    last_addr: int
    stride: Optional[int] = None


class MTAPrefetcher(Prefetcher):
    """(PC, warp)-indexed, confirmation-gated stride prefetcher."""

    name = "mta"

    def __init__(self, table_entries: int = 256, degree: int = 2):
        super().__init__()
        if degree < 1:
            raise ValueError("prefetch degree must be >= 1")
        self._capacity = table_entries
        self._degree = degree
        self._table: OrderedDict[tuple[int, int], _StreamEntry] = OrderedDict()

    def reset(self, num_warps: int) -> None:
        self._table.clear()

    def observe_load(self, access: LoadAccess) -> list[PrefetchCandidate]:
        self.events += 1
        key = (access.pc, access.warp_id)
        entry = self._table.get(key)
        if entry is None:
            if len(self._table) >= self._capacity:
                self._table.popitem(last=False)
            self._table[key] = _StreamEntry(access.primary_addr)
            return []
        self._table.move_to_end(key)
        stride = access.primary_addr - entry.last_addr
        confirmed = stride == entry.stride and stride != 0
        entry.stride = stride
        entry.last_addr = access.primary_addr
        if not confirmed:
            return []
        return [
            PrefetchCandidate(
                access.primary_addr + k * stride, target_warp=access.warp_id
            )
            for k in range(1, self._degree + 1)
        ]

    def stride_for(self, pc: int, warp_id: int) -> Optional[int]:
        """Currently tracked stride of a (load, warp) stream (diagnostics)."""
        entry = self._table.get((pc, warp_id))
        return entry.stride if entry else None
