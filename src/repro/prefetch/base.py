"""Prefetcher interface.

The pipeline shows every executed load to the prefetcher (PC, warp,
primary byte address, per-line outcomes) and issues the returned
candidates into the L1 as prefetch-typed fills. A candidate may name the
warp it covers; LAWS uses that feedback to prioritise prefetch targets
(Section IV-B), other schedulers ignore it.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional

from repro.mem.request import LoadAccess


@dataclass(frozen=True)
class PrefetchCandidate:
    """One address the prefetcher wants brought into L1."""

    addr: int
    #: Warp whose future demand this prefetch covers, if known.
    target_warp: Optional[int] = None


class Prefetcher(abc.ABC):
    """Base class; ``events`` feeds the energy model."""

    name = "base"

    def __init__(self) -> None:
        self.events = 0
        #: Per-SM telemetry proxy (set by the pipeline when tracing).
        self.telemetry = None

    def reset(self, num_warps: int) -> None:
        """(Re)initialise per-SM state."""

    @abc.abstractmethod
    def observe_load(self, access: LoadAccess) -> list[PrefetchCandidate]:
        """React to an executed load; return prefetches to issue."""

    def observe_line(self, line_addr: int, hit: bool, cycle: int) -> list[PrefetchCandidate]:
        """React to one coalesced line access (macro-block schemes)."""
        return []
