"""Hardware prefetchers: STR (per-PC stride) and SLD (macro-block), plus no-op."""

from repro.prefetch.base import Prefetcher, PrefetchCandidate
from repro.prefetch.mta import MTAPrefetcher
from repro.prefetch.none import NullPrefetcher
from repro.prefetch.registry import PREFETCHERS, make_prefetcher
from repro.prefetch.sld import SLDPrefetcher
from repro.prefetch.stride import STRPrefetcher

__all__ = [
    "Prefetcher",
    "PrefetchCandidate",
    "MTAPrefetcher",
    "NullPrefetcher",
    "SLDPrefetcher",
    "STRPrefetcher",
    "PREFETCHERS",
    "make_prefetcher",
]
