"""Name-based prefetcher construction used by the experiment harness."""

from __future__ import annotations

from typing import Callable

from repro.prefetch.base import Prefetcher
from repro.prefetch.mta import MTAPrefetcher
from repro.prefetch.none import NullPrefetcher
from repro.prefetch.sld import SLDPrefetcher
from repro.prefetch.stride import STRPrefetcher

PREFETCHERS: dict[str, Callable[[], Prefetcher]] = {
    "none": NullPrefetcher,
    "str": STRPrefetcher,
    "sld": SLDPrefetcher,
    "mta": MTAPrefetcher,
}


def make_prefetcher(name: str) -> Prefetcher:
    """Instantiate a prefetcher by its registry name.

    SAP is constructed through :func:`repro.core.apres.build_apres`
    because it must be paired with a LAWS scheduler.
    """
    try:
        factory = PREFETCHERS[name]
    except KeyError:
        known = ", ".join(sorted(PREFETCHERS))
        raise ValueError(f"unknown prefetcher {name!r}; known: {known}") from None
    return factory()
