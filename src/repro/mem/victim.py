"""Per-warp victim tag array, the lost-locality detector of CCWS.

Rogers et al.'s Cache-Conscious Wavefront Scheduling keeps a small
tag-only structure per warp holding addresses of lines that warp brought
into L1 and subsequently lost. A miss that hits in the warp's victim tags
is *lost locality*: the warp would have hit with less contention.
"""

from __future__ import annotations

from collections import OrderedDict


class VictimTagArray:
    """Tag-only set-associative store with LRU replacement."""

    __slots__ = ("_num_sets", "_assoc", "_line", "_sets")

    def __init__(self, num_sets: int = 8, associativity: int = 8, line_size: int = 128):
        self._num_sets = num_sets
        self._assoc = associativity
        self._line = line_size
        self._sets: list[OrderedDict[int, None]] = [OrderedDict() for _ in range(num_sets)]

    def _set(self, line_addr: int) -> OrderedDict[int, None]:
        return self._sets[(line_addr // self._line) % self._num_sets]

    def record_eviction(self, line_addr: int) -> None:
        """Remember a line this warp just lost from L1."""
        s = self._set(line_addr)
        if line_addr in s:
            s.move_to_end(line_addr)
            return
        if len(s) >= self._assoc:
            s.popitem(last=False)
        s[line_addr] = None

    def probe(self, line_addr: int) -> bool:
        """True if the missed line was recently evicted (lost locality).

        A hit consumes the entry, mirroring CCWS's one-shot detection.
        """
        s = self._set(line_addr)
        if line_addr in s:
            del s[line_addr]
            return True
        return False

    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)
