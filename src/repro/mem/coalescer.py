"""Memory request coalescing (Section II of the paper).

Threads of a warp that touch the same 128-byte segment are merged into one
memory transaction; a fully divergent load produces up to 32 transactions.
"""

from __future__ import annotations


def coalesce(addresses: list[int], line_size: int) -> list[int]:
    """Merge per-lane byte addresses into unique line addresses.

    Returns line-aligned byte addresses, ordered so the segment of the
    lowest lane comes first (SAP's demand-request queue keeps only the
    lowest thread's request).
    """
    if len(addresses) == 1:
        addr = addresses[0]
        return [addr - (addr % line_size)]
    # dict.fromkeys dedups in insertion order in one C-level pass, which is
    # measurably cheaper than a set+list loop on this per-load hot path.
    return list(dict.fromkeys(addr - (addr % line_size) for addr in addresses))
