"""Memory hierarchy: coalescer, L1 with MSHRs, shared L2, partitioned DRAM."""

from repro.mem.cache import AccessOutcome, L1Cache
from repro.mem.coalescer import coalesce
from repro.mem.dram import DRAMModel
from repro.mem.l2 import L2Cache
from repro.mem.mshr import MSHRFile
from repro.mem.request import LoadAccess
from repro.mem.subsystem import MemorySubsystem
from repro.mem.tags import LineMeta, TagArray
from repro.mem.victim import VictimTagArray

__all__ = [
    "AccessOutcome",
    "L1Cache",
    "coalesce",
    "DRAMModel",
    "L2Cache",
    "MSHRFile",
    "LoadAccess",
    "MemorySubsystem",
    "LineMeta",
    "TagArray",
    "VictimTagArray",
]
