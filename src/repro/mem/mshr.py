"""Miss Status Holding Registers.

MSHRs track in-flight fills and merge later requests to the same line; the
demand-into-prefetch merge is the mechanism APRES leans on for prefetch
timeliness (Section IV).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

#: Callback invoked when the fill completes: ``fn(fill_cycle)``.
FillCallback = Callable[[int], None]


@dataclass(slots=True)
class MSHREntry:
    """One in-flight line fill."""

    line_addr: int
    #: Cycle of the request that allocated the entry.
    allocated_at: int
    #: True while only prefetch requests target the line.
    prefetch_only: bool
    #: Warp (local id) whose demand allocated the entry; -1 for prefetches.
    filler_warp: int = -1
    callbacks: list[FillCallback] = field(default_factory=list)
    #: Issue cycles of merged demand requests (for latency accounting).
    demand_issue_cycles: list[int] = field(default_factory=list)


class MSHRFile:
    """Fixed-capacity MSHR table keyed by line address."""

    __slots__ = ("_capacity", "_merge_limit", "_entries",
                 "allocated_total", "released_total")

    def __init__(self, num_entries: int, merge_limit: int):
        if num_entries < 1:
            raise ValueError("MSHR file needs at least one entry")
        self._capacity = num_entries
        self._merge_limit = merge_limit
        self._entries: dict[int, MSHREntry] = {}
        #: Lifetime allocation/release counters, kept for the integrity
        #: layer's conservation check: live entries == allocated - released.
        self.allocated_total = 0
        self.released_total = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, line_addr: int) -> bool:
        return line_addr in self._entries

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def full(self) -> bool:
        return len(self._entries) >= self._capacity

    @property
    def occupancy_ratio(self) -> float:
        return len(self._entries) / self._capacity

    @property
    def live_prefetch_only(self) -> int:
        """In-flight fills still owned purely by a prefetch (no demand merged).

        The integrity layer's prefetch conservation law counts these: every
        issued prefetch is exactly one of {filled as prefetch, demand-merged
        while in flight, still in flight prefetch-only}.
        """
        return sum(1 for entry in self._entries.values() if entry.prefetch_only)

    def lookup(self, line_addr: int) -> Optional[MSHREntry]:
        return self._entries.get(line_addr)

    def allocate(self, line_addr: int, now: int, prefetch_only: bool) -> Optional[MSHREntry]:
        """Allocate an entry; ``None`` if the file is full."""
        if self.full or line_addr in self._entries:
            return None
        entry = MSHREntry(line_addr, now, prefetch_only)
        self._entries[line_addr] = entry
        self.allocated_total += 1
        return entry

    def can_merge(self, entry: MSHREntry) -> bool:
        return len(entry.demand_issue_cycles) < self._merge_limit

    def merge_demand(self, entry: MSHREntry, now: int, callback: Optional[FillCallback]) -> bool:
        """Merge a demand request into an in-flight fill."""
        if not self.can_merge(entry):
            return False
        entry.demand_issue_cycles.append(now)
        if callback is not None:
            entry.callbacks.append(callback)
        entry.prefetch_only = False
        return True

    def release(self, line_addr: int) -> MSHREntry:
        """Remove and return the entry when its fill arrives."""
        entry = self._entries.pop(line_addr)
        self.released_total += 1
        return entry

    def occupancy_by_line(self) -> dict[int, int]:
        """Diagnostic view: line address -> merged demand count.

        Sorted by line address so watchdog/invariant dumps are diffable
        between runs regardless of allocation order.
        """
        return {
            addr: len(entry.demand_issue_cycles)
            for addr, entry in sorted(self._entries.items())
        }
