"""Partitioned off-chip DRAM with fixed latency plus bandwidth queuing.

Each of the 6 partitions (Table III) serves one 128-byte line every
``service_cycles``; requests that arrive while a partition is busy wait, so
queuing delay — the paper's key memory-pressure effect (Section I) —
emerges from contention rather than being a fixed constant.
"""

from __future__ import annotations

from repro.config import DRAMConfig
from repro.stats.counters import MemoryStats
from repro.telemetry.events import DRAMRequestEvent


class DRAMModel:  # simlint: boundary[shared DRAM model behind the L2 boundary]
    """Latency + per-partition service-rate model of device memory."""

    __slots__ = ("_config", "_line_size", "_stats", "_partition_free_at",
                 "telemetry")

    def __init__(self, config: DRAMConfig, line_size: int, stats: MemoryStats):
        self._config = config
        self._line_size = line_size
        self._stats = stats
        self._partition_free_at = [0] * config.num_partitions
        #: Telemetry hub (shared, not per-SM; set by TelemetryHub.bind).
        self.telemetry = None

    def partition_of(self, line_addr: int) -> int:
        """Hashed partition mapping.

        Real GPUs XOR higher address bits into the partition index so that
        power-of-two strides do not camp on one partition; a linear mapping
        would serialise any warp whose stride is a multiple of
        ``num_partitions * line_size``.
        """
        idx = line_addr // self._line_size
        return (idx ^ (idx >> 7) ^ (idx >> 15)) % self._config.num_partitions

    def request(self, line_addr: int, now: int) -> int:
        """Schedule a line read; returns the cycle its data reaches L2."""
        part = self.partition_of(line_addr)
        start = max(now, self._partition_free_at[part])
        self._partition_free_at[part] = start + self._config.service_cycles
        self._stats.dram_requests += 1
        self._stats.bytes_dram_to_l2 += self._line_size
        tel = self.telemetry
        if tel is not None and tel.events:
            tel.emit(DRAMRequestEvent(
                cycle=now, line_addr=line_addr, partition=part,
                queue_delay=start - now))
        return start + self._config.latency

    def queue_delay(self, line_addr: int, now: int) -> int:
        """Cycles a request arriving ``now`` would wait (diagnostic)."""
        return max(0, self._partition_free_at[self.partition_of(line_addr)] - now)

    def busy_partitions(self, now: int) -> int:
        """How many partitions still have queued service at ``now``.

        The stall-attribution engine uses this to split memory stalls into
        bandwidth queuing (``dram_queue``) vs pure latency (``l1_pending``).
        """
        return sum(1 for free_at in self._partition_free_at if free_at > now)

    def queue_depths(self, now: int) -> list[int]:
        """Per-partition busy cycles remaining at ``now`` (diagnostic).

        The watchdog folds this into its dump so a hang can be told apart
        from a merely saturated memory system.
        """
        return [max(0, free_at - now) for free_at in self._partition_free_at]
