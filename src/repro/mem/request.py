"""Memory request descriptor shared between the pipeline and APRES modules."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class LoadAccess:
    """Summary of one executed (dynamic) load, as seen by schedulers/prefetchers.

    ``primary_addr`` is the byte address requested by the lowest thread ID —
    the address SAP's demand request queue stores (Section IV-B) and the one
    stride detection operates on.
    """

    sm_id: int
    warp_id: int
    pc: int
    primary_addr: int
    #: Line-aligned addresses the load touched after coalescing.
    line_addrs: tuple[int, ...]
    #: Outcome of the primary (first) line: True = L1 hit.
    primary_hit: bool
    cycle: int
