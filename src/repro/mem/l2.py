"""Shared last-level cache.

All SMs miss into one L2 (768 KB, 200-cycle latency in Table III). The L2
is banked with a per-bank service rate, so aggregate NoC/L2 bandwidth is
finite and heavy miss traffic queues — the congestion that makes L1 misses
expensive on real GPUs (Section I). In-flight fills are tracked so
concurrent misses from different SMs to the same line join the outstanding
fill instead of issuing duplicate DRAM reads.
"""

from __future__ import annotations

import heapq

from repro.config import CacheConfig
from repro.mem.dram import DRAMModel
from repro.mem.tags import LineMeta, TagArray
from repro.stats.counters import MemoryStats
from repro.telemetry.events import L2AccessEvent


class L2Cache:  # simlint: boundary[shared L2: cross-SM by design, serialized at the subsystem tick]
    """Single shared L2 in front of DRAM."""

    __slots__ = ("_config", "_dram", "_stats", "_tags", "_pending",
                 "_pending_heap", "_bank_free_at", "telemetry")

    def __init__(self, config: CacheConfig, dram: DRAMModel, stats: MemoryStats):
        self._config = config
        self._dram = dram
        self._stats = stats
        self._tags = TagArray(config)
        #: line -> cycle its in-flight fill completes.
        self._pending: dict[int, int] = {}
        #: min-heap of (ready_cycle, line) mirroring ``_pending``.
        self._pending_heap: list[tuple[int, int]] = []
        self._bank_free_at = [0] * max(1, config.num_banks)
        #: Telemetry hub (shared, not per-SM; set by TelemetryHub.bind).
        self.telemetry = None

    def bank_of(self, line_addr: int) -> int:
        # Hashed interleave, matching the DRAM partition mapping rationale.
        idx = line_addr // self._config.line_size
        return (idx ^ (idx >> 7) ^ (idx >> 15)) % len(self._bank_free_at)

    def _occupy_bank(self, line_addr: int, now: int) -> int:
        """Claim a bank slot; returns the cycle service starts."""
        if not self._config.service_cycles:
            return now
        bank = self.bank_of(line_addr)
        start = max(now, self._bank_free_at[bank])
        self._bank_free_at[bank] = start + self._config.service_cycles
        return start

    def access(self, line_addr: int, now: int) -> int:
        """Read a line on behalf of an L1 miss; returns the data-ready cycle."""
        self._commit_arrived(now)
        self._stats.l2_accesses += 1
        start = self._occupy_bank(line_addr, now)
        tel = self.telemetry
        if self._tags.probe(line_addr) is not None:
            self._stats.l2_hits += 1
            if tel is not None and tel.events:
                tel.emit(L2AccessEvent(cycle=now, line_addr=line_addr, hit=True))
            return start + self._config.hit_latency
        if tel is not None and tel.events:
            tel.emit(L2AccessEvent(cycle=now, line_addr=line_addr, hit=False))
        ready = self._pending.get(line_addr)
        if ready is not None:
            # Join the outstanding fill; data is forwarded when it lands.
            return max(ready, start + self._config.hit_latency)
        ready = self._dram.request(line_addr, start)
        self._pending[line_addr] = ready
        heapq.heappush(self._pending_heap, (ready, line_addr))
        return ready

    def write(self, line_addr: int, now: int) -> None:
        """Store traffic: consumes L2 bandwidth, coherence is write-evict."""
        self._commit_arrived(now)
        self._occupy_bank(line_addr, now)
        self._tags.invalidate(line_addr)

    def contains(self, line_addr: int) -> bool:
        return self._tags.probe(line_addr, update_lru=False) is not None

    def _commit_arrived(self, now: int) -> None:
        """Install fills whose data has arrived by ``now``."""
        while self._pending_heap and self._pending_heap[0][0] <= now:
            ready, line = heapq.heappop(self._pending_heap)
            if self._pending.get(line) == ready:
                del self._pending[line]
                self._tags.insert(line, LineMeta())
