"""L1 data cache with MSHRs, prefetch-fill tracking and miss classification.

Counters implement the paper's measurement methodology:

* **Miss classification** (Section III-A): the first-ever miss on a line
  address is *cold*; a miss on a line that was cached before is
  *capacity+conflict*.
* **Hit-after-hit / hit-after-miss** (Section V-C): a hit is continuous if
  the previous demand access to this cache also hit.
* **Early eviction** (Sections III-C, V-D): a prefetch-filled line evicted
  before any demand touched it.
"""

from __future__ import annotations

import enum
from typing import Callable, Optional

from repro.config import CacheConfig
from repro.mem.mshr import FillCallback, MSHRFile
from repro.mem.tags import LineMeta, TagArray
from repro.stats.counters import CacheStats
from repro.telemetry.events import L1AccessEvent, L1EvictEvent, L1FillEvent, PrefetchDropEvent

class MissForwarder:
    """L1 miss-path interface: ``(line_addr, now, is_prefetch) -> fill_cycle``.

    A real base class rather than a ``Callable`` alias so the effect
    analysis (:mod:`repro.analysis.effects`) can resolve the forwarder
    field to one named type and fan virtual dispatch over every engine's
    implementation — the serial subsystem's forwarder and the shard
    proxy's both subclass this.
    """

    __slots__ = ()

    def __call__(self, line_addr: int, now: int, is_prefetch: bool) -> int:
        raise NotImplementedError
#: ``fn(filler_warp, line_addr)`` — eviction feedback (CCWS victim tags).
EvictionListener = Callable[[int, int], None]


def _ignore_latency(issue_cycle: int, done_cycle: int) -> None:
    """Default latency sink; module-level so simulator state stays picklable."""


class AccessOutcome(enum.Enum):
    """Result of a demand access."""

    HIT = "hit"
    MISS = "miss"
    #: Merged into an in-flight MSHR entry.
    MERGED = "merged"
    #: No MSHR resource; the instruction must replay.
    STALL = "stall"


class L1Cache:
    """One SM's L1 data cache."""

    __slots__ = ("_config", "stats", "_tags", "_mshrs", "_forward_miss",
                 "_hit_latency", "_seen_lines", "_last_access_hit",
                 "eviction_listener", "stats_latency", "telemetry")

    def __init__(
        self,
        config: CacheConfig,
        stats: CacheStats,
        forward_miss: MissForwarder,
    ):
        self._config = config
        self.stats = stats
        self._tags = TagArray(config)
        self._mshrs = MSHRFile(config.num_mshrs, config.mshr_merge_limit)
        self._forward_miss = forward_miss
        # Hoisted: read on every hit in the demand path.
        self._hit_latency = config.hit_latency
        #: Every line address ever cached here, for cold-miss classification.
        self._seen_lines: set[int] = set()
        self._last_access_hit: Optional[bool] = None
        self.eviction_listener: Optional[EvictionListener] = None
        #: Hook the subsystem overrides to feed demand-latency counters.
        self.stats_latency: Callable[[int, int], None] = _ignore_latency
        #: Per-SM telemetry proxy (set by the pipeline when tracing).
        self.telemetry = None

    @property
    def hit_latency(self) -> int:
        return self._config.hit_latency

    @property
    def mshr_occupancy(self) -> float:
        return self._mshrs.occupancy_ratio

    @property
    def mshrs(self) -> MSHRFile:
        """The MSHR file (read-only use: integrity checks and diagnostics)."""
        return self._mshrs

    def contains(self, line_addr: int) -> bool:
        return self._tags.probe(line_addr, update_lru=False) is not None

    def in_flight(self, line_addr: int) -> bool:
        return line_addr in self._mshrs

    # ------------------------------------------------------------------
    # Demand path
    # ------------------------------------------------------------------

    def access(
        self,
        line_addr: int,
        warp_id: int,
        now: int,
        on_fill: Optional[FillCallback] = None,
    ) -> tuple[AccessOutcome, Optional[int]]:
        """Demand access by ``warp_id``.

        Returns ``(outcome, ready_cycle)``. ``ready_cycle`` is set for hits
        (data available after the hit latency); for MISS/MERGED the data
        arrives via ``on_fill``; for STALL nothing was committed and the
        access must be retried.
        """
        tel = self.telemetry
        emit = tel is not None and tel.events
        meta = self._tags.probe(line_addr)
        if meta is not None:
            self._record_hit(meta)
            if emit:
                tel.emit(L1AccessEvent(
                    cycle=now, sm=tel.sm_id, line_addr=line_addr, outcome="hit"))
            return AccessOutcome.HIT, now + self._hit_latency

        entry = self._mshrs.lookup(line_addr)
        if entry is not None:
            was_prefetch = entry.prefetch_only
            if not self._mshrs.merge_demand(entry, now, on_fill):
                self.stats.reservation_fails += 1
                if emit:
                    tel.emit(L1AccessEvent(
                        cycle=now, sm=tel.sm_id, line_addr=line_addr,
                        outcome="stall"))
                return AccessOutcome.STALL, None
            if was_prefetch:
                self.stats.prefetch_demand_merged += 1
            self.stats.mshr_demand_merges += 1
            self._record_miss(line_addr)
            if emit:
                tel.emit(L1AccessEvent(
                    cycle=now, sm=tel.sm_id, line_addr=line_addr,
                    outcome="merged"))
            return AccessOutcome.MERGED, None

        new_entry = self._mshrs.allocate(line_addr, now, prefetch_only=False)
        if new_entry is None:
            self.stats.reservation_fails += 1
            if emit:
                tel.emit(L1AccessEvent(
                    cycle=now, sm=tel.sm_id, line_addr=line_addr,
                    outcome="stall"))
            return AccessOutcome.STALL, None
        self._mshrs.merge_demand(new_entry, now, on_fill)
        new_entry.filler_warp = warp_id
        self._record_miss(line_addr)
        if emit:
            tel.emit(L1AccessEvent(
                cycle=now, sm=tel.sm_id, line_addr=line_addr, outcome="miss"))
        self._forward_miss(line_addr, now, False)
        return AccessOutcome.MISS, None

    # ------------------------------------------------------------------
    # Prefetch path
    # ------------------------------------------------------------------

    def prefetch(self, line_addr: int, now: int) -> bool:
        """Issue a prefetch; returns True if a fill was actually started."""
        if self._tags.probe(line_addr, update_lru=False) is not None:
            self.stats.prefetch_dropped += 1
            self._drop_prefetch(line_addr, now, "resident")
            return False
        if line_addr in self._mshrs:
            self.stats.prefetch_dropped += 1
            self._drop_prefetch(line_addr, now, "in_flight")
            return False
        entry = self._mshrs.allocate(line_addr, now, prefetch_only=True)
        if entry is None:
            self.stats.prefetch_dropped += 1
            self._drop_prefetch(line_addr, now, "no_mshr")
            return False
        self.stats.prefetch_issued += 1
        self._forward_miss(line_addr, now, True)
        return True

    def _drop_prefetch(self, line_addr: int, now: int, reason: str) -> None:
        tel = self.telemetry
        if tel is not None and tel.events:
            tel.emit(PrefetchDropEvent(
                cycle=now, sm=tel.sm_id, line_addr=line_addr, reason=reason))

    # ------------------------------------------------------------------
    # Fill / store paths
    # ------------------------------------------------------------------

    def fill(self, line_addr: int, now: int) -> None:
        """A line arrived from L2; install it and wake merged requests.

        A line whose MSHR entry still holds no demand is installed as an
        unreferenced prefetch line; if demands merged while in flight the
        line counts as already used (no early eviction possible).
        """
        entry = self._mshrs.release(line_addr)
        demanded = bool(entry.demand_issue_cycles)
        meta = LineMeta(
            filler_warp=entry.filler_warp,
            prefetched=entry.prefetch_only,
            referenced=demanded,
        )
        if entry.prefetch_only:
            self.stats.prefetch_fills += 1
        tel = self.telemetry
        if tel is not None and tel.events:
            tel.emit(L1FillEvent(
                cycle=now, sm=tel.sm_id, line_addr=line_addr,
                prefetch=entry.prefetch_only))
        victim = self._tags.insert(line_addr, meta)
        if victim is not None:
            self._on_eviction(*victim, now=now)
        for issue_cycle in entry.demand_issue_cycles:
            self.stats_latency(issue_cycle, now)
        for cb in entry.callbacks:
            cb(now)

    def store(self, line_addr: int, now: int = 0) -> None:
        """Global store: write-evict — invalidate the line if resident."""
        meta = self._tags.invalidate(line_addr)
        if meta is not None:
            self._on_eviction(line_addr, meta, now)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _record_hit(self, meta: LineMeta) -> None:
        self.stats.accesses += 1
        self.stats.hits += 1
        if self._last_access_hit:
            self.stats.hit_after_hit += 1
        elif self._last_access_hit is not None:
            self.stats.hit_after_miss += 1
        self._last_access_hit = True
        if meta.prefetched and not meta.referenced:
            self.stats.prefetch_useful += 1
        meta.referenced = True

    def _record_miss(self, line_addr: int) -> None:
        self.stats.accesses += 1
        self.stats.misses += 1
        if line_addr in self._seen_lines:
            self.stats.capacity_conflict_misses += 1
        else:
            self._seen_lines.add(line_addr)
            self.stats.cold_misses += 1
        self._last_access_hit = False

    def _on_eviction(self, line_addr: int, meta: LineMeta, now: int = 0) -> None:
        self.stats.evictions += 1
        if meta.prefetched and not meta.referenced:
            self.stats.prefetch_early_evicted += 1
        tel = self.telemetry
        if tel is not None and tel.events:
            tel.emit(L1EvictEvent(
                cycle=now, sm=tel.sm_id, line_addr=line_addr,
                prefetched=meta.prefetched, referenced=meta.referenced))
        if self.eviction_listener is not None and meta.filler_warp >= 0:
            self.eviction_listener(meta.filler_warp, line_addr)
