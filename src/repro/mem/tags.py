"""Set-associative tag array with true-LRU replacement."""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.config import CacheConfig


@dataclass(slots=True)
class LineMeta:
    """Per-line bookkeeping attached to each resident tag."""

    #: Warp (local id) whose request filled the line; -1 for prefetch fills.
    filler_warp: int = -1
    #: True if the line was brought in by a prefetch.
    prefetched: bool = False
    #: True once a demand access has touched the line after fill.
    referenced: bool = False


class TagArray:
    """Tags + replacement state of one cache level.

    Lines are keyed by line-aligned byte address. Each set is an
    ``OrderedDict`` from address to :class:`LineMeta`; order encodes
    recency (last item = most recently used).
    """

    __slots__ = ("_config", "_num_sets", "_assoc", "_line", "_sets",
                 "_pow2", "_line_shift", "_set_mask")

    def __init__(self, config: CacheConfig):
        self._config = config
        self._num_sets = config.num_sets
        self._assoc = config.associativity
        self._line = config.line_size
        self._sets: list[OrderedDict[int, LineMeta]] = [
            OrderedDict() for _ in range(self._num_sets)
        ]
        # Power-of-two geometry (every real config) lets the per-access set
        # index be a shift+mask instead of a divmod pair.
        line, sets = self._line, self._num_sets
        self._pow2 = line & (line - 1) == 0 and sets & (sets - 1) == 0
        self._line_shift = line.bit_length() - 1
        self._set_mask = sets - 1

    def set_index(self, line_addr: int) -> int:
        if self._pow2:
            return (line_addr >> self._line_shift) & self._set_mask
        return (line_addr // self._line) % self._num_sets

    def probe(self, line_addr: int, update_lru: bool = True) -> Optional[LineMeta]:
        """Return the line's metadata if resident, promoting it to MRU."""
        s = self._sets[self.set_index(line_addr)]
        meta = s.get(line_addr)
        if meta is not None and update_lru:
            s.move_to_end(line_addr)
        return meta

    def insert(self, line_addr: int, meta: LineMeta) -> Optional[tuple[int, LineMeta]]:
        """Insert a line at MRU; return the evicted ``(addr, meta)`` if any.

        Replacement is LRU with bounded prefetch protection: prefetched
        lines that have not served a demand yet are skipped while they
        occupy at most half the ways, so in-flight prefetch work is not
        thrown away the moment demand traffic sweeps the set — but
        prefetches can never pin a whole set either.
        """
        s = self._sets[self.set_index(line_addr)]
        victim: Optional[tuple[int, LineMeta]] = None
        if line_addr in s:
            # Refill of a resident line: replace metadata in place.
            s[line_addr] = meta
            s.move_to_end(line_addr)
            return None
        if len(s) >= self._assoc:
            pending = sum(1 for m in s.values() if m.prefetched and not m.referenced)
            protect = pending <= self._assoc // 2
            victim_addr = None
            if protect:
                # Scan is intentionally in OrderedDict recency order (oldest
                # first = LRU); that order is deterministic, not hash order.
                victim_addr = next(
                    (a for a, m in s.items() if not (m.prefetched and not m.referenced)),  # simlint: ignore[SL001]
                    None,
                )
            if victim_addr is None:
                victim = s.popitem(last=False)
            else:
                victim = (victim_addr, s.pop(victim_addr))
        s[line_addr] = meta
        return victim

    def invalidate(self, line_addr: int) -> Optional[LineMeta]:
        """Drop a line (write-evict stores); return its metadata if present."""
        return self._sets[self.set_index(line_addr)].pop(line_addr, None)

    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)

    def resident_lines(self) -> Iterator[int]:
        """Yield resident line addresses, sorted within each set.

        Consumers treat this as a set, but sorting keeps any serialised
        form (checkpoints, diagnostics) byte-stable across runs.
        """
        for s in self._sets:
            yield from sorted(s.keys())
