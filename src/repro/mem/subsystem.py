"""Wiring of per-SM L1s to the shared L2 and DRAM, plus the event queue.

The subsystem owns simulation-wide time-ordered events (line fills, warp
wake-ups). SM pipelines advance cycle by cycle and drain due events at the
start of each cycle.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable

from repro.config import GPUConfig
from repro.mem.cache import L1Cache
from repro.mem.dram import DRAMModel
from repro.mem.l2 import L2Cache
from repro.stats.counters import SimStats


class EventQueue:
    """Min-heap of ``(cycle, seq, callback)`` with FIFO tie-breaking."""

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, Callable[[int], None]]] = []
        self._seq = itertools.count()

    def schedule(self, cycle: int, callback: Callable[[int], None]) -> None:
        heapq.heappush(self._heap, (cycle, next(self._seq), callback))

    def run_until(self, cycle: int) -> None:
        """Execute every event due at or before ``cycle``."""
        while self._heap and self._heap[0][0] <= cycle:
            when, _, callback = heapq.heappop(self._heap)
            callback(when)

    @property
    def next_event_cycle(self) -> int | None:
        return self._heap[0][0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)


class MemorySubsystem:
    """L1s (one per SM) + shared L2 + DRAM + the global event queue."""

    def __init__(self, config: GPUConfig, stats: SimStats):
        self._config = config
        self._stats = stats
        self.events = EventQueue()
        self.dram = DRAMModel(config.dram, config.l1.line_size, stats.memory)
        self.l2 = L2Cache(config.l2, self.dram, stats.memory)
        self.l1s: list[L1Cache] = []
        for sm_id in range(config.num_sms):
            l1 = L1Cache(config.l1, stats.l1, self._make_forwarder(sm_id))
            l1.stats_latency = self._record_latency
            self.l1s.append(l1)

    def _make_forwarder(self, sm_id: int) -> Callable[[int, int, bool], int]:
        def forward(line_addr: int, now: int, is_prefetch: bool) -> int:
            fill_cycle = self.l2.access(line_addr, now)
            l1 = self.l1s[sm_id]
            self._stats.memory.bytes_l2_to_l1 += self._config.l1.line_size
            self.events.schedule(fill_cycle, lambda when: l1.fill(line_addr, when))
            return fill_cycle

        return forward

    def _record_latency(self, issue_cycle: int, done_cycle: int) -> None:
        self._stats.memory.demand_latency_sum += done_cycle - issue_cycle
        self._stats.memory.demand_latency_count += 1

    def record_hit_latency(self, latency: int) -> None:
        """Fold L1 hits into the average-latency metric (Figure 13)."""
        self._stats.memory.demand_latency_sum += latency
        self._stats.memory.demand_latency_count += 1

    def store(self, sm_id: int, line_addrs: list[int], now: int) -> None:
        """Write-through stores: invalidate the L1 copy, consume L2 bandwidth."""
        l1 = self.l1s[sm_id]
        for line in line_addrs:
            l1.store(line)
            self.l2.write(line, now)
            self._stats.memory.bytes_stored += self._config.l1.line_size
