"""Wiring of per-SM L1s to the shared L2 and DRAM, plus the event queue.

The subsystem owns simulation-wide time-ordered events (line fills, warp
wake-ups). SM pipelines advance cycle by cycle and drain due events at the
start of each cycle.

Event callbacks are small module-level callable objects rather than
closures so the whole subsystem — pending events included — pickles, which
is what makes :meth:`repro.sm.simulator.GPUSimulator.snapshot` possible.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable

from repro.config import GPUConfig
from repro.errors import InvariantError
from repro.mem.cache import L1Cache, MissForwarder
from repro.mem.dram import DRAMModel
from repro.mem.l2 import L2Cache
from repro.stats.counters import SimStats


class EventQueue:  # simlint: boundary[global event queue; drained serially each epoch]
    """Min-heap of ``(cycle, seq, callback)`` with FIFO tie-breaking."""

    __slots__ = ("_heap", "_seq", "processed")

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, Callable[[int], None]]] = []
        self._seq = itertools.count()
        #: Lifetime count of executed events; the watchdog's progress signal.
        self.processed = 0

    def schedule(self, cycle: int, callback: Callable[[int], None]) -> None:
        heapq.heappush(self._heap, (cycle, next(self._seq), callback))

    def run_until(self, cycle: int) -> None:
        """Execute every event due at or before ``cycle``."""
        while self._heap and self._heap[0][0] <= cycle:
            when, _, callback = heapq.heappop(self._heap)
            self.processed += 1
            callback(when)

    @property
    def next_event_cycle(self) -> int | None:
        return self._heap[0][0] if self._heap else None

    def iter_pending(self):
        """Yield ``(cycle, callback)`` for every scheduled event (unordered).

        Read-only diagnostic view used by the integrity layer; mutating the
        underlying heap through it is not supported.
        """
        for cycle, _, callback in self._heap:
            yield cycle, callback

    def __len__(self) -> int:
        return len(self._heap)


class _L1FillEvent:
    """Deferred completion of one L1 line fill (picklable event callback)."""

    __slots__ = ("l1", "line_addr")

    def __init__(self, l1: L1Cache, line_addr: int):
        self.l1 = l1
        self.line_addr = line_addr

    def __call__(self, when: int) -> None:
        self.l1.fill(self.line_addr, when)


class _L1MissForwarder(MissForwarder):
    """Per-SM miss path into the shared L2 (picklable MissForwarder)."""

    __slots__ = ("subsystem", "sm_id")

    def __init__(self, subsystem: "MemorySubsystem", sm_id: int):
        self.subsystem = subsystem
        self.sm_id = sm_id

    def __call__(self, line_addr: int, now: int, is_prefetch: bool) -> int:
        return self.subsystem.forward_miss(self.sm_id, line_addr, now)


class SharedL2Core:  # simlint: boundary[authoritative L2/DRAM pair replayed serially at shard barriers]
    """The shared L2 + DRAM pair without per-SM L1s.

    The sharded engine (:mod:`repro.shard`) keeps exactly one of these in
    the parent: shard workers defer their L1 miss/store traffic into logs,
    and the parent replays the merged log through this core in the serial
    engine's access order. The methods mirror the slice of
    :meth:`MemorySubsystem.forward_miss` / :meth:`MemorySubsystem.store`
    that touches shared state, so both engines charge the same counters.
    """

    __slots__ = ("_line_size", "_stats", "dram", "l2")

    def __init__(self, config: GPUConfig, stats: SimStats):
        self._line_size = config.l1.line_size
        self._stats = stats
        self.dram = DRAMModel(config.dram, config.l1.line_size, stats.memory)
        self.l2 = L2Cache(config.l2, self.dram, stats.memory)

    @property
    def memory_stats(self):
        """The authoritative L2/DRAM counter bundle this core charges.

        The shard telemetry coordinator exposes it on its stats view so
        interval metrics (``l2_miss_rate``) read the same counters in the
        serial and sharded engines.
        """
        return self._stats.memory

    def replay_miss(self, line_addr: int, now: int) -> int:
        """Charge one L1 miss (demand or prefetch); returns the fill cycle."""
        fill_cycle = self.l2.access(line_addr, now)
        self._stats.memory.bytes_l2_to_l1 += self._line_size
        return fill_cycle

    def replay_store(self, line_addr: int, now: int) -> None:
        """Charge one write-through store line."""
        self.l2.write(line_addr, now)
        self._stats.memory.bytes_stored += self._line_size

    def describe(self, now: int) -> dict:
        """JSON-ready snapshot of the shared side (diagnostics)."""
        return {"dram_queue_depths": self.dram.queue_depths(now)}


class MemorySubsystem:  # simlint: boundary[shared L2/DRAM front-end: the legal cross-SM channel]
    """L1s (one per SM) + shared L2 + DRAM + the global event queue."""

    __slots__ = ("_config", "_stats", "events", "dram", "l2", "l1s")

    def __init__(self, config: GPUConfig, stats: SimStats):
        self._config = config
        self._stats = stats
        self.events = EventQueue()
        self.dram = DRAMModel(config.dram, config.l1.line_size, stats.memory)
        self.l2 = L2Cache(config.l2, self.dram, stats.memory)
        self.l1s: list[L1Cache] = []
        for sm_id in range(config.num_sms):
            l1 = L1Cache(config.l1, stats.l1, _L1MissForwarder(self, sm_id))
            l1.stats_latency = self._record_latency
            self.l1s.append(l1)

    def forward_miss(self, sm_id: int, line_addr: int, now: int) -> int:
        """Send an L1 miss to L2 and schedule the fill-back event."""
        fill_cycle = self.l2.access(line_addr, now)
        self._stats.memory.bytes_l2_to_l1 += self._config.l1.line_size
        self.events.schedule(fill_cycle, _L1FillEvent(self.l1s[sm_id], line_addr))
        return fill_cycle

    def _record_latency(self, issue_cycle: int, done_cycle: int) -> None:
        self._stats.memory.demand_latency_sum += done_cycle - issue_cycle
        self._stats.memory.demand_latency_count += 1

    def record_hit_latency(self, latency: int) -> None:
        """Fold L1 hits into the average-latency metric (Figure 13)."""
        self._stats.memory.demand_latency_sum += latency
        self._stats.memory.demand_latency_count += 1

    def store(self, sm_id: int, line_addrs: list[int], now: int) -> None:
        """Write-through stores: invalidate the L1 copy, consume L2 bandwidth."""
        l1 = self.l1s[sm_id]
        for line in line_addrs:
            l1.store(line, now)
            self.l2.write(line, now)
            self._stats.memory.bytes_stored += self._config.l1.line_size

    # ------------------------------------------------------------------
    # Integrity
    # ------------------------------------------------------------------

    def check_invariants(self, now: int) -> None:
        """Conservation checks over MSHRs, fill events, and L1 accounting.

        Raises :class:`InvariantError` with a structured snapshot on the
        first violation. All checks are read-only.
        """
        pending_fills = [0] * len(self.l1s)
        for _, callback in self.events.iter_pending():
            if isinstance(callback, _L1FillEvent):
                for sm_id, l1 in enumerate(self.l1s):
                    if callback.l1 is l1:
                        pending_fills[sm_id] += 1
                        break
        for sm_id, l1 in enumerate(self.l1s):
            mshrs = l1.mshrs
            live = len(mshrs)
            if live > mshrs.capacity:
                self._violate(
                    now, f"L1[{sm_id}] holds {live} MSHR entries over "
                    f"capacity {mshrs.capacity}")
            if live != mshrs.allocated_total - mshrs.released_total:
                self._violate(
                    now, f"L1[{sm_id}] MSHR leak: {live} live entries but "
                    f"{mshrs.allocated_total} allocated - "
                    f"{mshrs.released_total} released")
            if live != pending_fills[sm_id]:
                self._violate(
                    now, f"L1[{sm_id}] has {live} in-flight MSHR entries but "
                    f"{pending_fills[sm_id]} pending fill events")
        l1_stats = self._stats.l1
        if l1_stats.hits + l1_stats.misses != l1_stats.accesses:
            self._violate(
                now, f"L1 accounting: {l1_stats.hits} hits + "
                f"{l1_stats.misses} misses != {l1_stats.accesses} accesses")
        if l1_stats.cold_misses + l1_stats.capacity_conflict_misses != l1_stats.misses:
            self._violate(
                now, f"L1 miss classes: {l1_stats.cold_misses} cold + "
                f"{l1_stats.capacity_conflict_misses} capacity/conflict != "
                f"{l1_stats.misses} misses")
        # Prefetch conservation: every prefetch that started a fill is
        # exactly one of {installed as a prefetch line, converted by a
        # demand merge while in flight, still in flight prefetch-only}.
        live_prefetch = sum(l1.mshrs.live_prefetch_only for l1 in self.l1s)
        accounted = (
            l1_stats.prefetch_fills
            + l1_stats.prefetch_demand_merged
            + live_prefetch
        )
        if l1_stats.prefetch_issued != accounted:
            self._violate(
                now, f"prefetch conservation: {l1_stats.prefetch_issued} "
                f"issued != {l1_stats.prefetch_fills} fills + "
                f"{l1_stats.prefetch_demand_merged} demand-merged + "
                f"{live_prefetch} live prefetch-only MSHRs")
        # A prefetch-filled line is useful or early-evicted at most once.
        if l1_stats.prefetch_useful + l1_stats.prefetch_early_evicted > l1_stats.prefetch_fills:
            self._violate(
                now, f"prefetch outcomes: {l1_stats.prefetch_useful} useful + "
                f"{l1_stats.prefetch_early_evicted} early-evicted > "
                f"{l1_stats.prefetch_fills} prefetch fills")

    def describe(self, now: int) -> dict:
        """JSON-ready snapshot of memory-side state (diagnostics)."""
        return {
            "event_queue_length": len(self.events),
            "events_processed": self.events.processed,
            "next_event_cycle": self.events.next_event_cycle,
            "dram_queue_depths": self.dram.queue_depths(now),
            "mshrs": [
                {
                    "sm": sm_id,
                    "live": len(l1.mshrs),
                    "capacity": l1.mshrs.capacity,
                    "allocated_total": l1.mshrs.allocated_total,
                    "released_total": l1.mshrs.released_total,
                }
                for sm_id, l1 in enumerate(self.l1s)
            ],
        }

    def _violate(self, now: int, message: str) -> None:
        raise InvariantError(
            f"memory invariant violated at cycle {now}: {message}",
            details={"cycle": now, "invariant": message, "memory": self.describe(now)},
        )
