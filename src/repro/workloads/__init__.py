"""Synthetic workloads reproducing the paper's 15-benchmark suite (Table IV)."""

from repro.workloads.spec import Category, LoadSpec, StoreSpec, WorkloadSpec
from repro.workloads.suite import (
    SUITE,
    cache_insensitive_workloads,
    cache_sensitive_workloads,
    compute_workloads,
    memory_intensive_workloads,
    workload,
)
from repro.workloads.synthetic import SubstepAddress, build_kernel

__all__ = [
    "Category",
    "LoadSpec",
    "StoreSpec",
    "WorkloadSpec",
    "SUITE",
    "cache_insensitive_workloads",
    "cache_sensitive_workloads",
    "compute_workloads",
    "memory_intensive_workloads",
    "workload",
    "SubstepAddress",
    "build_kernel",
]
