"""Lowering a :class:`WorkloadSpec` into an executable kernel."""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.address import AddressGenerator
from repro.isa.instructions import Instr, alu, load, store
from repro.isa.program import KernelSpec
from repro.workloads.spec import WorkloadSpec

#: PC region where generated ALU instructions live (clear of load PCs).
_ALU_PC_BASE = 0x100000


@dataclass(frozen=True)
class SubstepAddress(AddressGenerator):
    """Advance an inner generator ``total`` steps per outer iteration.

    Occurrence ``k`` of a weighted load sees effective iteration
    ``iteration * total + k``, so repeated occurrences stream forward the
    way a real inner loop would.
    """

    inner: AddressGenerator
    step: int
    total: int

    def addresses(self, warp: int, iteration: int) -> list[int]:
        return self.inner.addresses(warp, iteration * self.total + self.step)

    def primary_address(self, warp: int, iteration: int) -> int:
        return self.inner.primary_address(warp, iteration * self.total + self.step)

    def coalesced(self, warp: int, iteration: int, line_size: int) -> tuple[int, list[int]]:
        return self.inner.coalesced(
            warp, iteration * self.total + self.step, line_size
        )


def build_kernel(spec: WorkloadSpec, scale: float = 1.0) -> KernelSpec:
    """Produce the kernel a warp executes for this workload.

    ``scale`` multiplies the loop trip count (used to shrink simulations
    for unit tests); address patterns are unchanged.
    """
    body: list[Instr] = []
    alu_pc = _ALU_PC_BASE
    for load_spec in spec.loads:
        for k in range(load_spec.weight):
            if load_spec.weight > 1 and load_spec.substep:
                gen: AddressGenerator = SubstepAddress(load_spec.gen, k, load_spec.weight)
            else:
                gen = load_spec.gen
            body.append(load(load_spec.pc, gen, label=load_spec.name))
            for _ in range(spec.alu_per_load):
                body.append(alu(alu_pc))
                alu_pc += 8
    if spec.store is not None:
        body.append(store(spec.store.pc, spec.store.gen, label=spec.store.name))
    iterations = max(1, round(spec.iterations * scale))
    return KernelSpec(
        spec.abbr, body, iterations, waves=spec.waves, fresh_waves=spec.fresh_waves
    )
