"""Workload specifications.

A :class:`WorkloadSpec` describes one benchmark as the paper's Table I
does: a set of static loads with per-load access patterns (address
generator, execution weight), a compute intensity, and a loop trip count.
:func:`repro.workloads.synthetic.build_kernel` lowers a spec to an
executable :class:`~repro.isa.program.KernelSpec`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.errors import WorkloadError
from repro.isa.address import AddressGenerator


class Category(enum.Enum):
    """Table IV's application categories."""

    CACHE_SENSITIVE = "cache-sensitive"
    CACHE_INSENSITIVE = "cache-insensitive"
    COMPUTE = "compute-intensive"

    @property
    def memory_intensive(self) -> bool:
        return self is not Category.COMPUTE


@dataclass(frozen=True)
class LoadSpec:
    """One static load of a workload.

    ``weight`` occurrences of the load appear per loop body (modelling an
    inner loop over the same static PC). With ``substep=True`` each
    occurrence advances the address stream; with ``substep=False`` every
    occurrence re-reads the same address — a pure intra-iteration reuse
    (the SRAD third-load pattern of Section III-B).
    """

    name: str
    pc: int
    gen: AddressGenerator
    weight: int = 1
    substep: bool = True

    def __post_init__(self) -> None:
        if self.weight < 1:
            raise WorkloadError(f"load {self.name!r}: weight must be >= 1")
        if self.pc < 0:
            raise WorkloadError(f"load {self.name!r}: negative pc")


@dataclass(frozen=True)
class StoreSpec:
    """One static store (write-through; does not block its warp)."""

    name: str
    pc: int
    gen: AddressGenerator


@dataclass(frozen=True)
class WorkloadSpec:
    """One benchmark of the suite."""

    name: str
    abbr: str
    suite: str
    category: Category
    loads: tuple[LoadSpec, ...]
    iterations: int
    #: ALU instructions inserted after each load occurrence.
    alu_per_load: int = 1
    #: Thread blocks per warp slot (occupancy refill; see KernelSpec.waves).
    waves: int = 2
    #: False for iterative kernels whose waves re-walk the same data.
    fresh_waves: bool = True
    store: Optional[StoreSpec] = None
    description: str = ""

    def __post_init__(self) -> None:
        if not self.loads:
            raise WorkloadError(f"workload {self.abbr}: needs at least one load")
        if self.iterations < 1:
            raise WorkloadError(f"workload {self.abbr}: iterations must be >= 1")
        if self.waves < 1:
            raise WorkloadError(f"workload {self.abbr}: waves must be >= 1")
        if self.alu_per_load < 0:
            raise WorkloadError(f"workload {self.abbr}: negative alu_per_load")
        pcs = [l.pc for l in self.loads]
        if len(set(pcs)) != len(pcs):
            raise WorkloadError(f"workload {self.abbr}: duplicate load PCs")

    @property
    def memory_intensive(self) -> bool:
        return self.category.memory_intensive
