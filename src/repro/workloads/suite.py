"""The 15-benchmark suite of Table IV, rebuilt as synthetic kernels.

Each workload reproduces the per-static-load behaviour the paper
characterises in Table I: the dominant loads keep the paper's PCs, their
relative execution weights approximate the %Load column, their address
generators produce the reported inter-warp strides, and footprints/hot-set
sizes are chosen so the locality metric (#L/#R) and baseline L1 behaviour
land in the same regime (thrashing, streaming, or cache-resident).

Sizes are scaled to keep pure-Python simulations tractable: footprints are
megabytes instead of the applications' full datasets, but every footprint
that must exceed the 32 KB L1 does so by a comfortable margin, so the
contention phenomena the paper studies are preserved.
"""

from __future__ import annotations

from repro.isa.address import (
    BroadcastAddress,
    IndirectAddress,
    IrregularAddress,
    StridedAddress,
)
from repro.workloads.spec import Category, LoadSpec, StoreSpec, WorkloadSpec

KB = 1024
MB = 1024 * KB


def _region(index: int) -> int:
    """Disjoint 1 GB address regions keep loads from aliasing."""
    return index * 1024 * MB


def _bfs() -> WorkloadSpec:
    """Breadth-First Search: irregular graph loads with strong inter-warp reuse."""
    return WorkloadSpec(
        name="Breadth-First Search",
        abbr="BFS",
        suite="Rodinia",
        category=Category.CACHE_SENSITIVE,
        loads=(
            LoadSpec(
                # Per-warp frontier chunk: intra-warp locality that CCWS's
                # throttling and LAWS's grouping can both recover.
                "edges", 0x110,
                IrregularAddress(_region(1), footprint_bytes=1 * MB,
                                 private_block_bytes=1024, hot_fraction=0.99,
                                 lines_per_warp=2, seed=11),
                weight=4,
            ),
            LoadSpec(
                "nodes", 0xF0,
                IrregularAddress(_region(2), footprint_bytes=96 * KB, hot_bytes=8 * KB,
                                 hot_fraction=0.80, lines_per_warp=2, seed=12),
                weight=2,
            ),
            LoadSpec(
                "levels", 0x198,
                IrregularAddress(_region(3), footprint_bytes=64 * KB, hot_bytes=8 * KB,
                                 hot_fraction=0.75, lines_per_warp=1, seed=13),
                weight=1,
            ),
        ),
        iterations=16,
        waves=3,
        fresh_waves=False,
        alu_per_load=1,
        store=StoreSpec("visited", 0x1F0, StridedAddress(_region(4), warp_stride=128, iter_stride=12288)),
        description="frontier expansion over an irregular graph",
    )


def _mum() -> WorkloadSpec:
    """MUMmerGPU: suffix-tree walks, small hot node set, mostly cache-resident."""
    return WorkloadSpec(
        name="MUMmerGPU",
        abbr="MUM",
        suite="Rodinia",
        category=Category.CACHE_SENSITIVE,
        loads=(
            LoadSpec(
                "tree", 0x7A8,
                IrregularAddress(_region(1), footprint_bytes=2 * MB, hot_bytes=6 * KB,
                                 hot_fraction=0.92, lines_per_warp=2, seed=21),
                weight=6,
            ),
            LoadSpec(
                "query", 0x460,
                IrregularAddress(_region(2), footprint_bytes=1 * MB, hot_bytes=4 * KB,
                                 hot_fraction=0.97, lines_per_warp=1, seed=22),
                weight=2,
            ),
            LoadSpec(
                "refs", 0x8A0,
                IrregularAddress(_region(3), footprint_bytes=1 * MB, hot_bytes=6 * KB,
                                 hot_fraction=0.90, lines_per_warp=2, seed=23),
                weight=1,
            ),
        ),
        iterations=14,
        waves=3,
        fresh_waves=False,
        alu_per_load=2,
        description="suffix-tree matching with a hot root region",
    )


def _nw() -> WorkloadSpec:
    """Needleman-Wunsch: huge-stride diagonal wavefront plus shared reference row."""
    big_stride = -1_966_080  # Table I's observed inter-warp stride
    # 96 warps x |stride| ~ 189 MB: footprints are sized so the stride
    # never wraps and stays exactly predictable, as in the real kernel.
    fp = 256 * MB
    return WorkloadSpec(
        name="Needleman-Wunsch",
        abbr="NW",
        suite="Rodinia",
        category=Category.CACHE_SENSITIVE,
        loads=(
            LoadSpec(
                "diag_up", 0x490,
                StridedAddress(_region(1), warp_stride=big_stride, iter_stride=-1280,
                               footprint_bytes=fp),
                weight=2,
            ),
            LoadSpec(
                "diag_left", 0xD18,
                StridedAddress(_region(2), warp_stride=big_stride, iter_stride=-1280,
                               footprint_bytes=fp),
                weight=2,
            ),
            LoadSpec(
                "reference", 0x300,
                BroadcastAddress(_region(3), region_bytes=4 * KB),
                weight=5,
            ),
            LoadSpec(
                "boundary", 0x108,
                StridedAddress(_region(4), warp_stride=big_stride, iter_stride=-1280,
                               footprint_bytes=fp),
                weight=1,
            ),
        ),
        iterations=26,
        waves=2,
        alu_per_load=1,
        description="anti-diagonal dynamic-programming sweep",
    )


def _spmv() -> WorkloadSpec:
    """SpMV: dense-vector gather with reuse plus streaming values."""
    return WorkloadSpec(
        name="SParse-Matrix dense-Vector multiplication",
        abbr="SPMV",
        suite="Parboil",
        category=Category.CACHE_SENSITIVE,
        loads=(
            LoadSpec(
                # Each warp's rows gather from its own slice of the dense
                # vector: intra-warp reuse CCWS/LAWS can recover.
                "vector_x", 0x1E0,
                IrregularAddress(_region(1), footprint_bytes=768 * KB,
                                 private_block_bytes=1024, hot_fraction=0.99,
                                 lines_per_warp=2, seed=41),
                weight=5,
            ),
            LoadSpec(
                "columns", 0x200,
                IrregularAddress(_region(2), footprint_bytes=96 * KB, hot_bytes=8 * KB,
                                 hot_fraction=0.75, lines_per_warp=1, seed=42),
                weight=2,
            ),
            LoadSpec(
                "values", 0xE0,
                StridedAddress(_region(3), warp_stride=512, iter_stride=49152,
                               footprint_bytes=4 * MB),
                weight=1,
            ),
        ),
        iterations=18,
        waves=3,
        fresh_waves=False,
        alu_per_load=1,
        description="CSR matrix-vector product",
    )


def _km() -> WorkloadSpec:
    """KMeans: one load, each warp re-walks a private 16-line region; the
    aggregate working set (96 KB/SM, 3x the L1) thrashes exactly as
    Section III-B describes (#L/#R ~ 0.06 but ~99% misses). Inter-warp
    stride 4352 matches Table I."""
    return WorkloadSpec(
        name="KMeans",
        abbr="KM",
        suite="Rodinia",
        category=Category.CACHE_SENSITIVE,
        loads=(
            LoadSpec(
                "points", 0xE8,
                StridedAddress(_region(1), warp_stride=4352, iter_stride=128,
                               wrap_bytes=2048, footprint_bytes=8 * MB),
                weight=2,
            ),
        ),
        iterations=36,
        waves=4,
        fresh_waves=False,
        alu_per_load=1,
        store=StoreSpec("membership", 0x1F8, StridedAddress(_region(2), warp_stride=128, iter_stride=12288)),
        description="per-thread feature walk repeated every outer iteration",
    )


def _lud() -> WorkloadSpec:
    """LU Decomposition: stride-2048 panel walks with lagged inter-warp reuse."""
    return WorkloadSpec(
        name="LU Decomposition",
        abbr="LUD",
        suite="Rodinia",
        category=Category.CACHE_INSENSITIVE,
        loads=(
            LoadSpec(
                "panel_a", 0x20F0,
                StridedAddress(_region(1), warp_stride=2048, iter_stride=256,
                               footprint_bytes=1 * MB),
                weight=2,
            ),
            LoadSpec(
                "panel_b", 0x2080,
                StridedAddress(_region(2), warp_stride=2048, iter_stride=256,
                               footprint_bytes=1 * MB),
                weight=2,
            ),
            LoadSpec(
                "pivot", 0x22E0,
                # Every workgroup reads the same pivot row: warp-invariant
                # addresses give the high-locality load LAWS exploits.
                StridedAddress(_region(3), warp_stride=0, iter_stride=128,
                               wrap_bytes=64 * KB, footprint_bytes=1 * MB),
                weight=2,
            ),
        ),
        iterations=30,
        waves=2,
        alu_per_load=2,
        description="blocked factorisation panels",
    )


def _srad() -> WorkloadSpec:
    """SRAD: stride-16384 image sweeps; the third load re-reads its own line
    (the #L/#R=0.52 load of Table I) and only survives if the scheduler keeps
    the other sweeps from evicting it."""
    return WorkloadSpec(
        name="Speckle Reducing Anisotropic Diffusion",
        abbr="SRAD",
        suite="Rodinia",
        category=Category.CACHE_INSENSITIVE,
        loads=(
            LoadSpec(
                "north", 0x250,
                StridedAddress(_region(1), warp_stride=16384, iter_stride=128,
                               footprint_bytes=4 * MB),
                weight=2,
            ),
            LoadSpec(
                "south", 0x230,
                StridedAddress(_region(2), warp_stride=16384, iter_stride=128,
                               footprint_bytes=4 * MB),
                weight=2,
            ),
            LoadSpec(
                "center", 0x350,
                StridedAddress(_region(3), warp_stride=16384, iter_stride=128,
                               footprint_bytes=4 * MB),
                weight=2,
                substep=False,
            ),
        ),
        iterations=30,
        waves=2,
        alu_per_load=1,
        store=StoreSpec("out", 0x3F0, StridedAddress(_region(4), warp_stride=16384, iter_stride=128)),
        description="stencil diffusion over a large image",
    )


def _pa() -> WorkloadSpec:
    """Particle filter: streaming particle array + broadcast weight table."""
    return WorkloadSpec(
        name="PArticle filter",
        abbr="PA",
        suite="Rodinia",
        category=Category.CACHE_INSENSITIVE,
        loads=(
            LoadSpec(
                "particles", 0x2210,
                StridedAddress(_region(1), warp_stride=8832, iter_stride=128,
                               footprint_bytes=4 * MB),
                weight=5,
            ),
            LoadSpec(
                "weights", 0x2230,
                BroadcastAddress(_region(2), region_bytes=4 * KB),
                weight=4,
            ),
            LoadSpec(
                "bins", 0x2088,
                StridedAddress(_region(3), warp_stride=256, iter_stride=128,
                               footprint_bytes=64 * KB),
                weight=1,
            ),
        ),
        iterations=26,
        waves=2,
        alu_per_load=1,
        description="sequential Monte Carlo resampling",
    )


def _histo() -> WorkloadSpec:
    """Histogram: noisy stride-512 input scan with scattered bin updates."""
    return WorkloadSpec(
        name="HISTOgram",
        abbr="HISTO",
        suite="Parboil",
        category=Category.CACHE_INSENSITIVE,
        loads=(
            LoadSpec(
                # iter_stride exceeds the 96-warp span so successive
                # iterations never re-touch jittered neighbours.
                "pixels", 0x168,
                IndirectAddress(_region(1), warp_stride=512, window_bytes=1024,
                                iter_stride=59392, footprint_bytes=4 * MB, seed=91),
                weight=4,
            ),
        ),
        iterations=26,
        waves=2,
        alu_per_load=2,
        store=StoreSpec("bins", 0x1A0, IndirectAddress(_region(2), warp_stride=256,
                                                       window_bytes=2048,
                                                       footprint_bytes=128 * KB, seed=92)),
        description="input scan feeding scattered bin increments",
    )


def _bp() -> WorkloadSpec:
    """Back Propagation: stride-128 layer sweeps; the third load re-reads the
    first load's lines shortly afterwards (its low miss rate in Table I)."""
    input_gen = StridedAddress(_region(1), warp_stride=128, iter_stride=12288,
                               footprint_bytes=2 * MB)
    return WorkloadSpec(
        name="Back Propagation",
        abbr="BP",
        suite="Rodinia",
        category=Category.CACHE_INSENSITIVE,
        loads=(
            LoadSpec("input", 0x3F8, input_gen, weight=2),
            # The re-read follows closely so its reuse window is short
            # (the load's 0.03 miss rate in Table I).
            LoadSpec("input_again", 0x478, input_gen, weight=2),
            LoadSpec(
                "hidden", 0x408,
                StridedAddress(_region(2), warp_stride=128, iter_stride=12288,
                               footprint_bytes=2 * MB),
                weight=2,
            ),
        ),
        iterations=26,
        waves=2,
        alu_per_load=2,
        store=StoreSpec("deltas", 0x4F0, StridedAddress(_region(3), warp_stride=128, iter_stride=12288)),
        description="feed-forward and error sweeps over layer arrays",
    )


def _pf() -> WorkloadSpec:
    """PathFinder: compute-heavy wavefront over a cache-resident row."""
    return WorkloadSpec(
        name="PathFinder",
        abbr="PF",
        suite="Rodinia",
        category=Category.COMPUTE,
        loads=(
            LoadSpec(
                # The active DP row is shared by every workgroup: the
                # high-locality load whose lifetime LAWS's grouping extends.
                "row", 0x120,
                StridedAddress(_region(1), warp_stride=0, iter_stride=128,
                               wrap_bytes=1024, footprint_bytes=1 * MB),
                weight=1,
            ),
            LoadSpec(
                "wall", 0x148,
                StridedAddress(_region(2), warp_stride=128, iter_stride=12288,
                               footprint_bytes=4 * MB),
                weight=1,
            ),
        ),
        iterations=20,
        waves=3,
        fresh_waves=False,
        alu_per_load=8,
        description="dynamic-programming grid walk, high arithmetic intensity",
    )


def _cs() -> WorkloadSpec:
    """ConvolutionSeparable: streaming rows + broadcast filter taps."""
    return WorkloadSpec(
        name="ConvolutionSeparable",
        abbr="CS",
        suite="CUDA",
        category=Category.COMPUTE,
        loads=(
            LoadSpec(
                "row_in", 0x210,
                StridedAddress(_region(1), warp_stride=128, iter_stride=12288,
                               footprint_bytes=8 * MB),
                weight=3,
            ),
            LoadSpec(
                "taps", 0x248,
                BroadcastAddress(_region(2), region_bytes=1 * KB),
                weight=1,
            ),
        ),
        iterations=30,
        waves=2,
        alu_per_load=5,
        store=StoreSpec("row_out", 0x2A0, StridedAddress(_region(3), warp_stride=128, iter_stride=12288)),
        description="separable filter over image rows",
    )


def _st() -> WorkloadSpec:
    """Stencil: large-stride neighbour reads with jitter that degrades
    prefetch accuracy (the paper's worst case for APRES energy)."""
    return WorkloadSpec(
        name="Stencil",
        abbr="ST",
        suite="Parboil",
        category=Category.COMPUTE,
        loads=(
            LoadSpec(
                "north", 0x310,
                StridedAddress(_region(1), warp_stride=16384, iter_stride=128,
                               footprint_bytes=8 * MB),
                weight=2,
            ),
            LoadSpec(
                "south", 0x338,
                StridedAddress(_region(2), warp_stride=16384, iter_stride=128,
                               footprint_bytes=8 * MB),
                weight=2,
            ),
            LoadSpec(
                # Boundary halo: the wrap makes the predictor's confirmed
                # stride periodically wrong, yielding the paper's
                # wasted-prefetch energy on ST (Section V-F).
                "halo", 0x360,
                StridedAddress(_region(3), warp_stride=16384, iter_stride=640,
                               wrap_bytes=8192, footprint_bytes=8 * MB),
                weight=1,
            ),
        ),
        iterations=26,
        waves=2,
        alu_per_load=8,
        store=StoreSpec("out", 0x3A0, StridedAddress(_region(4), warp_stride=16384, iter_stride=128)),
        description="7-point stencil with semi-regular neighbours",
    )


def _hs() -> WorkloadSpec:
    """HotSpot: compute-bound, working set fits in L1."""
    return WorkloadSpec(
        name="HotSpot",
        abbr="HS",
        suite="Rodinia",
        category=Category.COMPUTE,
        loads=(
            LoadSpec(
                "temp", 0x410,
                StridedAddress(_region(1), warp_stride=256, iter_stride=128,
                               wrap_bytes=1024, footprint_bytes=512 * KB),
                weight=1,
            ),
            LoadSpec(
                "power", 0x438,
                BroadcastAddress(_region(2), region_bytes=8 * KB),
                weight=1,
            ),
        ),
        iterations=20,
        waves=3,
        fresh_waves=False,
        alu_per_load=14,
        description="thermal simulation over a tile held in cache",
    )


def _sp() -> WorkloadSpec:
    """ScalarProd: pure streaming dot products; prefetching is the only lever."""
    return WorkloadSpec(
        name="ScalarProd",
        abbr="SP",
        suite="CUDA",
        category=Category.COMPUTE,
        loads=(
            LoadSpec(
                "vec_a", 0x510,
                StridedAddress(_region(1), warp_stride=128, iter_stride=12288,
                               footprint_bytes=16 * MB),
                weight=2,
            ),
            LoadSpec(
                "vec_b", 0x538,
                StridedAddress(_region(2), warp_stride=128, iter_stride=12288,
                               footprint_bytes=16 * MB),
                weight=2,
            ),
        ),
        iterations=20,
        waves=3,
        alu_per_load=6,
        description="grid-stride dot product over long vectors",
    )


#: The full suite keyed by abbreviation, in the paper's Table IV order.
SUITE: dict[str, WorkloadSpec] = {
    spec.abbr: spec
    for spec in (
        _bfs(), _mum(), _nw(), _spmv(), _km(),
        _lud(), _srad(), _pa(), _histo(), _bp(),
        _pf(), _cs(), _st(), _hs(), _sp(),
    )
}


def workload(abbr: str) -> WorkloadSpec:
    """Look up a workload by its Table IV abbreviation."""
    try:
        return SUITE[abbr]
    except KeyError:
        known = ", ".join(SUITE)
        raise KeyError(f"unknown workload {abbr!r}; known: {known}") from None


def cache_sensitive_workloads() -> list[WorkloadSpec]:
    return [w for w in SUITE.values() if w.category is Category.CACHE_SENSITIVE]


def cache_insensitive_workloads() -> list[WorkloadSpec]:
    return [w for w in SUITE.values() if w.category is Category.CACHE_INSENSITIVE]


def compute_workloads() -> list[WorkloadSpec]:
    return [w for w in SUITE.values() if w.category is Category.COMPUTE]


def memory_intensive_workloads() -> list[WorkloadSpec]:
    return [w for w in SUITE.values() if w.memory_intensive]
