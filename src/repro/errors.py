"""Exception hierarchy for the APRES reproduction."""


class ReproError(Exception):
    """Base class for all library errors."""


class ConfigError(ReproError):
    """Invalid simulation configuration."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent or unrecoverable state."""


class WorkloadError(ReproError):
    """Invalid workload specification."""
