"""Exception hierarchy for the APRES reproduction.

Every error carries an optional ``details`` mapping of structured,
JSON-serialisable diagnostic state (counters, per-warp status, queue
depths) so callers — most importantly the sweep runner and the CLI — can
persist *why* a run failed without parsing the message string.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional


class ReproError(Exception):
    """Base class for all library errors.

    Attributes:
        details: Structured diagnostic payload. Always a plain dict (possibly
            empty); values should be JSON-serialisable.
    """

    def __init__(self, message: str = "", *, details: Optional[Mapping[str, Any]] = None):
        super().__init__(message)
        self.details: dict[str, Any] = dict(details or {})


class ConfigError(ReproError):
    """Invalid simulation configuration."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent or unrecoverable state."""


class InvariantError(SimulationError):
    """A conservation invariant failed mid-simulation.

    ``details`` holds a structured snapshot of the violating state (which
    invariant, the counters involved, and a machine summary) captured at
    the cycle the check ran.
    """


class WatchdogTimeout(SimulationError):
    """The watchdog detected livelock/deadlock or an exceeded cycle budget.

    ``details`` holds the diagnostic dump (per-warp status, MSHR occupancy,
    DRAM queue depths); when a dump directory is configured the same
    payload is also written to a JSON file whose path is in
    ``details["dump_path"]``.
    """


class CheckpointError(ReproError):
    """A simulator snapshot could not be written, read, or restored."""


class WorkloadError(ReproError):
    """Invalid workload specification."""


class LintError(ReproError):
    """The static-analysis pass itself failed (not a lint finding).

    Raised for unreadable paths, unknown rule codes, or a rule crashing;
    the CLI maps it to exit code 2, distinguishing "the linter broke"
    from "the linter found problems" (exit 1).
    """
