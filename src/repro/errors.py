"""Exception hierarchy for the APRES reproduction.

Every error carries an optional ``details`` mapping of structured,
JSON-serialisable diagnostic state (counters, per-warp status, queue
depths) so callers — most importantly the sweep runner and the CLI — can
persist *why* a run failed without parsing the message string.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional


class ReproError(Exception):
    """Base class for all library errors.

    Attributes:
        details: Structured diagnostic payload. Always a plain dict (possibly
            empty); values should be JSON-serialisable.
    """

    def __init__(self, message: str = "", *, details: Optional[Mapping[str, Any]] = None):
        super().__init__(message)
        self.details: dict[str, Any] = dict(details or {})


class ConfigError(ReproError):
    """Invalid simulation configuration."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent or unrecoverable state."""


class InvariantError(SimulationError):
    """A conservation invariant failed mid-simulation.

    ``details`` holds a structured snapshot of the violating state (which
    invariant, the counters involved, and a machine summary) captured at
    the cycle the check ran.
    """


class WatchdogTimeout(SimulationError):
    """The watchdog detected livelock/deadlock or an exceeded cycle budget.

    ``details`` holds the diagnostic dump (per-warp status, MSHR occupancy,
    DRAM queue depths); when a dump directory is configured the same
    payload is also written to a JSON file whose path is in
    ``details["dump_path"]``.
    """


class CheckpointError(ReproError):
    """A simulator snapshot could not be written, read, or restored."""


class ShardConfigError(ConfigError):
    """Invalid or unsupported sharded-execution configuration.

    Raised when ``--shards`` is combined with a feature the epoch-barrier
    engine cannot support yet (checkpointing, telemetry hubs, trace
    capture) or when the shard/worker budget is inconsistent with
    ``--jobs``. ``details`` names the offending combination.
    """


class ShardWorkerLost(SimulationError):
    """A shard worker process died or missed its barrier deadline.

    ``details`` carries the worker id, the epoch window it was executing
    and the failure kind (``"eof"`` for a dead pipe, ``"deadline"`` for a
    missed heartbeat). The engine catches this internally to retry or
    degrade to the serial engine; it escapes only when recovery is
    disabled.
    """


class SamplingConfigError(ConfigError):
    """Invalid or unsupported sampled-execution configuration.

    Raised when ``--sampled`` is combined with a feature the sampled
    executor cannot honour (telemetry hubs, intra-run sharding) or when
    a plan parameter is out of range. ``details`` names the offending
    combination.
    """


class SamplingError(ReproError):
    """The sampled executor reached an inconsistent state.

    Raised when a restored checkpoint does not replay to the measured
    interval's boundary (the bit-identical-continuation contract broke)
    or when a profile is internally inconsistent with its checkpoints.
    """


class WorkloadError(ReproError):
    """Invalid workload specification."""


class LintError(ReproError):
    """The static-analysis pass itself failed (not a lint finding).

    Raised for unreadable paths, unknown rule codes, or a rule crashing;
    the CLI maps it to exit code 2, distinguishing "the linter broke"
    from "the linter found problems" (exit 1).
    """
