"""Memory-trace recording and trace-driven cache replay.

The execution-driven simulator is what the reproduction's experiments use
(scheduling changes the address stream), but a recorded trace is useful
for offline cache studies: sweep cache geometries over one fixed access
stream, compare replacement behaviour, or export workloads for external
tools.
"""

from repro.trace.recorder import TraceEvent, TraceRecorder, load_trace, save_trace
from repro.trace.replay import ReplayResult, capacity_sweep, replay_trace

__all__ = [
    "TraceEvent",
    "TraceRecorder",
    "load_trace",
    "save_trace",
    "ReplayResult",
    "capacity_sweep",
    "replay_trace",
]
