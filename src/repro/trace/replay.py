"""Trace-driven cache replay.

Replays a recorded load stream through a standalone cache model — no
pipeline, no timing feedback — to evaluate cache geometry against a fixed
access stream. This is the classic trace-driven methodology; it cannot
capture scheduling effects (the trace freezes the interleaving, which is
exactly what APRES manipulates), so the reproduction's experiments use the
execution-driven simulator instead. Replay is for offline what-if studies:
"would 64 KB have fit this stream?".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.config import CacheConfig
from repro.mem.tags import LineMeta, TagArray
from repro.trace.recorder import TraceEvent


@dataclass(frozen=True)
class ReplayResult:
    """Cache behaviour of one replayed stream."""

    accesses: int
    hits: int
    cold_misses: int
    capacity_conflict_misses: int

    @property
    def misses(self) -> int:
        return self.cold_misses + self.capacity_conflict_misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


def replay_trace(
    events: Iterable[TraceEvent],
    cache: CacheConfig,
    sm_id: Optional[int] = None,
) -> ReplayResult:
    """Replay a trace's line accesses through an LRU cache of ``cache``'s
    geometry. ``sm_id`` restricts to one SM's stream (each SM has its own
    L1, so mixing SMs would model a shared cache instead).
    """
    tags = TagArray(cache)
    seen: set[int] = set()
    accesses = hits = cold = cap = 0
    for event in events:
        if sm_id is not None and event.sm_id != sm_id:
            continue
        for line in event.line_addrs:
            accesses += 1
            if tags.probe(line) is not None:
                hits += 1
                continue
            if line in seen:
                cap += 1
            else:
                seen.add(line)
                cold += 1
            tags.insert(line, LineMeta(referenced=True))
    return ReplayResult(accesses, hits, cold, cap)


def capacity_sweep(
    events: list[TraceEvent],
    sizes_bytes: Iterable[int],
    associativity: int = 8,
    line_size: int = 128,
    sm_id: Optional[int] = 0,
) -> dict[int, ReplayResult]:
    """Replay one stream against several cache capacities."""
    out: dict[int, ReplayResult] = {}
    for size in sizes_bytes:
        cfg = CacheConfig(size_bytes=size, associativity=associativity,
                          line_size=line_size)
        out[size] = replay_trace(events, cfg, sm_id=sm_id)
    return out
