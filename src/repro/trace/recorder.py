"""Recording load streams from a simulation.

A :class:`TraceRecorder` is a load observer (the same hook the
characterisation profiler uses); it captures one :class:`TraceEvent` per
executed load. Traces serialise to gzipped JSON-lines, one event per line,
so they stream and diff well.
"""

from __future__ import annotations

import gzip
import json
import pathlib
from dataclasses import dataclass, asdict
from typing import Iterable, Union

from repro.mem.request import LoadAccess

PathLike = Union[str, pathlib.Path]


@dataclass(frozen=True)
class TraceEvent:
    """One executed load."""

    cycle: int
    sm_id: int
    warp_id: int
    pc: int
    primary_addr: int
    line_addrs: tuple[int, ...]
    primary_hit: bool

    @classmethod
    def from_access(cls, access: LoadAccess) -> "TraceEvent":
        return cls(
            cycle=access.cycle,
            sm_id=access.sm_id,
            warp_id=access.warp_id,
            pc=access.pc,
            primary_addr=access.primary_addr,
            line_addrs=tuple(access.line_addrs),
            primary_hit=access.primary_hit,
        )


class TraceRecorder:
    """Attachable observer accumulating the load stream of a run.

    Usage::

        recorder = TraceRecorder()
        simulate(kernel, config, engine, load_observers=[recorder.observe])
        save_trace(recorder.events, "run.trace.gz")
    """

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []

    def observe(self, access: LoadAccess, line_hits: list[bool]) -> None:
        self.events.append(TraceEvent.from_access(access))

    def __len__(self) -> int:
        return len(self.events)

    def line_stream(self, sm_id: int | None = None) -> list[int]:
        """The flattened line-address stream (optionally for one SM)."""
        out: list[int] = []
        for e in self.events:
            if sm_id is None or e.sm_id == sm_id:
                out.extend(e.line_addrs)
        return out


def save_trace(events: Iterable[TraceEvent], path: PathLike) -> int:
    """Write events as gzipped JSON lines; returns the event count."""
    count = 0
    with gzip.open(path, "wt", encoding="utf-8") as fh:
        for event in events:
            record = asdict(event)
            record["line_addrs"] = list(record["line_addrs"])
            fh.write(json.dumps(record, separators=(",", ":")) + "\n")
            count += 1
    return count


def load_trace(path: PathLike) -> list[TraceEvent]:
    """Read a trace written by :func:`save_trace`."""
    events: list[TraceEvent] = []
    with gzip.open(path, "rt", encoding="utf-8") as fh:
        for line in fh:
            record = json.loads(line)
            record["line_addrs"] = tuple(record["line_addrs"])
            events.append(TraceEvent(**record))
    return events
