"""Deterministic k-medoids over interval behaviour signatures.

Representative-interval selection (SimPoint/SMARTS-style, see Bueno et
al. in PAPERS.md) needs exactly one property beyond clustering quality:
the same profile must always yield the same representatives, weights and
therefore the same estimates — across processes, ``PYTHONHASHSEED``
values and ``--jobs`` settings. Everything here is pure arithmetic over
lists in index order: quantile-spaced initialisation over a sorted
feature-norm order, fixed-order assignment sweeps, and index-based tie
breaks. No randomness, no hash-ordered iteration.

Medoids (actual intervals) rather than means, because a representative
must be a *simulatable* interval — the executor restores its checkpoint
and re-runs it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

#: Assignment/update sweeps before giving up on convergence. k-medoids on
#: a few hundred intervals converges in a handful of sweeps; the cap only
#: bounds pathological oscillation.
_MAX_SWEEPS = 64


@dataclass(frozen=True)
class Cluster:
    """One cluster: the medoid interval index and its members (sorted)."""

    medoid: int
    members: tuple[int, ...]


def zscore(vectors: Sequence[Sequence[float]]) -> list[tuple[float, ...]]:
    """Per-feature z-normalisation (constant features collapse to 0.0).

    Clustering distances must not be dominated by whichever feature has
    the largest raw magnitude (instruction counts vs miss-rate ratios).
    """
    if not vectors:
        return []
    dims = len(vectors[0])
    n = len(vectors)
    means = [sum(v[d] for v in vectors) / n for d in range(dims)]
    stds = []
    for d in range(dims):
        var = sum((v[d] - means[d]) ** 2 for v in vectors) / n
        stds.append(var ** 0.5)
    out = []
    for v in vectors:
        out.append(tuple(
            (v[d] - means[d]) / stds[d] if stds[d] > 0.0 else 0.0
            for d in range(dims)
        ))
    return out


def _sqdist(a: Sequence[float], b: Sequence[float]) -> float:
    return sum((x - y) ** 2 for x, y in zip(a, b))


def _initial_medoids(vectors: Sequence[Sequence[float]], k: int) -> list[int]:
    """Quantile-spaced seeds along the feature-norm ordering.

    Sorting by (norm, index) and picking evenly spaced positions spreads
    the seeds across the behaviour range deterministically — the moral
    equivalent of k-means++ without its randomness.
    """
    n = len(vectors)
    order = sorted(range(n), key=lambda i: (sum(x * x for x in vectors[i]), i))
    positions: list[int] = []
    for j in range(k):
        pos = (j * (n - 1)) // (k - 1) if k > 1 else 0
        if pos not in positions:
            positions.append(pos)
    # Rounding collisions (k close to n) leave gaps; fill with the
    # lowest unused positions so exactly k distinct seeds come out.
    for pos in range(n):
        if len(positions) == k:
            break
        if pos not in positions:
            positions.append(pos)
    return sorted(order[pos] for pos in positions)


def _assign(vectors, medoids: list[int]) -> list[list[int]]:
    members: list[list[int]] = [[] for _ in medoids]
    for i, vec in enumerate(vectors):
        best = 0
        best_d = _sqdist(vec, vectors[medoids[0]])
        for c in range(1, len(medoids)):
            d = _sqdist(vec, vectors[medoids[c]])
            if d < best_d:  # strict: ties keep the lowest cluster index
                best, best_d = c, d
        members[best].append(i)
    return members


def _medoid_of(vectors, members: list[int]) -> int:
    best = members[0]
    best_cost = None
    for candidate in members:
        cost = sum(_sqdist(vectors[candidate], vectors[m]) for m in members)
        if best_cost is None or cost < best_cost:  # ties keep lowest index
            best, best_cost = candidate, cost
    return best


def kmedoids(vectors: Sequence[Sequence[float]], k: int) -> list[Cluster]:
    """Partition ``vectors`` into ``k`` clusters around medoid elements.

    Returns clusters sorted by medoid index; every input index appears in
    exactly one cluster. ``k`` is clamped to ``len(vectors)``.
    """
    n = len(vectors)
    if n == 0:
        return []
    k = max(1, min(k, n))
    medoids = _initial_medoids(vectors, k)
    members = _assign(vectors, medoids)
    for _ in range(_MAX_SWEEPS):
        new_medoids = [
            _medoid_of(vectors, ms) if ms else medoids[c]
            for c, ms in enumerate(members)
        ]
        new_medoids.sort()
        if new_medoids == medoids:
            break
        medoids = new_medoids
        members = _assign(vectors, medoids)
    clusters = [
        Cluster(medoid=medoids[c], members=tuple(members[c]))
        for c in range(len(medoids))
        if members[c]
    ]
    clusters.sort(key=lambda cl: cl.medoid)
    return clusters
