"""Content-addressed profile store: build once, sample many times.

A profile (signatures + checkpoints + totals) depends only on
``(workload, config, scale, gpu-config, interval_cycles)``, so it is
stored under the content hash of exactly that tuple. The sampled
executor asks the store; a hit skips the detailed profiling run
entirely, which is what amortises the one-time profiling cost across
sampled figure sweeps, benches and repeat invocations.

Layout (root defaults to ``bench_results/sample_profiles``, overridable
via ``$REPRO_SAMPLE_PROFILE_DIR``; the directory is gitignored)::

    <root>/<key>/ckpt_<cycle>.bin   zlib-compressed simulator snapshots
    <root>/<key>/profile.json       metadata; written last = key complete

Writes are atomic (temp + ``os.replace``) and deterministic for a given
point, so concurrent builders of the same key are benign — last writer
wins with identical content.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Optional

from repro.config import GPUConfig
from repro.errors import SamplingError
from repro.integrity.checkpoint import CheckpointSeries
from repro.sampling.profile import PROFILE_FORMAT, SampleProfile, build_profile

#: Environment override for the on-disk profile root.
PROFILE_DIR_ENV = "REPRO_SAMPLE_PROFILE_DIR"

_DEFAULT_ROOT = "bench_results/sample_profiles"

#: In-memory metadata cache entries (profiles are small; blobs stay on
#: disk except for the just-built set).
_MEMORY_CACHE_MAX = 16


def profile_key(workload: str, config_name: str, scale: float,
                gpu_config: GPUConfig, interval_cycles: int) -> str:
    """Content hash identifying one profile."""
    from repro.registry.records import config_hash, content_hash

    return content_hash({
        "kind": "sample_profile",
        "format": PROFILE_FORMAT,
        "workload": workload,
        "config": config_name,
        "scale": scale,
        "gpu_config": config_hash(gpu_config),
        "interval_cycles": interval_cycles,
    })


class ProfileStore:
    """Disk-backed, memory-cached registry of sampling profiles."""

    def __init__(self, root: Optional[str] = None):
        self.root = pathlib.Path(
            root
            or os.environ.get(PROFILE_DIR_ENV, "").strip()
            or _DEFAULT_ROOT
        )
        self._profiles: dict[str, SampleProfile] = {}
        #: Checkpoint blobs of profiles built in this process, by
        #: (key, cycle). Avoids immediately re-reading what we just wrote.
        self._blobs: dict[tuple[str, int], bytes] = {}

    # ------------------------------------------------------------------
    # Lookup / build
    # ------------------------------------------------------------------

    def get_or_build(
        self,
        workload: str,
        config_name: str,
        scale: float,
        gpu_config: GPUConfig,
        interval_cycles: int,
    ) -> tuple[SampleProfile, bool]:
        """The profile for one point; builds and persists on miss.

        Returns ``(profile, was_cached)``.
        """
        key = profile_key(workload, config_name, scale, gpu_config,
                          interval_cycles)
        cached = self._profiles.get(key)
        if cached is not None:
            return cached, True
        loaded = self._load(key)
        if loaded is not None:
            self._remember(key, loaded)
            return loaded, True
        profile, series = build_profile(
            workload, config_name, scale, gpu_config, interval_cycles)
        self._persist(key, profile, series)
        self._remember(key, profile)
        for cycle, blob in series.entries():
            self._blobs[(key, cycle)] = blob
        return profile, False

    # ------------------------------------------------------------------
    # Checkpoints
    # ------------------------------------------------------------------

    def checkpoint_blob(self, key: str, cycle: int) -> bytes:
        """The compressed snapshot taken at ``cycle`` (memory, then disk)."""
        blob = self._blobs.get((key, cycle))
        if blob is not None:
            return blob
        path = self.root / key / f"ckpt_{cycle}.bin"
        try:
            return path.read_bytes()
        except OSError as exc:
            raise SamplingError(
                f"profile {key} lists a checkpoint at cycle {cycle} but "
                f"{path} is unreadable: {exc}",
                details={"key": key, "cycle": cycle, "path": str(path)},
            ) from exc

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _remember(self, key: str, profile: SampleProfile) -> None:
        self._profiles[key] = profile
        while len(self._profiles) > _MEMORY_CACHE_MAX:
            evicted = next(iter(self._profiles))
            del self._profiles[evicted]
            for blob_key in [bk for bk in self._blobs if bk[0] == evicted]:
                del self._blobs[blob_key]

    def _load(self, key: str) -> Optional[SampleProfile]:
        path = self.root / key / "profile.json"
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if payload.get("format") != PROFILE_FORMAT:
            return None
        try:
            return SampleProfile.from_dict(payload)
        except (KeyError, TypeError, ValueError):
            return None

    def _persist(self, key: str, profile: SampleProfile,
                 series: CheckpointSeries) -> None:
        directory = self.root / key
        try:
            directory.mkdir(parents=True, exist_ok=True)
            for cycle, blob in series.entries():
                self._atomic_write(directory / f"ckpt_{cycle}.bin", blob)
            meta = json.dumps(profile.as_dict(), sort_keys=True,
                              separators=(",", ":")).encode("utf-8")
            self._atomic_write(directory / "profile.json", meta)
        except OSError:
            # A read-only results dir must not fail the run: the profile
            # stays usable in memory for this process.
            pass

    @staticmethod
    def _atomic_write(path: pathlib.Path, blob: bytes) -> None:
        tmp = path.with_suffix(path.suffix + f".tmp{os.getpid()}")
        with open(tmp, "wb") as fh:
            fh.write(blob)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)


#: Process-wide default store (figure/scorecard producers and the runner
#: share one so profiles built for a figure serve the scorecard too).
_DEFAULT_STORE: Optional[ProfileStore] = None


def default_store() -> ProfileStore:
    global _DEFAULT_STORE
    if _DEFAULT_STORE is None:
        _DEFAULT_STORE = ProfileStore()
    return _DEFAULT_STORE


def set_default_store(store: Optional[ProfileStore]) -> None:
    """Install (or clear, with ``None``) the process-wide profile store."""
    global _DEFAULT_STORE
    _DEFAULT_STORE = store
