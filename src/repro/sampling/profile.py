"""The profiling pass: one detailed run, tiled into signature intervals.

Sampled simulation needs three things from a workload/config point before
it can skip work: (1) behaviour signatures per fixed-size interval (the
clustering features — the :data:`~repro.telemetry.intervals.INTERVAL_METRICS`
registry, including the stall-mix and L2 metrics added for this purpose),
(2) machine-state checkpoints at interval starts so representatives can
be re-simulated in isolation, and (3) the run's total cycle count (the
structural quantity the estimator extrapolates over). One coarse-window
detailed run produces all three; its cost is paid once per
``(workload, config, scale, gpu-config, interval)`` and amortised across
every sampled evaluation through the profile store.

Interval boundaries are the simulator's actual pause cycles: the profiler
drives :meth:`~repro.sm.simulator.GPUSimulator.step_until` to each
``interval_cycles`` boundary, flushes the collector at the pause point
and snapshots there. Because pause/resume is bit-identical, restoring the
snapshot taken at an interval's start and stepping to its end reproduces
the profile's own counter deltas exactly — warmup is a robustness margin,
not a correctness requirement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.config import GPUConfig
from repro.integrity.checkpoint import CheckpointSeries
from repro.sm.simulator import GPUSimulator
from repro.telemetry.hub import TelemetryHub
from repro.telemetry.intervals import INTERVAL_METRICS, IntervalCollector

#: Bump when the stored profile layout changes incompatibly.
PROFILE_FORMAT = 1

#: Hub window during profiling: never flush the hub's own collector (the
#: profiler drives a separate collector at exact pause points instead).
_NO_FLUSH_WINDOW = 1 << 62

#: Signature features used for clustering, in order. A subset of
#: INTERVAL_METRICS: cumulative metrics (ipc_cum) and raw counts that
#: scale with span (instructions, l1_accesses) would smear phase
#: structure, so only per-cycle/ratio behaviour descriptors cluster.
SIGNATURE_FEATURES: tuple[str, ...] = (
    "ipc",
    "l1_miss_rate",
    "l2_miss_rate",
    "mshr_occupancy",
    "prefetch_accuracy",
    "stall_frac_mshr_full",
    "stall_frac_dram_queue",
    "stall_frac_l1_pending",
    "stall_frac_scoreboard",
    "stall_frac_sched_throttle",
    "stall_frac_no_warp",
)


@dataclass(frozen=True)
class ProfileInterval:
    """One profiled tile: [start, end) plus its metric signature."""

    index: int
    start: int
    end: int
    metrics: dict[str, float]

    @property
    def span(self) -> int:
        return self.end - self.start

    def signature(self) -> tuple[float, ...]:
        return tuple(float(self.metrics[name]) for name in SIGNATURE_FEATURES)

    def as_dict(self) -> dict:
        return {"index": self.index, "start": self.start, "end": self.end,
                "metrics": dict(self.metrics)}

    @classmethod
    def from_dict(cls, payload: dict) -> "ProfileInterval":
        return cls(index=int(payload["index"]), start=int(payload["start"]),
                   end=int(payload["end"]),
                   metrics=dict(payload["metrics"]))


@dataclass
class SampleProfile:
    """Everything the sampled executor needs about one profiled point."""

    workload: str
    config_name: str
    scale: float
    config_hash: str
    kernel_name: str
    num_sms: int
    interval_cycles: int
    total_cycles: int
    intervals: list[ProfileInterval]
    checkpoint_cycles: list[int]
    checkpoint_stride: int
    #: Full-run ground truth (flattened stats + ipc). The estimator never
    #: reads it — it exists so benches and CI can *measure* estimation
    #: error instead of assuming it.
    truth: dict[str, float] = field(default_factory=dict)
    format: int = PROFILE_FORMAT

    def as_dict(self) -> dict:
        return {
            "format": self.format,
            "workload": self.workload,
            "config_name": self.config_name,
            "scale": self.scale,
            "config_hash": self.config_hash,
            "kernel_name": self.kernel_name,
            "num_sms": self.num_sms,
            "interval_cycles": self.interval_cycles,
            "total_cycles": self.total_cycles,
            "intervals": [iv.as_dict() for iv in self.intervals],
            "checkpoint_cycles": list(self.checkpoint_cycles),
            "checkpoint_stride": self.checkpoint_stride,
            "truth": dict(self.truth),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SampleProfile":
        return cls(
            workload=payload["workload"],
            config_name=payload["config_name"],
            scale=float(payload["scale"]),
            config_hash=payload["config_hash"],
            kernel_name=payload["kernel_name"],
            num_sms=int(payload["num_sms"]),
            interval_cycles=int(payload["interval_cycles"]),
            total_cycles=int(payload["total_cycles"]),
            intervals=[ProfileInterval.from_dict(p)
                       for p in payload["intervals"]],
            checkpoint_cycles=[int(c) for c in payload["checkpoint_cycles"]],
            checkpoint_stride=int(payload["checkpoint_stride"]),
            truth=dict(payload.get("truth") or {}),
            format=int(payload.get("format", PROFILE_FORMAT)),
        )


class _RecordSink:
    """Interval sink collecting flush records in order."""

    def __init__(self) -> None:
        self.records: list[dict[str, Any]] = []

    def on_interval(self, record: dict[str, Any]) -> None:
        self.records.append(record)


def build_simulator(workload_abbr: str, config_name: str, scale: float,
                    gpu_config: GPUConfig,
                    telemetry: Optional[TelemetryHub] = None) -> GPUSimulator:
    """A fresh simulator for one point, built exactly as the runner does."""
    from repro.experiments.configs import CONFIGS
    from repro.workloads.suite import workload
    from repro.workloads.synthetic import build_kernel

    spec = workload(workload_abbr)
    kernel = build_kernel(spec, scale)
    engine = CONFIGS[config_name]
    return GPUSimulator(kernel, gpu_config, engine.build, telemetry=telemetry)


def build_profile(
    workload_abbr: str,
    config_name: str,
    scale: float,
    gpu_config: GPUConfig,
    interval_cycles: int,
    *,
    max_checkpoints: int = 256,
) -> tuple[SampleProfile, CheckpointSeries]:
    """Run the point once in detail; tile, sign, and checkpoint it."""
    from repro.registry.records import config_hash, flatten_metrics

    hub = TelemetryHub(window=_NO_FLUSH_WINDOW)
    sim = build_simulator(workload_abbr, config_name, scale, gpu_config,
                          telemetry=hub)
    collector = IntervalCollector(
        sim.stats,
        sim.subsystem.l1s,
        window=interval_cycles,
        num_sms=gpu_config.num_sms,
        stalls=hub.stalls,
    )
    sink = _RecordSink()
    collector.add_sink(sink)
    series = CheckpointSeries(max_entries=max_checkpoints)
    boundary = interval_cycles
    index = 0
    while True:
        finished = sim.step_until(boundary)
        now = sim.current_cycle
        if finished:
            collector.finish(now)
            break
        collector.on_tick(now)
        index += 1
        series.offer(index, sim)
        boundary = now + interval_cycles
    result = sim.result()
    intervals = [
        ProfileInterval(
            index=i,
            start=record["cycle_start"],
            end=record["cycle_end"],
            metrics={name: record[name] for name in INTERVAL_METRICS},
        )
        for i, record in enumerate(sink.records)
    ]
    truth = flatten_metrics(result.stats.as_dict())
    truth["ipc"] = result.stats.ipc
    truth["engine_events"] = float(result.engine_events)
    profile = SampleProfile(
        workload=workload_abbr,
        config_name=config_name,
        scale=scale,
        config_hash=config_hash(gpu_config),
        kernel_name=result.kernel_name,
        num_sms=gpu_config.num_sms,
        interval_cycles=interval_cycles,
        total_cycles=result.stats.cycles,
        intervals=intervals,
        checkpoint_cycles=series.cycles(),
        checkpoint_stride=series.stride,
        truth=truth,
    )
    return profile, series
