"""Sampled execution: measure representatives, extrapolate the whole run.

The estimator (SimPoint/SMARTS lineage — see DESIGN.md "Sampled
simulation" for the math):

1. Profile the point once (:mod:`repro.sampling.profile`) into intervals
   ``i`` with spans ``s_i`` and behaviour signatures; total cycles ``T``.
2. Cluster signatures with deterministic k-medoids; cluster ``c`` has
   cycle mass ``S_c = sum(s_i, i in c)``, giving the weight
   ``w_c = S_c / T``. Its representative ``r_c`` is the member whose
   profile-signature IPC is closest to the cluster's span-weighted mean
   IPC — a selection (not estimation) step that cancels most of the
   medoid-vs-cluster-mean bias, since IPC is the headline extrapolated
   quantity.
3. For each representative, restore the newest profile checkpoint at or
   before ``start(r_c) - warmup``, re-simulate detail-on (unmeasured) to
   the interval start, then measure counter deltas over ``[start, end)``.
   Restore is bit-identical, so the measured region reproduces exactly
   what the full run did there.
4. Estimate every additive counter as ``X_hat = sum_c (S_c / s_rc) *
   delta_c[X]`` — each representative's per-cycle behaviour imputed to
   its whole cluster. ``cycles = T`` is structural (known from the
   profile); ``idle_cycles`` derives from the issue/stall partition
   identity ``instructions + idle == T * num_sms``.

Only representative measurements and cluster weights feed the estimate;
the profile's full-run totals are used solely to *measure* the estimation
error in benches and CI gates. Error bars are the span-weighted
within-cluster L1 dispersion of the profile signatures — an honest
clustering-quality bound (wide when clustering is unrepresentative), not
a statistical confidence interval; see DESIGN.md.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.config import GPUConfig
from repro.errors import SamplingError
from repro.integrity.checkpoint import load_simulator_compressed
from repro.sampling.cluster import Cluster, kmedoids, zscore
from repro.sampling.plan import SamplingPlan
from repro.sampling.profile import ProfileInterval, SampleProfile, build_simulator
from repro.sampling.store import ProfileStore, default_store, profile_key
from repro.sm.simulator import GPUSimulator, SimulationResult
from repro.stats.counters import CacheStats, MemoryStats, SimStats

#: Weight-vector consistency tolerance used by :func:`verify_estimate`
#: (weights are exact rationals S_c/T computed in float).
_WEIGHT_TOL = 1e-9


def _stats_vector(stats: SimStats) -> dict[str, float]:
    """Flat ``dotted.key -> value`` view of every SimStats counter."""
    from repro.registry.records import flatten_metrics

    return flatten_metrics(stats.as_dict())


def _stats_from_vector(vector: dict[str, float], *, cycles: int,
                       num_sms: int) -> SimStats:
    """Rebuild a SimStats from an extrapolated counter vector.

    Counters round to integers (they are estimates of counts);
    ``cycles`` is structural and ``idle_cycles`` comes from the
    issue/stall partition identity rather than extrapolation, so
    ``ipc`` and the cycle accounting stay internally consistent.
    """
    stats = SimStats()
    for name in dataclasses.fields(SimStats):
        if name.name in ("cycles", "idle_cycles", "l1", "memory"):
            continue
        setattr(stats, name.name, round(vector.get(name.name, 0.0)))
    for bundle, cls, prefix in ((stats.l1, CacheStats, "l1"),
                                (stats.memory, MemoryStats, "memory")):
        for name in dataclasses.fields(cls):
            setattr(bundle, name.name,
                    round(vector.get(f"{prefix}.{name.name}", 0.0)))
    stats.cycles = cycles
    stats.instructions = min(stats.instructions, cycles * num_sms)
    stats.idle_cycles = cycles * num_sms - stats.instructions
    return stats


def _measure_representative(
    profile: SampleProfile,
    store: ProfileStore,
    key: str,
    interval: ProfileInterval,
    warmup_cycles: int,
    gpu_config: GPUConfig,
) -> dict:
    """Re-simulate one representative interval; return its counter deltas."""
    target = interval.start - warmup_cycles
    restore_cycle = 0
    sim: Optional[GPUSimulator] = None
    if target > 0:
        best = None
        for cycle in profile.checkpoint_cycles:
            if cycle <= target and (best is None or cycle > best):
                best = cycle
        if best is not None:
            blob = store.checkpoint_blob(key, best)
            sim = load_simulator_compressed(blob)
            restore_cycle = best
    if sim is None:
        sim = build_simulator(profile.workload, profile.config_name,
                              profile.scale, gpu_config)
    if interval.start > restore_cycle:
        sim.step_until(interval.start)
    if sim.current_cycle != interval.start:
        raise SamplingError(
            f"warmup did not land on the interval boundary: expected cycle "
            f"{interval.start}, got {sim.current_cycle} (restored at "
            f"{restore_cycle}) — checkpoint continuation is not bit-identical",
            details={"interval": interval.index, "start": interval.start,
                     "restored": restore_cycle, "got": sim.current_cycle},
        )
    before = _stats_vector(sim.stats)
    before_events = sim.engine_events
    finished = sim.step_until(interval.end)
    end_cycle = sim.current_cycle
    if end_cycle != interval.end or (
            finished != (interval.end == profile.total_cycles)):
        raise SamplingError(
            f"measured region did not land on the interval end: expected "
            f"cycle {interval.end}, got {end_cycle}",
            details={"interval": interval.index, "end": interval.end,
                     "got": end_cycle, "finished": finished},
        )
    after = _stats_vector(sim.stats)
    delta = {name: after[name] - before.get(name, 0.0) for name in after}
    return {
        "interval": interval,
        "delta": delta,
        "delta_events": sim.engine_events - before_events,
        "restore_cycle": restore_cycle,
        "detailed_cycles": interval.end - restore_cycle,
    }


def _representative(profile: SampleProfile, cluster: Cluster) -> int:
    """The cluster member to measure: IPC closest to the cluster mean.

    The medoid is central in z-scored signature space, but the estimate
    scales the representative's *IPC* over the whole cluster's cycle
    mass, so the interval whose profile IPC best matches the cluster's
    span-weighted mean IPC minimises the dominant bias term. Ties break
    to the lowest interval index (determinism).
    """
    members = cluster.members
    total_span = sum(profile.intervals[i].span for i in members)
    mean_ipc = sum(
        profile.intervals[i].metrics["ipc"] * profile.intervals[i].span
        for i in members
    ) / max(1, total_span)
    best = members[0]
    best_gap = abs(profile.intervals[best].metrics["ipc"] - mean_ipc)
    for i in members[1:]:
        gap = abs(profile.intervals[i].metrics["ipc"] - mean_ipc)
        if gap < best_gap:
            best, best_gap = i, gap
    return best


def _rates(interval: ProfileInterval, num_sms: int) -> dict[str, float]:
    """Per-cycle rates of the bar-tracked metrics for one interval."""
    span = interval.span or 1
    accesses = interval.metrics["l1_accesses"]
    return {
        "instructions": interval.metrics["ipc"] * num_sms,
        "l1.accesses": accesses / span,
        "l1.misses": accesses * interval.metrics["l1_miss_rate"] / span,
    }


def _error_bars(profile: SampleProfile, clusters: list[Cluster],
                reps: list[int]) -> dict:
    """Span-weighted within-cluster L1 dispersion, as absolute count bars.

    For metric rate ``r``: ``bar = sum_c sum_{i in c} s_i * |r_i - r_rc|``
    — zero when every member behaves exactly like its representative
    (perfect clustering), and wide when representatives are
    unrepresentative.
    """
    totals = {"instructions": 0.0, "l1.accesses": 0.0, "l1.misses": 0.0}
    for cluster, rep in zip(clusters, reps):
        rep_rates = _rates(profile.intervals[rep], profile.num_sms)
        for member in cluster.members:
            interval = profile.intervals[member]
            rates = _rates(interval, profile.num_sms)
            for name in totals:
                totals[name] += interval.span * abs(
                    rates[name] - rep_rates[name])
    bars = dict(totals)
    bars["ipc"] = totals["instructions"] / max(1, profile.total_cycles)
    return bars


def sampled_run(
    workload_abbr: str,
    config_name: str,
    scale: float,
    gpu_config: GPUConfig,
    plan: SamplingPlan,
    store: Optional[ProfileStore] = None,
) -> tuple[SimulationResult, dict]:
    """Execute one point in sampled mode.

    Returns ``(estimated SimulationResult, sampling_info)`` — the result
    quacks exactly like a full run's (figures, energy and records consume
    it unchanged), and ``sampling_info`` carries the selection, weights,
    accounting and error bars for registry records and benches.
    """
    store = store or default_store()
    profile, was_cached = store.get_or_build(
        workload_abbr, config_name, scale, gpu_config, plan.interval_cycles)
    key = profile_key(workload_abbr, config_name, scale, gpu_config,
                      plan.interval_cycles)
    intervals = profile.intervals
    total = profile.total_cycles
    k = plan.resolve_clusters(len(intervals))
    clusters = kmedoids(zscore([iv.signature() for iv in intervals]), k)

    est_vector: dict[str, float] = {}
    est_events = 0.0
    detailed_cycles = 0
    weights: list[float] = []
    representatives: list[dict] = []
    rep_indices = [_representative(profile, cluster) for cluster in clusters]
    for cluster, rep_index in zip(clusters, rep_indices):
        rep = intervals[rep_index]
        cluster_cycles = sum(intervals[m].span for m in cluster.members)
        weight = cluster_cycles / total
        weights.append(weight)
        measured = _measure_representative(
            profile, store, key, rep, plan.warmup_cycles, gpu_config)
        scale_factor = cluster_cycles / rep.span
        for name, value in measured["delta"].items():
            est_vector[name] = est_vector.get(name, 0.0) + scale_factor * value
        est_events += scale_factor * measured["delta_events"]
        detailed_cycles += measured["detailed_cycles"]
        representatives.append({
            "cluster": len(representatives),
            "interval": rep.index,
            "start": rep.start,
            "end": rep.end,
            "span": rep.span,
            "members": len(cluster.members),
            "cluster_cycles": cluster_cycles,
            "weight": weight,
            "restore_cycle": measured["restore_cycle"],
            "detailed_cycles": measured["detailed_cycles"],
            "measured_instructions": measured["delta"].get(
                "instructions", 0.0),
        })

    est_stats = _stats_from_vector(est_vector, cycles=total,
                                   num_sms=profile.num_sms)
    bars = _error_bars(profile, clusters, rep_indices)
    est_ipc = est_stats.ipc
    result = SimulationResult(
        stats=est_stats,
        engine_events=round(est_events),
        config=gpu_config,
        kernel_name=profile.kernel_name,
    )
    info = {
        "mode": "sampled",
        "plan": plan.identity(),
        "profile": {
            "key": key,
            "cached": was_cached,
            "intervals": len(intervals),
            "checkpoints": len(profile.checkpoint_cycles),
            "checkpoint_stride": profile.checkpoint_stride,
        },
        "clusters": len(clusters),
        "num_sms": profile.num_sms,
        "weights": weights,
        "representatives": representatives,
        "total_cycles": total,
        "detailed_cycles": detailed_cycles,
        "cycle_reduction": total / detailed_cycles if detailed_cycles else 0.0,
        "estimates": {
            "ipc": est_ipc,
            "instructions": est_stats.instructions,
        },
        "error_bars": bars,
        "error_bars_rel": {
            "ipc": bars["ipc"] / est_ipc if est_ipc else 0.0,
        },
    }
    return result, info


def verify_estimate(info: dict) -> list[str]:
    """Internal-consistency check of one ``sampling_info`` block.

    Recomputes the weighted estimate from the per-representative
    measurements embedded in the block; a corrupted weight vector (or
    tampered estimate) fails loudly. Used by the CI negative gate and by
    ``repro diff`` before trusting sampled error bars.
    """
    problems: list[str] = []
    reps = info.get("representatives") or []
    weights = info.get("weights") or []
    total = info.get("total_cycles") or 0
    if not reps:
        return ["no representatives recorded"]
    if len(weights) != len(reps):
        problems.append(
            f"weight vector length {len(weights)} != representatives "
            f"{len(reps)}")
        return problems
    weight_sum = sum(weights)
    if abs(weight_sum - 1.0) > _WEIGHT_TOL:
        problems.append(f"weights sum to {weight_sum!r}, expected 1.0")
    est_instructions = 0.0
    for rep, weight in zip(reps, weights):
        if weight <= 0.0:
            problems.append(f"cluster {rep.get('cluster')}: weight "
                            f"{weight!r} not positive")
        expected = rep.get("cluster_cycles", 0) / total if total else 0.0
        if abs(weight - expected) > _WEIGHT_TOL:
            problems.append(
                f"cluster {rep.get('cluster')}: weight {weight!r} != "
                f"cluster_cycles/total_cycles = {expected!r}")
        span = rep.get("span") or 1
        est_instructions += (rep.get("cluster_cycles", 0) / span) * rep.get(
            "measured_instructions", 0.0)
    stated = (info.get("estimates") or {}).get("instructions")
    if stated is None:
        problems.append("estimates.instructions missing")
    else:
        expected = round(est_instructions)
        num_sms = info.get("num_sms")
        if isinstance(num_sms, int) and num_sms > 0:
            # The executor clamps to the issue-slot capacity T * num_sms.
            expected = min(expected, total * num_sms)
        if abs(expected - stated) > max(1, 1e-9 * abs(est_instructions)):
            problems.append(
                f"estimates.instructions {stated} != weighted recomputation "
                f"{expected}")
    stated_ipc = (info.get("estimates") or {}).get("ipc")
    if stated_ipc is not None and total and stated is not None:
        if abs(stated_ipc - stated / total) > 1e-9 * max(1.0, abs(stated_ipc)):
            problems.append(
                f"estimates.ipc {stated_ipc!r} != instructions/total_cycles")
    for name, bar in (info.get("error_bars") or {}).items():
        if not isinstance(bar, (int, float)) or bar < 0:
            problems.append(f"error bar {name!r} is {bar!r}, expected >= 0")
    return problems
