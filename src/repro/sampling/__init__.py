"""Sampled simulation: interval clustering + checkpoint-warmup execution.

``--sampled`` replaces a full detailed run with (profile once, cluster
interval signatures, re-simulate only representative intervals from
bit-identical checkpoints, extrapolate weighted whole-run statistics
with error bars). See DESIGN.md "Sampled simulation" for the estimator
math, warmup policy and error model; ROADMAP item 2 for why this is the
biggest lever on cycles/s.
"""

from repro.sampling.cluster import Cluster, kmedoids, zscore
from repro.sampling.executor import sampled_run, verify_estimate
from repro.sampling.plan import (
    DEFAULT_INTERVAL_CYCLES,
    DEFAULT_WARMUP_CYCLES,
    SamplingPlan,
    reject_unsupported,
)
from repro.sampling.profile import (
    SIGNATURE_FEATURES,
    ProfileInterval,
    SampleProfile,
    build_profile,
)
from repro.sampling.store import (
    PROFILE_DIR_ENV,
    ProfileStore,
    default_store,
    profile_key,
    set_default_store,
)

__all__ = [
    "Cluster",
    "DEFAULT_INTERVAL_CYCLES",
    "DEFAULT_WARMUP_CYCLES",
    "PROFILE_DIR_ENV",
    "ProfileInterval",
    "ProfileStore",
    "SIGNATURE_FEATURES",
    "SampleProfile",
    "SamplingPlan",
    "build_profile",
    "default_store",
    "kmedoids",
    "profile_key",
    "reject_unsupported",
    "sampled_run",
    "set_default_store",
    "verify_estimate",
    "zscore",
]
