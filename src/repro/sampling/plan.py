"""Sampling plans: what ``--sampled`` means, resolved once at the CLI edge.

A :class:`SamplingPlan` is a frozen value object carried from the CLI to
the runner and into registry identities; two runs with equal plans are
comparable, two runs with different plans get different run-id lineages
(see :func:`repro.registry.records.run_record`). Mirrors the shape of
:class:`repro.shard.ShardPlan` so the runner's process-wide-default
pattern applies unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import SamplingConfigError

#: Default interval tile length in simulated cycles. Chosen so the
#: figure-2 experiment points (tens of thousands of cycles) tile into
#: enough intervals for clustering to separate phases while keeping a
#: >=10x representative-to-total cycle ratio at the auto cluster count
#: (measured: worst-case weighted-IPC error ~1% at ~12x reduction across
#: the figure-2 set — see bench_results/BENCH_sampled_speed.json).
DEFAULT_INTERVAL_CYCLES = 200

#: Default warmup prefix (cycles re-simulated detail-on, unmeasured,
#: before a representative's measured region). Checkpoints are taken at
#: interval starts and restore bit-identical machine state, so warmup is
#: a robustness margin — it only changes which checkpoint is restored.
DEFAULT_WARMUP_CYCLES = 0

#: Upper bound on representatives the auto policy will pick — a cost
#: backstop for very long profiles, far above what the figure-2 set hits.
_AUTO_MAX_CLUSTERS = 64

#: Target representative fraction of the auto policy: about one
#: representative per this many profiled intervals (the direct lever on
#: the detailed-cycle reduction factor).
_AUTO_INTERVALS_PER_CLUSTER = 12


@dataclass(frozen=True)
class SamplingPlan:
    """Parameters of one sampled execution (``--sampled``)."""

    interval_cycles: int = DEFAULT_INTERVAL_CYCLES
    warmup_cycles: int = DEFAULT_WARMUP_CYCLES
    #: Representative count; ``None`` scales with the profiled interval
    #: count (see :meth:`resolve_clusters`).
    clusters: Optional[int] = None

    def __post_init__(self):
        if self.interval_cycles < 1:
            raise SamplingConfigError(
                f"--sample-intervals must be >= 1 cycle, got "
                f"{self.interval_cycles}",
                details={"interval_cycles": self.interval_cycles},
            )
        if self.warmup_cycles < 0:
            raise SamplingConfigError(
                f"--sample-warmup must be >= 0 cycles, got "
                f"{self.warmup_cycles}",
                details={"warmup_cycles": self.warmup_cycles},
            )
        if self.clusters is not None and self.clusters < 1:
            raise SamplingConfigError(
                f"--sample-clusters must be >= 1, got {self.clusters}",
                details={"clusters": self.clusters},
            )

    @property
    def identity_tag(self) -> str:
        """Compact plan identity for cache keys and sweep provenance."""
        k = self.clusters if self.clusters is not None else "auto"
        return f"sampled:i{self.interval_cycles}:w{self.warmup_cycles}:k{k}"

    def identity(self) -> dict:
        """Identity block embedded in sampled registry records."""
        return {
            "interval_cycles": self.interval_cycles,
            "warmup_cycles": self.warmup_cycles,
            "clusters": self.clusters if self.clusters is not None else "auto",
        }

    def resolve_clusters(self, num_intervals: int) -> int:
        """Representative count for a profile of ``num_intervals`` tiles."""
        if num_intervals < 1:
            raise SamplingConfigError(
                "cannot sample a profile with no intervals",
                details={"num_intervals": num_intervals},
            )
        if self.clusters is not None:
            return min(self.clusters, num_intervals)
        auto = num_intervals // _AUTO_INTERVALS_PER_CLUSTER
        return max(1, min(_AUTO_MAX_CLUSTERS, auto, num_intervals))


def reject_unsupported(
    plan: SamplingPlan,
    *,
    telemetry: bool = False,
    sharded: bool = False,
) -> None:
    """Raise when the sampled executor cannot honour a feature combination.

    Sampled runs extrapolate statistics from representative intervals;
    a telemetry hub (whose stall attribution and event stream only make
    sense over a full run) and the epoch-barrier shard engine (a
    different executor entirely) are both structurally incompatible.
    """
    if telemetry:
        raise SamplingConfigError(
            "--sampled cannot run with a telemetry hub: stall attribution "
            "and event traces require every cycle to be simulated",
            details={"conflict": "telemetry", "plan": plan.identity()},
        )
    if sharded:
        raise SamplingConfigError(
            "--sampled cannot combine with --shards: pick one executor",
            details={"conflict": "shards", "plan": plan.identity()},
        )
