"""Plain-text table formatting for experiment output."""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render rows as an aligned monospace table."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
