"""Experiment reporting: plain-text tables and the self-contained HTML report.

``format_table`` renders aligned monospace tables for every CLI command;
``build_html_report`` assembles the scorecard, per-figure comparisons
(with inline SVG charts from :mod:`repro.experiments.svg`) and registry
stall summaries into one dependency-free HTML file
(``python -m repro report --html``).
"""

from __future__ import annotations

import html
import pathlib
from typing import Any, Mapping, Optional, Sequence, Union


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render rows as an aligned monospace table."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


# ----------------------------------------------------------------------
# HTML report
# ----------------------------------------------------------------------

_HTML_STYLE = """
body { font-family: -apple-system, 'Segoe UI', sans-serif; margin: 2em auto;
       max-width: 1080px; color: #1a1a2e; padding: 0 1em; }
h1 { border-bottom: 2px solid #4878CF; padding-bottom: .3em; }
h2 { margin-top: 2em; color: #2a3f6f; }
table { border-collapse: collapse; margin: 1em 0; font-size: 13px; }
th, td { border: 1px solid #ccd; padding: 4px 9px; text-align: right; }
th { background: #eef1f8; }
td:first-child, th:first-child { text-align: left; }
.meta { color: #667; font-size: 12px; }
.fail { background: #fde3e3; }
.ok { background: #e7f6e7; }
svg { max-width: 100%; height: auto; }
"""


def _cell(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.3f}"
    return html.escape(str(value))


def _html_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                row_classes: Optional[Sequence[str]] = None) -> str:
    parts = ["<table>", "<tr>"]
    parts.extend(f"<th>{html.escape(str(h))}</th>" for h in headers)
    parts.append("</tr>")
    for i, row in enumerate(rows):
        cls = f' class="{row_classes[i]}"' if row_classes and row_classes[i] else ""
        parts.append(f"<tr{cls}>")
        parts.extend(f"<td>{_cell(v)}</td>" for v in row)
        parts.append("</tr>")
    parts.append("</table>")
    return "".join(parts)


def _scorecard_section(payload: Mapping[str, Any]) -> str:
    rows, classes = [], []
    for figure, score in payload["figures"].items():
        for series, s in score["series"].items():
            spear = s["spearman"]
            rows.append([
                figure, series, s["n_apps"],
                None if s["mape_pct"] is None else f"{s['mape_pct']:.1f}%",
                s["geomean_measured"], s["geomean_golden"],
                f"{s['geomean_delta']:+.3f}",
                None if spear is None else f"{spear:+.2f}",
            ])
            classes.append("" if spear is None else
                           ("ok" if spear >= 0.0 else "fail"))
    summary = payload.get("summary", {})
    bits = []
    if summary.get("mean_mape_pct") is not None:
        bits.append(f"mean MAPE {summary['mean_mape_pct']:.1f}%")
    if summary.get("mean_abs_geomean_delta") is not None:
        bits.append("mean |geomean delta| "
                    f"{summary['mean_abs_geomean_delta']:.3f}")
    if summary.get("mean_spearman") is not None:
        bits.append(f"mean Spearman {summary['mean_spearman']:+.2f}")
    return (
        "<h2>Fidelity scorecard</h2>"
        + _html_table(
            ["Figure", "Series", "N apps", "MAPE", "Geomean (measured)",
             "Geomean (paper)", "Geomean delta", "Spearman"],
            rows, classes)
        + (f'<p class="meta">{html.escape(" | ".join(bits))}</p>' if bits else "")
    )


def _figure_sections(payload: Mapping[str, Any]) -> str:
    from repro.experiments.paper_data import SCORECARD
    from repro.experiments.svg import grouped_bar_chart

    parts = []
    for figure, score in payload["figures"].items():
        chart_data: dict[str, dict[str, float]] = {}
        table_rows = []
        for series, s in score["series"].items():
            per_app = s.get("per_app") or {}
            if not per_app:
                continue
            chart_data[series] = {
                app: vals["measured"] for app, vals in per_app.items()
            }
            chart_data[f"{series} (paper)"] = {
                app: vals["golden"] for app, vals in per_app.items()
            }
            for app, vals in per_app.items():
                table_rows.append([
                    series, app, vals["measured"], vals["golden"],
                    vals["measured"] - vals["golden"],
                ])
        if not chart_data:
            continue
        ylabel = str(SCORECARD.get(figure, {}).get("ylabel", ""))
        chart = grouped_bar_chart(
            chart_data, title=f"{figure}: reproduction vs paper",
            ylabel=ylabel, width=1040,
        )
        parts.append(
            f"<h2>{html.escape(figure)}</h2>"
            + chart
            + "<details><summary>per-app values</summary>"
            + _html_table(["Series", "App", "Measured", "Paper", "Delta"],
                          table_rows)
            + "</details>"
        )
    return "".join(parts)


def _stall_section(stall_records: Sequence[Mapping[str, Any]]) -> str:
    rows = []
    for record in stall_records:
        stalls = record.get("stalls") or {}
        by_cause = stalls.get("by_cause") or {}
        total = sum(by_cause.values()) or 1
        top = max(by_cause, key=by_cause.__getitem__) if by_cause else "-"
        rows.append([
            record.get("name", "?"),
            record.get("run_id", "")[:10],
            (record.get("provenance") or {}).get("git_sha", "")[:10] or "-",
            top,
            f"{100.0 * by_cause.get(top, 0) / total:.1f}%" if by_cause else "-",
            stalls.get("stall_cycles"),
            stalls.get("issue_cycles"),
        ])
    if not rows:
        return ("<h2>Stall attribution</h2><p class='meta'>No registry run "
                "records carry telemetry; run with <code>repro run APP CFG "
                "--telemetry</code> or <code>repro sweep --telemetry</code> "
                "to populate this section.</p>")
    return "<h2>Stall attribution (latest telemetry runs)</h2>" + _html_table(
        ["Run", "Run id", "Commit", "Top cause", "Share", "Stall cycles",
         "Issue cycles"],
        rows,
    )


def build_html_report(
    scorecard_payload: Mapping[str, Any],
    stall_records: Sequence[Mapping[str, Any]] = (),
    title: str = "APRES reproduction — results report",
) -> str:
    """One self-contained HTML page: scorecard, figures, stall summaries."""
    from repro.registry.provenance import collect_provenance

    prov = collect_provenance()
    meta_bits = [
        f"scale={scorecard_payload.get('scale')}",
        f"apps={','.join(scorecard_payload['apps'])}"
        if scorecard_payload.get("apps") else "apps=all",
        f"commit={(prov.get('git_sha') or 'unknown')[:12]}"
        + ("+dirty" if prov.get("git_dirty") else ""),
        f"host={prov.get('host')}",
        f"repro {prov.get('code_version')}",
    ]
    return (
        "<!DOCTYPE html><html><head><meta charset='utf-8'>"
        f"<title>{html.escape(title)}</title>"
        f"<style>{_HTML_STYLE}</style></head><body>"
        f"<h1>{html.escape(title)}</h1>"
        f"<p class='meta'>{html.escape(' | '.join(str(b) for b in meta_bits))}</p>"
        + _scorecard_section(scorecard_payload)
        + _figure_sections(scorecard_payload)
        + _stall_section(stall_records)
        + "</body></html>"
    )


def write_html_report(
    path: Union[str, pathlib.Path],
    scorecard_payload: Mapping[str, Any],
    stall_records: Sequence[Mapping[str, Any]] = (),
    title: str = "APRES reproduction — results report",
) -> pathlib.Path:
    """Render and write the HTML report; returns the path."""
    out = pathlib.Path(path)
    if out.parent and not out.parent.exists():
        out.parent.mkdir(parents=True, exist_ok=True)
    from repro.resilience.atomic import atomic_write

    atomic_write(out, build_html_report(scorecard_payload, stall_records, title))
    return out
