"""Dependency-free SVG bar charts for the reproduced figures.

The evaluation figures are grouped bar charts (apps on the X axis, one
bar per configuration). This renderer emits small standalone SVG files so
results can be eyeballed without any plotting stack — handy in the
offline environments this reproduction targets.
"""

from __future__ import annotations

import pathlib
from typing import Mapping, Optional, Sequence, Union

PathLike = Union[str, pathlib.Path]

#: Colour cycle (colour-blind-safe-ish).
PALETTE = ("#4878CF", "#EE854A", "#6ACC64", "#D65F5F", "#956CB4",
           "#8C613C", "#DC7EC0", "#797979")


def _escape(text: str) -> str:
    return (text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;"))


def grouped_bar_chart(
    data: Mapping[str, Mapping[str, float]],
    title: str = "",
    ylabel: str = "",
    baseline: Optional[float] = 1.0,
    width: int = 960,
    height: int = 360,
) -> str:
    """Render ``{series: {category: value}}`` as a grouped bar chart.

    Categories (apps) come from the first series' key order; ``baseline``
    draws a reference line (speedup = 1.0 by default).
    """
    series = list(data)
    if not series:
        raise ValueError("no series to plot")
    categories = list(data[series[0]])
    values = [data[s].get(c, 0.0) for s in series for c in categories]
    vmax = max(values + ([baseline] if baseline is not None else [0.0]) + [1e-9])

    margin_left, margin_bottom, margin_top = 56, 64, 34
    plot_w = width - margin_left - 16
    plot_h = height - margin_top - margin_bottom
    group_w = plot_w / max(1, len(categories))
    bar_w = group_w * 0.8 / max(1, len(series))

    def x_of(cat_i: int, ser_i: int) -> float:
        return margin_left + cat_i * group_w + group_w * 0.1 + ser_i * bar_w

    def y_of(value: float) -> float:
        return margin_top + plot_h * (1 - value / (vmax * 1.1))

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="sans-serif" font-size="11">',
        f'<text x="{width / 2}" y="18" text-anchor="middle" font-size="14">'
        f"{_escape(title)}</text>",
    ]
    # Axes.
    parts.append(
        f'<line x1="{margin_left}" y1="{margin_top}" x2="{margin_left}" '
        f'y2="{margin_top + plot_h}" stroke="#333"/>'
    )
    parts.append(
        f'<line x1="{margin_left}" y1="{margin_top + plot_h}" '
        f'x2="{margin_left + plot_w}" y2="{margin_top + plot_h}" stroke="#333"/>'
    )
    if ylabel:
        parts.append(
            f'<text x="14" y="{margin_top + plot_h / 2}" text-anchor="middle" '
            f'transform="rotate(-90 14 {margin_top + plot_h / 2})">'
            f"{_escape(ylabel)}</text>"
        )
    # Y ticks.
    for frac in (0.0, 0.25, 0.5, 0.75, 1.0):
        v = vmax * 1.1 * frac
        y = y_of(v)
        parts.append(f'<line x1="{margin_left - 4}" y1="{y:.1f}" '
                     f'x2="{margin_left}" y2="{y:.1f}" stroke="#333"/>')
        parts.append(f'<text x="{margin_left - 8}" y="{y + 4:.1f}" '
                     f'text-anchor="end">{v:.2f}</text>')
    # Baseline reference.
    if baseline is not None and baseline <= vmax * 1.1:
        y = y_of(baseline)
        parts.append(
            f'<line x1="{margin_left}" y1="{y:.1f}" x2="{margin_left + plot_w}" '
            f'y2="{y:.1f}" stroke="#999" stroke-dasharray="4 3"/>'
        )
    # Bars.
    for si, s in enumerate(series):
        colour = PALETTE[si % len(PALETTE)]
        for ci, c in enumerate(categories):
            v = data[s].get(c, 0.0)
            y = y_of(v)
            h = margin_top + plot_h - y
            parts.append(
                f'<rect x="{x_of(ci, si):.1f}" y="{y:.1f}" width="{bar_w:.1f}" '
                f'height="{max(0.0, h):.1f}" fill="{colour}">'
                f"<title>{_escape(s)} / {_escape(c)}: {v:.3f}</title></rect>"
            )
    # X labels.
    for ci, c in enumerate(categories):
        x = margin_left + ci * group_w + group_w / 2
        y = margin_top + plot_h + 14
        parts.append(
            f'<text x="{x:.1f}" y="{y}" text-anchor="end" '
            f'transform="rotate(-45 {x:.1f} {y})">{_escape(c)}</text>'
        )
    # Legend.
    lx = margin_left
    ly = height - 10
    for si, s in enumerate(series):
        colour = PALETTE[si % len(PALETTE)]
        parts.append(f'<rect x="{lx}" y="{ly - 9}" width="10" height="10" '
                     f'fill="{colour}"/>')
        parts.append(f'<text x="{lx + 14}" y="{ly}">{_escape(s)}</text>')
        lx += 14 + 7 * len(s) + 22
    parts.append("</svg>")
    return "\n".join(parts)


def save_chart(data: Mapping[str, Mapping[str, float]], path: PathLike,
               title: str = "", ylabel: str = "",
               baseline: Optional[float] = 1.0) -> pathlib.Path:
    """Render and write one chart; returns the path."""
    from repro.resilience.atomic import atomic_write

    out = pathlib.Path(path)
    atomic_write(out, grouped_bar_chart(data, title=title, ylabel=ylabel,
                                        baseline=baseline))
    return out


def render_figure(name: str, directory: PathLike,
                  apps: Optional[Sequence[str]] = None,
                  scale: float = 0.5) -> pathlib.Path:
    """Produce a figure's data and render it as ``<name>.svg``."""
    from repro.experiments import figures

    producers = {
        "figure3": (figures.figure3, "speedup vs baseline"),
        "figure4": (figures.figure4, "early eviction ratio"),
        "figure10": (figures.figure10, "speedup vs baseline"),
        "figure12": (figures.figure12, "early eviction ratio"),
        "figure13": (figures.figure13, "normalised latency"),
        "figure14": (figures.figure14, "normalised traffic"),
        "figure15": (figures.figure15, "normalised energy"),
    }
    try:
        producer, ylabel = producers[name]
    except KeyError:
        known = ", ".join(sorted(producers))
        raise ValueError(f"unknown chart {name!r}; known: {known}") from None
    data = producer(apps=apps, scale=scale)
    out_dir = pathlib.Path(directory)
    out_dir.mkdir(parents=True, exist_ok=True)
    return save_chart(data, out_dir / f"{name}.svg",
                      title=f"{name} (reproduction)", ylabel=ylabel)
