"""Ablation studies over APRES's design choices.

DESIGN.md calls out the parameters that shape APRES's behaviour; each
function here sweeps one of them while holding everything else fixed:

* :func:`sap_components` — LAWS alone, +group prefetch, +self prefetch.
* :func:`pt_entry_sweep` — SAP Prefetch Table capacity (paper picks 10).
* :func:`wgt_entry_sweep` — Warp Group Table capacity (paper picks 3).
* :func:`self_degree_sweep` — self-prefetch distance.
* :func:`l1_size_sweep` — cache-capacity sensitivity (Figure 2's axis).
* :func:`bandwidth_sweep` — DRAM service-rate sensitivity.

Results are plain dictionaries; the ablation benchmarks format them.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

from repro.config import APRESConfig, GPUConfig
from repro.core.laws import LAWSScheduler
from repro.core.sap import SAPPrefetcher
from repro.experiments.configs import experiment_gpu_config
from repro.experiments.runner import run
from repro.sm.simulator import simulate
from repro.workloads.suite import workload
from repro.workloads.synthetic import build_kernel

#: Apps whose behaviour the ablations probe: one thrashing, one strided
#: with reuse, one broadcast-heavy, one compute streaming.
DEFAULT_APPS = ("KM", "LUD", "PA", "CS")


def _simulate_apres(
    abbr: str,
    scale: float,
    gpu_config: Optional[GPUConfig] = None,
    apres_config: Optional[APRESConfig] = None,
    self_degree: int = 2,
    group_prefetch: bool = True,
) -> float:
    """Cycles for one APRES variant (not memoised: variants are unique)."""
    cfg = gpu_config or experiment_gpu_config()
    kernel = build_kernel(workload(abbr), scale)

    def engine():
        laws = LAWSScheduler(apres_config)
        sap = SAPPrefetcher(laws, apres_config, self_degree=self_degree)
        if not group_prefetch:
            sap._pt_capacity = 0  # group path can never confirm
        return laws, sap

    return simulate(kernel, cfg, engine).cycles


def sap_components(apps: Sequence[str] = DEFAULT_APPS, scale: float = 0.5
                   ) -> dict[str, dict[str, float]]:
    """Speedup of each APRES component stack over baseline."""
    out: dict[str, dict[str, float]] = {}
    for abbr in apps:
        base = run(abbr, "base", scale).cycles
        laws_only = run(abbr, "laws", scale).cycles
        group_only = _simulate_apres(abbr, scale, self_degree=0)
        full = run(abbr, "apres", scale).cycles
        out[abbr] = {
            "laws": base / laws_only,
            "laws+group": base / group_only,
            "laws+group+self": base / full,
        }
    return out


def pt_entry_sweep(entries: Sequence[int] = (1, 2, 5, 10, 20),
                   apps: Sequence[str] = DEFAULT_APPS, scale: float = 0.5
                   ) -> dict[int, dict[str, float]]:
    """Speedup over baseline as the Prefetch Table grows."""
    out: dict[int, dict[str, float]] = {}
    for n in entries:
        cfg = APRESConfig(pt_entries=n)
        out[n] = {
            abbr: run(abbr, "base", scale).cycles
            / _simulate_apres(abbr, scale, apres_config=cfg)
            for abbr in apps
        }
    return out


def wgt_entry_sweep(entries: Sequence[int] = (1, 3, 8),
                    apps: Sequence[str] = DEFAULT_APPS, scale: float = 0.5
                    ) -> dict[int, dict[str, float]]:
    """Speedup over baseline as the Warp Group Table grows."""
    out: dict[int, dict[str, float]] = {}
    for n in entries:
        cfg = APRESConfig(wgt_entries=n)
        out[n] = {
            abbr: run(abbr, "base", scale).cycles
            / _simulate_apres(abbr, scale, apres_config=cfg)
            for abbr in apps
        }
    return out


def self_degree_sweep(degrees: Sequence[int] = (0, 1, 2, 4),
                      apps: Sequence[str] = DEFAULT_APPS, scale: float = 0.5
                      ) -> dict[int, dict[str, float]]:
    """Speedup over baseline as self-prefetch reaches further ahead."""
    out: dict[int, dict[str, float]] = {}
    for d in degrees:
        out[d] = {
            abbr: run(abbr, "base", scale).cycles
            / _simulate_apres(abbr, scale, self_degree=d)
            for abbr in apps
        }
    return out


def l1_size_sweep(sizes_kb: Sequence[int] = (16, 32, 64, 128),
                  apps: Sequence[str] = DEFAULT_APPS, scale: float = 0.5
                  ) -> dict[int, dict[str, float]]:
    """Baseline IPC sensitivity to L1 capacity."""
    out: dict[int, dict[str, float]] = {}
    for kb in sizes_kb:
        cfg = experiment_gpu_config().with_l1_size(kb * 1024)
        out[kb] = {abbr: run(abbr, "base", scale, cfg).ipc for abbr in apps}
    return out


def bandwidth_sweep(service_cycles: Sequence[int] = (2, 4, 8),
                    apps: Sequence[str] = DEFAULT_APPS, scale: float = 0.5
                    ) -> dict[int, dict[str, float]]:
    """Baseline IPC sensitivity to DRAM service rate (full-machine cycles)."""
    out: dict[int, dict[str, float]] = {}
    for sc in service_cycles:
        base = GPUConfig()
        cfg = dataclasses.replace(
            base, dram=dataclasses.replace(base.dram, service_cycles=sc)
        ).scaled(2)
        out[sc] = {abbr: run(abbr, "base", scale, cfg).ipc for abbr in apps}
    return out
