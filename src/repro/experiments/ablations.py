"""Ablation studies over APRES's design choices.

DESIGN.md calls out the parameters that shape APRES's behaviour; each
function here sweeps one of them while holding everything else fixed:

* :func:`sap_components` — LAWS alone, +group prefetch, +self prefetch.
* :func:`pt_entry_sweep` — SAP Prefetch Table capacity (paper picks 10).
* :func:`wgt_entry_sweep` — Warp Group Table capacity (paper picks 3).
* :func:`self_degree_sweep` — self-prefetch distance.
* :func:`l1_size_sweep` — cache-capacity sensitivity (Figure 2's axis).
* :func:`bandwidth_sweep` — DRAM service-rate sensitivity.

Results are plain dictionaries; the ablation benchmarks format them.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional, Sequence

from repro.config import APRESConfig, GPUConfig
from repro.core.laws import LAWSScheduler
from repro.core.sap import SAPPrefetcher
from repro.experiments.configs import experiment_gpu_config
from repro.experiments.parallel import parallel_map, prewarm, resolve_jobs
from repro.experiments.runner import run
from repro.sm.simulator import simulate
from repro.workloads.suite import workload
from repro.workloads.synthetic import build_kernel

#: Apps whose behaviour the ablations probe: one thrashing, one strided
#: with reuse, one broadcast-heavy, one compute streaming.
DEFAULT_APPS = ("KM", "LUD", "PA", "CS")

#: One APRES-variant evaluation: args for :func:`_simulate_apres`.
_VariantTask = tuple[str, float, Optional[GPUConfig], Optional[APRESConfig], int, bool]


def _variant_cycles(task: _VariantTask) -> float:
    """Module-level pool worker: cycles for one APRES variant."""
    abbr, scale, gpu_config, apres_config, self_degree, group_prefetch = task
    return _simulate_apres(
        abbr, scale, gpu_config, apres_config, self_degree, group_prefetch)


def _simulate_apres(
    abbr: str,
    scale: float,
    gpu_config: Optional[GPUConfig] = None,
    apres_config: Optional[APRESConfig] = None,
    self_degree: int = 2,
    group_prefetch: bool = True,
) -> float:
    """Cycles for one APRES variant (not memoised: variants are unique)."""
    cfg = gpu_config or experiment_gpu_config()
    kernel = build_kernel(workload(abbr), scale)

    def engine():
        laws = LAWSScheduler(apres_config)
        sap = SAPPrefetcher(laws, apres_config, self_degree=self_degree)
        if not group_prefetch:
            sap._pt_capacity = 0  # group path can never confirm
        return laws, sap

    return simulate(kernel, cfg, engine).cycles


def sap_components(apps: Sequence[str] = DEFAULT_APPS, scale: float = 0.5,
                   jobs: Optional[int] = None) -> dict[str, dict[str, float]]:
    """Speedup of each APRES component stack over baseline.

    ``jobs`` (default: ``$REPRO_JOBS``, else 1) fans the simulations over
    a process pool; every ablation here takes it and stays bit-identical
    because each point is an independent deterministic simulation.
    """
    jobs = resolve_jobs(jobs)
    prewarm([(abbr, config, scale, None)
             for abbr in apps for config in ("base", "laws", "apres")], jobs)
    group_cycles = parallel_map(
        _variant_cycles, [(abbr, scale, None, None, 0, True) for abbr in apps],
        jobs)
    out: dict[str, dict[str, float]] = {}
    for abbr, group_only in zip(apps, group_cycles):
        base = run(abbr, "base", scale).cycles
        laws_only = run(abbr, "laws", scale).cycles
        full = run(abbr, "apres", scale).cycles
        out[abbr] = {
            "laws": base / laws_only,
            "laws+group": base / group_only,
            "laws+group+self": base / full,
        }
    return out


def _apres_variant_sweep(
    axis: Sequence[int],
    make_task: "Callable[[int, str], _VariantTask]",
    apps: Sequence[str],
    scale: float,
    jobs: Optional[int],
) -> dict[int, dict[str, float]]:
    """Shared shape of the PT/WGT/self-degree sweeps: axis x apps grid."""
    jobs = resolve_jobs(jobs)
    prewarm([(abbr, "base", scale, None) for abbr in apps], jobs)
    tasks = [make_task(value, abbr) for value in axis for abbr in apps]
    cycles = iter(parallel_map(_variant_cycles, tasks, jobs))
    return {
        value: {abbr: run(abbr, "base", scale).cycles / next(cycles)
                for abbr in apps}
        for value in axis
    }


def pt_entry_sweep(entries: Sequence[int] = (1, 2, 5, 10, 20),
                   apps: Sequence[str] = DEFAULT_APPS, scale: float = 0.5,
                   jobs: Optional[int] = None) -> dict[int, dict[str, float]]:
    """Speedup over baseline as the Prefetch Table grows."""
    return _apres_variant_sweep(
        entries,
        lambda n, abbr: (abbr, scale, None, APRESConfig(pt_entries=n), 2, True),
        apps, scale, jobs)


def wgt_entry_sweep(entries: Sequence[int] = (1, 3, 8),
                    apps: Sequence[str] = DEFAULT_APPS, scale: float = 0.5,
                    jobs: Optional[int] = None) -> dict[int, dict[str, float]]:
    """Speedup over baseline as the Warp Group Table grows."""
    return _apres_variant_sweep(
        entries,
        lambda n, abbr: (abbr, scale, None, APRESConfig(wgt_entries=n), 2, True),
        apps, scale, jobs)


def self_degree_sweep(degrees: Sequence[int] = (0, 1, 2, 4),
                      apps: Sequence[str] = DEFAULT_APPS, scale: float = 0.5,
                      jobs: Optional[int] = None) -> dict[int, dict[str, float]]:
    """Speedup over baseline as self-prefetch reaches further ahead."""
    return _apres_variant_sweep(
        degrees,
        lambda d, abbr: (abbr, scale, None, None, d, True),
        apps, scale, jobs)


def l1_size_sweep(sizes_kb: Sequence[int] = (16, 32, 64, 128),
                  apps: Sequence[str] = DEFAULT_APPS, scale: float = 0.5,
                  jobs: Optional[int] = None) -> dict[int, dict[str, float]]:
    """Baseline IPC sensitivity to L1 capacity."""
    jobs = resolve_jobs(jobs)
    configs = {kb: experiment_gpu_config().with_l1_size(kb * 1024)
               for kb in sizes_kb}
    prewarm([(abbr, "base", scale, cfg)
             for cfg in configs.values() for abbr in apps], jobs)
    return {
        kb: {abbr: run(abbr, "base", scale, cfg).ipc for abbr in apps}
        for kb, cfg in configs.items()
    }


def bandwidth_sweep(service_cycles: Sequence[int] = (2, 4, 8),
                    apps: Sequence[str] = DEFAULT_APPS, scale: float = 0.5,
                    jobs: Optional[int] = None) -> dict[int, dict[str, float]]:
    """Baseline IPC sensitivity to DRAM service rate (full-machine cycles)."""
    jobs = resolve_jobs(jobs)
    base = GPUConfig()
    configs = {
        sc: dataclasses.replace(
            base, dram=dataclasses.replace(base.dram, service_cycles=sc)
        ).scaled(2)
        for sc in service_cycles
    }
    prewarm([(abbr, "base", scale, cfg)
             for cfg in configs.values() for abbr in apps], jobs)
    return {
        sc: {abbr: run(abbr, "base", scale, cfg).ipc for abbr in apps}
        for sc, cfg in configs.items()
    }
