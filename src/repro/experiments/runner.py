"""Memoised simulation runner.

Figures 10-15 all evaluate the same handful of configurations over the
same 15 workloads, so results are cached per
``(workload, config, scale, GPU config)`` within the process. Every run is
deterministic, which makes the cache safe. The cache is a bounded LRU so
unbounded sweeps (see :mod:`repro.experiments.sweep`, which persists its
results to disk instead) cannot grow memory without limit.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from repro.config import GPUConfig
from repro.experiments.configs import CONFIGS, experiment_gpu_config
from repro.sampling import SamplingPlan, reject_unsupported, sampled_run
from repro.shard import ShardPlan, shard_execute
from repro.sm.simulator import SimulationResult, simulate
from repro.stats.energy import EnergyModel, EnergyReport
from repro.telemetry.metrics import get_registry
from repro.workloads.suite import workload
from repro.workloads.synthetic import build_kernel

# Cache keys embed GPUConfig instances; if the dataclass ever stops being
# frozen (and therefore hashable), keys would silently alias or crash deep
# inside dict machinery. Fail loudly at import time instead.
if not GPUConfig.__dataclass_params__.frozen:  # pragma: no cover - config bug
    raise TypeError("GPUConfig must stay a frozen dataclass: runner cache "
                    "keys rely on structural hashing")
hash(GPUConfig())  # raises TypeError if any field breaks hashability


@dataclass(frozen=True)
class RunResult:
    """One simulated (workload, configuration) point with derived metrics."""

    workload: str
    config_name: str
    sim: SimulationResult
    energy: EnergyReport
    #: Shard drift/attempt report when the point ran under ``--shards``
    #: (see :func:`repro.shard.shard_execute`); ``None`` for serial runs.
    shard_info: Optional[dict] = None
    #: Selection/weights/error-bar report when the point ran under
    #: ``--sampled`` (see :func:`repro.sampling.sampled_run`); ``None``
    #: for full detailed runs. Its presence marks ``sim`` as a weighted
    #: estimate rather than an exact simulation.
    sampling_info: Optional[dict] = None

    @property
    def ipc(self) -> float:
        return self.sim.ipc

    @property
    def cycles(self) -> int:
        return self.sim.cycles


#: Process-wide default shard plan, set once by the CLI (``--shards``) so
#: figure/scorecard producers — which only ever call :func:`run` — inherit
#: intra-run sharding without threading a plan through every call site.
_DEFAULT_SHARD_PLAN: Optional[ShardPlan] = None

#: Sentinel distinguishing "not passed" from an explicit ``None`` (serial).
_PLAN_UNSET = object()


def set_default_shard_plan(plan: Optional[ShardPlan]) -> None:
    """Install (or clear, with ``None``) the process-wide shard plan."""
    global _DEFAULT_SHARD_PLAN
    _DEFAULT_SHARD_PLAN = plan


def default_shard_plan() -> Optional[ShardPlan]:
    """The process-wide shard plan, or ``None`` (serial execution)."""
    return _DEFAULT_SHARD_PLAN


def _effective_plan(shard_plan) -> Optional[ShardPlan]:
    return _DEFAULT_SHARD_PLAN if shard_plan is _PLAN_UNSET else shard_plan


#: Process-wide default sampling plan, set once by the CLI (``--sampled``)
#: so figure/scorecard producers inherit sampled execution the same way
#: they inherit intra-run sharding.
_DEFAULT_SAMPLING_PLAN: Optional[SamplingPlan] = None


def set_default_sampling_plan(plan: Optional[SamplingPlan]) -> None:
    """Install (or clear, with ``None``) the process-wide sampling plan."""
    global _DEFAULT_SAMPLING_PLAN
    _DEFAULT_SAMPLING_PLAN = plan


def default_sampling_plan() -> Optional[SamplingPlan]:
    """The process-wide sampling plan, or ``None`` (full detailed runs)."""
    return _DEFAULT_SAMPLING_PLAN


def _effective_sampling_plan(sampling_plan) -> Optional[SamplingPlan]:
    if sampling_plan is _PLAN_UNSET:
        return _DEFAULT_SAMPLING_PLAN
    return sampling_plan


#: Default LRU capacity; override via $REPRO_RUN_CACHE_SIZE or set_cache_limit.
_DEFAULT_CACHE_SIZE = 256

_CACHE: "OrderedDict[tuple, RunResult]" = OrderedDict()
_cache_max = max(1, int(os.environ.get("REPRO_RUN_CACHE_SIZE", _DEFAULT_CACHE_SIZE)))


def set_cache_limit(max_entries: int) -> None:
    """Bound the memoisation cache to ``max_entries`` (evicting LRU-first)."""
    global _cache_max
    if max_entries < 1:
        raise ValueError("cache limit must be >= 1")
    _cache_max = max_entries
    while len(_CACHE) > _cache_max:
        _CACHE.popitem(last=False)


def cache_limit() -> int:
    """Current LRU capacity of the memoisation cache."""
    return _cache_max


def clear_cache() -> None:
    """Drop memoised results (tests use this to force fresh runs)."""
    _CACHE.clear()


def cache_key(
    workload_abbr: str,
    config_name: str,
    scale: float,
    gpu_config: Optional[GPUConfig] = None,
    shard_plan=_PLAN_UNSET,
    sampling_plan=_PLAN_UNSET,
) -> tuple:
    """The memoisation key :func:`run` would use for these arguments.

    Bit-exact shard plans (lock-step ``E=1``) and serial execution share
    one key — their results are identical by construction — while
    relaxed plans append their identity tag so drifted statistics never
    masquerade as serial ones. A sampling plan always appends its tag:
    a sampled estimate must never replay as a full-run cache hit, nor a
    full run as a sampled one, and plans with different parameters are
    different estimators.
    """
    key = (workload_abbr, config_name, scale,
           gpu_config or experiment_gpu_config())
    plan = _effective_plan(shard_plan)
    if plan is not None and not plan.bit_exact:
        key += (plan.identity_tag,)
    splan = _effective_sampling_plan(sampling_plan)
    if splan is not None:
        key += (splan.identity_tag,)
    return key


def is_cached(
    workload_abbr: str,
    config_name: str,
    scale: float,
    gpu_config: Optional[GPUConfig] = None,
    shard_plan=_PLAN_UNSET,
    sampling_plan=_PLAN_UNSET,
) -> bool:
    """True when :func:`run` with these arguments would be a cache hit."""
    return cache_key(
        workload_abbr, config_name, scale, gpu_config, shard_plan,
        sampling_plan,
    ) in _CACHE


def seed_cache(
    workload_abbr: str,
    config_name: str,
    scale: float,
    gpu_config: Optional[GPUConfig],
    result: RunResult,
    shard_plan=_PLAN_UNSET,
    sampling_plan=_PLAN_UNSET,
) -> None:
    """Install a result computed elsewhere (e.g. a pool worker) into the cache.

    The parallel prewarmer (:mod:`repro.experiments.parallel`) simulates
    points in worker processes and seeds them here, so the figure/scorecard
    code paths — which only ever call :func:`run` — pick them up without
    knowing parallelism exists. Simulation is deterministic, so a seeded
    result is indistinguishable from one computed in-process.
    """
    key = cache_key(workload_abbr, config_name, scale, gpu_config, shard_plan,
                    sampling_plan)
    _CACHE[key] = result
    while len(_CACHE) > _cache_max:
        _CACHE.popitem(last=False)


def run(
    workload_abbr: str,
    config_name: str,
    scale: float = 1.0,
    gpu_config: Optional[GPUConfig] = None,
    telemetry=None,
    shard_plan=_PLAN_UNSET,
    shard_supervisor=None,
    sampling_plan=_PLAN_UNSET,
) -> RunResult:
    """Simulate one workload under one named configuration (memoised).

    A run with ``telemetry`` (a :class:`repro.telemetry.TelemetryHub`)
    bypasses the cache entirely — both lookup and store — because the
    hub is bound to the specific simulator instance and a memoised
    result would silently carry no telemetry.

    ``shard_plan`` switches the point to the epoch-barrier sharded
    engine (default: the process-wide plan installed by the CLI's
    ``--shards``; pass ``None`` explicitly to force serial). Telemetry
    hubs combine with shard plans since the distributed-telemetry merge:
    lanes record into per-lane buffers and the parent merges them into
    the hub at every epoch barrier (see :mod:`repro.shard.telemetry`).

    ``sampling_plan`` switches the point to the sampled executor
    (default: the process-wide plan installed by the CLI's ``--sampled``;
    pass ``None`` explicitly to force a full detailed run). Sampled runs
    reject telemetry hubs and shard plans — see
    :func:`repro.sampling.reject_unsupported`.
    """
    if config_name not in CONFIGS:
        known = ", ".join(sorted(CONFIGS))
        raise ValueError(f"unknown config {config_name!r}; known: {known}")
    plan = _effective_plan(shard_plan)
    splan = _effective_sampling_plan(sampling_plan)
    if splan is not None:
        reject_unsupported(splan, telemetry=telemetry is not None,
                           sharded=plan is not None)
    cfg = gpu_config or experiment_gpu_config()
    key = cache_key(workload_abbr, config_name, scale, cfg, plan, splan)
    if telemetry is None:
        cached = _CACHE.get(key)
        if cached is not None:
            _CACHE.move_to_end(key)
            get_registry().counter("registry.cache.hits").inc()
            return cached
        get_registry().counter("registry.cache.misses").inc()

    shard_info = None
    sampling_info = None
    if splan is not None:
        sim, sampling_info = sampled_run(
            workload_abbr, config_name, scale, cfg, splan)
    else:
        spec = workload(workload_abbr)
        kernel = build_kernel(spec, scale)
        engine = CONFIGS[config_name]
        if plan is None:
            sim = simulate(kernel, cfg, engine.build, telemetry=telemetry)
        else:
            sim, shard_info = shard_execute(
                kernel, cfg, engine.build, plan, supervisor=shard_supervisor,
                telemetry=telemetry,
            )
    energy = EnergyModel().report(
        sim.stats, apres_events=sim.engine_events, num_sms=cfg.num_sms
    )
    result = RunResult(workload_abbr, config_name, sim, energy,
                       shard_info=shard_info, sampling_info=sampling_info)
    if telemetry is None:
        _CACHE[key] = result
        while len(_CACHE) > _cache_max:
            _CACHE.popitem(last=False)
    return result


def speedup(
    workload_abbr: str,
    config_name: str,
    baseline: str = "base",
    scale: float = 1.0,
    gpu_config: Optional[GPUConfig] = None,
) -> float:
    """IPC of ``config_name`` over ``baseline`` for one workload."""
    test = run(workload_abbr, config_name, scale, gpu_config)
    base = run(workload_abbr, baseline, scale, gpu_config)
    return test.ipc / base.ipc if base.ipc else 0.0
