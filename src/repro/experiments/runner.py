"""Memoised simulation runner.

Figures 10-15 all evaluate the same handful of configurations over the
same 15 workloads, so results are cached per
``(workload, config, scale, L1 size, SM count)`` within the process. Every
run is deterministic, which makes the cache safe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.config import GPUConfig
from repro.experiments.configs import CONFIGS, experiment_gpu_config
from repro.sm.simulator import SimulationResult, simulate
from repro.stats.energy import EnergyModel, EnergyReport
from repro.workloads.suite import workload
from repro.workloads.synthetic import build_kernel


@dataclass(frozen=True)
class RunResult:
    """One simulated (workload, configuration) point with derived metrics."""

    workload: str
    config_name: str
    sim: SimulationResult
    energy: EnergyReport

    @property
    def ipc(self) -> float:
        return self.sim.ipc

    @property
    def cycles(self) -> int:
        return self.sim.cycles


_CACHE: dict[tuple, RunResult] = {}


def clear_cache() -> None:
    """Drop memoised results (tests use this to force fresh runs)."""
    _CACHE.clear()


def run(
    workload_abbr: str,
    config_name: str,
    scale: float = 1.0,
    gpu_config: Optional[GPUConfig] = None,
) -> RunResult:
    """Simulate one workload under one named configuration (memoised)."""
    if config_name not in CONFIGS:
        known = ", ".join(sorted(CONFIGS))
        raise ValueError(f"unknown config {config_name!r}; known: {known}")
    cfg = gpu_config or experiment_gpu_config()
    key = (workload_abbr, config_name, scale, cfg)
    cached = _CACHE.get(key)
    if cached is not None:
        return cached

    spec = workload(workload_abbr)
    kernel = build_kernel(spec, scale)
    engine = CONFIGS[config_name]
    sim = simulate(kernel, cfg, engine.build)
    energy = EnergyModel().report(
        sim.stats, apres_events=sim.engine_events, num_sms=cfg.num_sms
    )
    result = RunResult(workload_abbr, config_name, sim, energy)
    _CACHE[key] = result
    return result


def speedup(
    workload_abbr: str,
    config_name: str,
    baseline: str = "base",
    scale: float = 1.0,
    gpu_config: Optional[GPUConfig] = None,
) -> float:
    """IPC of ``config_name`` over ``baseline`` for one workload."""
    test = run(workload_abbr, config_name, scale, gpu_config)
    base = run(workload_abbr, baseline, scale, gpu_config)
    return test.ipc / base.ipc if base.ipc else 0.0
