"""Machine-checkable reproduction claims.

EXPERIMENTS.md states which of the paper's shape claims transfer to this
substrate; this module encodes each as an executable check so regressions
in the simulator or workload calibration are caught mechanically
(``python -m repro validate``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.experiments import figures


@dataclass(frozen=True)
class ClaimResult:
    """Outcome of one reproduction claim."""

    name: str
    paper: str
    measured: str
    passed: bool


def _fmt(value: float) -> str:
    return f"{value:.3f}"


def check_claims(scale: float = 0.5,
                 apps: Optional[Sequence[str]] = None) -> list[ClaimResult]:
    """Evaluate every transfer claim; returns one result per claim."""
    f10 = figures.figure10(apps=apps, scale=scale)
    f13 = figures.figure13(apps=apps, scale=scale)
    f14 = figures.figure14(apps=apps, scale=scale)
    f2 = figures.figure2(apps=apps, scale=scale)
    cost = figures.table2()
    results: list[ClaimResult] = []

    def claim(name: str, paper: str, measured: str, passed: bool) -> None:
        results.append(ClaimResult(name, paper, measured, passed))

    gmeans = {c: f10[c]["GMEAN"] for c in figures.FIG10_CONFIGS}
    best = max(gmeans, key=gmeans.__getitem__)
    claim(
        "APRES is the best configuration overall (Fig 10)",
        "APRES +24.2% vs next best +18.8%",
        f"gmeans: {', '.join(f'{c}={_fmt(v)}' for c, v in gmeans.items())}",
        best == "apres",
    )
    if apps is None or "KM" in apps:
        claim(
            "CCWS dominates APRES on KM's thrash (Fig 10 / Section V-B)",
            "CCWS 2.32x vs APRES 2.20x",
            f"ccws={_fmt(f10['ccws']['KM'])} apres={_fmt(f10['apres']['KM'])}",
            f10["ccws"]["KM"] > 1.2 and f10["ccws"]["KM"] > f10["apres"]["KM"],
        )
        b, c = f2["KM"]["B"], f2["KM"]["C"]
        claim(
            "A 32 MB L1 removes KM's capacity misses and speeds it up (Fig 2)",
            "KM capacity misses halved, 3.4x speedup",
            f"cap+conf {b.capacity_conflict_ratio:.2f}->"
            f"{c.capacity_conflict_ratio:.2f}, speedup {_fmt(c.speedup)}",
            c.capacity_conflict_ratio < 0.1 * max(b.capacity_conflict_ratio, 1e-9)
            and c.speedup > 1.2,
        )
    apres_apps = {a: v for a, v in f10["apres"].items() if not a.startswith("GMEAN")}
    biggest = max(apres_apps, key=apres_apps.__getitem__)
    claim(
        "APRES's biggest win is on a strided memory-intensive app (Fig 10)",
        "SRAD +40%, BFS +46%",
        f"{biggest}={_fmt(apres_apps[biggest])}",
        apres_apps[biggest] > 1.2,
    )
    claim(
        "APRES never regresses catastrophically (Fig 10)",
        "no app below baseline",
        f"min={_fmt(min(apres_apps.values()))}",
        min(apres_apps.values()) > 0.9,
    )
    claim(
        "APRES reduces average memory latency (Fig 13)",
        "-16.5% vs baseline",
        f"gmean={_fmt(f13['apres']['GMEAN'])}",
        f13["apres"]["GMEAN"] < 1.0,
    )
    claim(
        "Prefetch traffic stays near baseline (Fig 14)",
        "APRES -2.1%",
        f"gmean={_fmt(f14['apres']['GMEAN'])}",
        0.85 <= f14["apres"]["GMEAN"] <= 1.15,
    )
    claim(
        "APRES hardware cost (Table II)",
        "724 bytes",
        f"{cost.total_bytes} bytes",
        cost.total_bytes == 724,
    )
    # Fidelity claim: the scorecard's per-figure orderings must broadly
    # transfer. The bar is deliberately lenient (mean Spearman, not
    # per-figure): magnitudes compress on this substrate by design, and
    # per-figure tolerances belong to `repro diff` / CI, not here.
    from repro.registry.scorecard import score_figure

    f10_score = score_figure("figure10", apps=apps, scale=scale,
                             measured={k: {a: v for a, v in per.items()
                                           if not a.startswith(("GMEAN", "MEAN"))}
                                       for k, per in f10.items()})
    rho = f10_score.spearman
    claim(
        "Fig 10 per-app speedup ordering correlates with the paper",
        "scorecard Spearman > 0 (see `repro scorecard`)",
        "insufficient apps for rank correlation" if rho is None
        else f"mean Spearman={rho:+.2f}",
        rho is None or rho > 0.0,
    )
    return results


def format_report(results: Sequence[ClaimResult]) -> str:
    """Human-readable pass/fail report."""
    lines = ["Reproduction claim check", "=" * 72]
    for r in results:
        status = "PASS" if r.passed else "FAIL"
        lines.append(f"[{status}] {r.name}")
        lines.append(f"       paper:    {r.paper}")
        lines.append(f"       measured: {r.measured}")
    passed = sum(r.passed for r in results)
    lines.append("=" * 72)
    lines.append(f"{passed}/{len(results)} claims hold on this substrate")
    return "\n".join(lines)
