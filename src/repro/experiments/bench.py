"""Simulator speed microbenchmark: ``python -m repro bench``.

The hot loop of a cycle-accurate simulator is its product as much as its
metrics are, so speed gets the same treatment as fidelity: a fixed,
deterministic point set, timed cold (the runner cache is cleared before
every point), reduced to one headline number — simulated cycles per
wall-clock second — and archived to ``bench_results/BENCH_sim_speed.json``
plus the registry, where the history under the bench's stable ``run_id``
is the performance trajectory across commits.

Two measurements:

* **point set** — a small cross-section of the suite (thrashing, strided,
  broadcast, streaming) under representative configurations, each timed
  individually; totals aggregate them into cycles/second.
* **figure2 end-to-end** — wall-clock of a full ``figures.figure2`` call
  (the paper's motivation figure: every app under a small and an infinite
  L1), which exercises the whole experiment layer rather than one run.

Wall-clock numbers are host-dependent by nature; the payload says so via
its provenance stamp rather than pretending otherwise.
"""

from __future__ import annotations

import dataclasses
import gc
import statistics
import time
from typing import Any, Optional, Sequence

from repro.experiments import figures
from repro.experiments.runner import clear_cache, run

#: Fixed cross-section timed by the bench: one thrashing (KM), one strided
#: with reuse (LUD), one broadcast-heavy (BFS), one compute-streaming (CS)
#: workload, under baseline and the paper's two headline configurations.
DEFAULT_POINTS: tuple[tuple[str, str], ...] = (
    ("KM", "base"),
    ("KM", "apres"),
    ("LUD", "laws"),
    ("BFS", "apres"),
    ("CS", "base"),
)

#: Default scale: small enough for CI, large enough to exercise the caches.
DEFAULT_SCALE = 0.3

#: Apps for the end-to-end figure2 timing (two points each: small/huge L1).
DEFAULT_FIGURE2_APPS: tuple[str, ...] = ("BFS", "KM", "LUD", "SPMV")


def _time_point(workload: str, config: str, scale: float) -> dict[str, Any]:
    """Cold-cache timing of one runner point."""
    clear_cache()
    started = time.perf_counter()
    result = run(workload, config, scale=scale)
    wall_s = time.perf_counter() - started
    stats = result.sim.stats
    return {
        "workload": workload,
        "config": config,
        "cycles": stats.cycles,
        "instructions": stats.instructions,
        "ipc": stats.ipc,
        "wall_s": wall_s,
        "cycles_per_s": stats.cycles / wall_s if wall_s > 0 else 0.0,
    }


def run_bench(
    scale: float = DEFAULT_SCALE,
    points: Sequence[tuple[str, str]] = DEFAULT_POINTS,
    figure2_apps: Optional[Sequence[str]] = DEFAULT_FIGURE2_APPS,
) -> dict[str, Any]:
    """Measure simulation speed; returns the BENCH_sim_speed payload.

    Every point is timed with a cold runner cache (memoisation would turn
    the bench into a dict-lookup benchmark). ``figure2_apps=None`` skips
    the end-to-end measurement.
    """
    from repro.registry.provenance import collect_provenance

    timed = [_time_point(workload, config, scale)
             for workload, config in points]
    total_cycles = sum(p["cycles"] for p in timed)
    total_wall = sum(p["wall_s"] for p in timed)
    payload: dict[str, Any] = {
        "schema": "bench.sim_speed/1",
        "scale": scale,
        "points": timed,
        "totals": {
            "num_points": len(timed),
            "cycles": total_cycles,
            "wall_s": total_wall,
            "cycles_per_s": total_cycles / total_wall if total_wall > 0 else 0.0,
        },
        "provenance": collect_provenance(),
    }
    if figure2_apps:
        clear_cache()
        started = time.perf_counter()
        figures.figure2(list(figure2_apps), scale)
        wall_s = time.perf_counter() - started
        payload["figure2"] = {
            "apps": list(figure2_apps),
            "num_points": 2 * len(figure2_apps),
            "wall_s": wall_s,
        }
        payload["totals"]["figure2_wall_s"] = wall_s
    return payload


#: Shard counts the shard-speed bench measures against the serial engine.
SHARD_BENCH_COUNTS: tuple[int, ...] = (2, 4)

#: Configuration the shard bench times (the paper's headline engine).
SHARD_BENCH_CONFIG = "apres"

#: SM count for the shard bench: the full 15-SM GPU of the paper's
#: methodology. The experiment config trims to 2 SMs for CI speed, which
#: would leave an N-shard split nothing to fast-forward past.
SHARD_BENCH_NUM_SMS = 15


def run_shard_bench(
    scale: float = DEFAULT_SCALE,
    apps: Sequence[str] = DEFAULT_FIGURE2_APPS,
    shard_counts: Sequence[int] = SHARD_BENCH_COUNTS,
    config: str = SHARD_BENCH_CONFIG,
    num_sms: int = SHARD_BENCH_NUM_SMS,
    repeats: int = 3,
    epoch_cycles: Optional[int] = None,
) -> dict[str, Any]:
    """Serial vs sharded cycles/second over the figure-2 workload set.

    Single-shot wall-clock on a shared host is noisy enough to swamp the
    effect being measured, so every (app, engine) cell is timed
    ``repeats`` times with the engines *interleaved* inside each repeat
    (serial, 2 shards, 4 shards, next repeat ...) and reduced to the
    median; gc is disabled around the timed region so a collection
    doesn't land inside one engine's slot. Relaxed epochs trade fill
    latency fidelity for speed, so each sharded engine also reports its
    measured IPC drift and clamped-fill counts against the serial stats
    it approximates — the speedup number is only honest next to the
    drift it buys.
    """
    from repro.experiments.configs import CONFIGS, experiment_gpu_config
    from repro.registry.provenance import collect_provenance
    from repro.shard import DEFAULT_EPOCH_CYCLES, ShardPlan, shard_execute
    from repro.sm.simulator import simulate
    from repro.workloads.suite import workload
    from repro.workloads.synthetic import build_kernel

    epochs = DEFAULT_EPOCH_CYCLES if epoch_cycles is None else epoch_cycles
    cfg = dataclasses.replace(experiment_gpu_config(), num_sms=num_sms)
    engine = CONFIGS[config]
    plans: list[tuple[str, Optional[ShardPlan]]] = [("serial", None)]
    plans += [(f"shard{n}", ShardPlan(n, epochs)) for n in shard_counts]

    kernels = {app: build_kernel(workload(app), scale) for app in apps}
    walls: dict[tuple[str, str], list[float]] = {}
    outcomes: dict[tuple[str, str], tuple[Any, Optional[dict]]] = {}
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            for app in apps:
                for label, plan in plans:
                    started = time.perf_counter()
                    if plan is None:
                        sim = simulate(kernels[app], cfg, engine.build)
                        info = None
                    else:
                        sim, info = shard_execute(
                            kernels[app], cfg, engine.build, plan
                        )
                    wall_s = time.perf_counter() - started
                    walls.setdefault((app, label), []).append(wall_s)
                    outcomes[(app, label)] = (sim.stats, info)
    finally:
        if gc_was_enabled:
            gc.enable()

    def engine_payload(label: str, plan: Optional[ShardPlan]) -> dict[str, Any]:
        points = []
        total_cycles = 0
        total_wall = 0.0
        for app in apps:
            stats, info = outcomes[(app, label)]
            wall_s = statistics.median(walls[(app, label)])
            point: dict[str, Any] = {
                "workload": app,
                "cycles": stats.cycles,
                "ipc": stats.ipc,
                "wall_s": wall_s,
                "cycles_per_s": stats.cycles / wall_s if wall_s > 0 else 0.0,
            }
            if info is not None:
                serial_ipc = outcomes[(app, "serial")][0].ipc
                point["ipc_drift_pct"] = (
                    100.0 * (stats.ipc - serial_ipc) / serial_ipc
                    if serial_ipc else 0.0
                )
                point["clamped_fills"] = info["clamped_fills"]
                point["max_clamp_cycles"] = info["max_clamp_cycles"]
            points.append(point)
            total_cycles += stats.cycles
            total_wall += wall_s
        payload: dict[str, Any] = {
            "points": points,
            "totals": {
                "cycles": total_cycles,
                "wall_s": total_wall,
                "cycles_per_s": (
                    total_cycles / total_wall if total_wall > 0 else 0.0
                ),
            },
        }
        if plan is not None:
            payload["shards"] = plan.num_shards
            payload["epoch_cycles"] = plan.epoch_cycles
            payload["bit_exact"] = plan.bit_exact
        return payload

    engines = {label: engine_payload(label, plan) for label, plan in plans}
    serial_cps = engines["serial"]["totals"]["cycles_per_s"]
    for label, _ in plans[1:]:
        totals = engines[label]["totals"]
        totals["speedup_vs_serial"] = (
            totals["cycles_per_s"] / serial_cps if serial_cps else 0.0
        )
    headline_label = plans[-1][0]
    return {
        "schema": "bench.shard_speed/1",
        "scale": scale,
        "config": config,
        "num_sms": num_sms,
        "epoch_cycles": epochs,
        "repeats": repeats,
        "apps": list(apps),
        "engines": engines,
        "headline": {
            "engine": headline_label,
            "speedup_vs_serial":
                engines[headline_label]["totals"]["speedup_vs_serial"],
        },
        "provenance": collect_provenance(),
    }


#: Telemetry modes the overhead bench compares. ``off`` is the baseline
#: (no hub), ``stalls`` is what ``--telemetry`` costs (stall engine +
#: interval collector, no event objects), ``trace`` is the full event
#: stream into a Chrome trace builder (``--trace-out``).
TELEMETRY_BENCH_MODES: tuple[str, ...] = ("off", "stalls", "trace")

#: Workload/config cell for the overhead bench: the thrashing workload
#: under the paper's engine — the densest stall/event stream in the suite.
TELEMETRY_BENCH_POINT: tuple[str, str] = ("KM", "apres")


def run_telemetry_bench(
    scale: float = DEFAULT_SCALE,
    point: tuple[str, str] = TELEMETRY_BENCH_POINT,
    repeats: int = 5,
    window: int = 5_000,
) -> dict[str, Any]:
    """Telemetry overhead: off vs stalls vs full trace, serial vs sharded.

    Times every (mode, engine) cell ``repeats`` times with the cells
    interleaved inside each repeat and reduced to the median, gc disabled
    around the timed region — the same noise discipline as the shard
    bench. The sharded engine is the lock-step plan (``2 shards, E=1``),
    i.e. the byte-identical distributed-telemetry merge, so the "shards"
    column prices the per-lane recording + parent merge, not a different
    simulation. Hub construction is timed too: the CLI pays it per run.

    The payload backs DESIGN.md's measured-overhead table; overhead
    percentages are relative to the same engine's ``off`` mode.
    """
    from repro.experiments.configs import CONFIGS, experiment_gpu_config
    from repro.registry.provenance import collect_provenance
    from repro.shard import ShardPlan, shard_execute
    from repro.sm.simulator import simulate
    from repro.telemetry import TelemetryHub
    from repro.workloads.suite import workload
    from repro.workloads.synthetic import build_kernel

    app, config = point
    cfg = experiment_gpu_config()
    engine = CONFIGS[config]
    kernel = build_kernel(workload(app), scale)
    engines: list[tuple[str, Optional[ShardPlan]]] = [
        ("serial", None), ("shard2xE1", ShardPlan(2, 1))]

    def build_hub(mode: str) -> Optional[TelemetryHub]:
        if mode == "off":
            return None
        return TelemetryHub(window=window, trace=(mode == "trace"))

    walls: dict[tuple[str, str], list[float]] = {}
    cycles: dict[tuple[str, str], int] = {}
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            for mode in TELEMETRY_BENCH_MODES:
                for label, plan in engines:
                    started = time.perf_counter()
                    hub = build_hub(mode)
                    if plan is None:
                        sim = simulate(kernel, cfg, engine.build,
                                       telemetry=hub)
                    else:
                        sim, _ = shard_execute(kernel, cfg, engine.build,
                                               plan, telemetry=hub)
                    wall_s = time.perf_counter() - started
                    walls.setdefault((mode, label), []).append(wall_s)
                    cycles[(mode, label)] = sim.stats.cycles
    finally:
        if gc_was_enabled:
            gc.enable()

    cells: dict[str, dict[str, Any]] = {}
    for mode in TELEMETRY_BENCH_MODES:
        per_engine: dict[str, Any] = {}
        for label, _plan in engines:
            wall_s = statistics.median(walls[(mode, label)])
            baseline = statistics.median(walls[("off", label)])
            per_engine[label] = {
                "wall_s": wall_s,
                "cycles": cycles[(mode, label)],
                "cycles_per_s": (
                    cycles[(mode, label)] / wall_s if wall_s > 0 else 0.0
                ),
                "overhead_pct_vs_off": (
                    100.0 * (wall_s - baseline) / baseline
                    if baseline > 0 else 0.0
                ),
            }
        cells[mode] = per_engine
    return {
        "schema": "bench.telemetry_overhead/1",
        "scale": scale,
        "workload": app,
        "config": config,
        "num_sms": cfg.num_sms,
        "window": window,
        "repeats": repeats,
        "modes": cells,
        "headline": {
            "stalls_overhead_pct":
                cells["stalls"]["serial"]["overhead_pct_vs_off"],
            "trace_overhead_pct":
                cells["trace"]["serial"]["overhead_pct_vs_off"],
            "shard_stalls_overhead_pct":
                cells["stalls"]["shard2xE1"]["overhead_pct_vs_off"],
        },
        "provenance": collect_provenance(),
    }


#: Configuration the sampled bench measures (the figure-2 baseline cells).
SAMPLED_BENCH_CONFIG = "base"

#: The two L1 sizes of every figure-2 point: the experiment default and
#: the paper's effectively-infinite 32 MB cache.
SAMPLED_BENCH_L1_CELLS: tuple[tuple[str, Optional[int]], ...] = (
    ("small", None),
    ("l1_32mb", 32 * 1024 * 1024),
)


def run_sampled_bench(
    scale: float = DEFAULT_SCALE,
    apps: Sequence[str] = DEFAULT_FIGURE2_APPS,
    plan: Optional[Any] = None,
    config: str = SAMPLED_BENCH_CONFIG,
) -> dict[str, Any]:
    """Sampled estimator vs full simulation on the figure-2 point set.

    For every (app, L1 size) cell the full run is the ground truth; the
    sampled estimator is then timed twice against a *fresh* profile store
    — cold (profiling pass included, the price of the first sampled run
    of a spec) and warm (profile reused, the price of every run after it).
    The accuracy columns are measured, not assumed: per-cell signed IPC
    error against the full run, the estimator's own error bar, and
    whether the bar covered the actual error. The headline gates — worst
    IPC error and minimum detailed-cycle reduction — are what CI enforces.
    """
    import tempfile

    from repro.experiments.configs import experiment_gpu_config
    from repro.registry.provenance import collect_provenance
    from repro.sampling import ProfileStore, SamplingPlan, sampled_run
    from repro.sampling.executor import verify_estimate

    plan = plan or SamplingPlan()
    small_cfg = experiment_gpu_config()
    cells = [(label, small_cfg if l1 is None else small_cfg.with_l1_size(l1))
             for label, l1 in SAMPLED_BENCH_L1_CELLS]

    workloads: dict[str, Any] = {}
    full_wall = cold_wall = warm_wall = 0.0
    full_cycles = detailed_cycles = 0
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        with tempfile.TemporaryDirectory() as store_root:
            store = ProfileStore(store_root)
            for app in apps:
                for label, cfg in cells:
                    key = f"{app}/{label}"
                    clear_cache()
                    started = time.perf_counter()
                    full = run(app, config, scale=scale, gpu_config=cfg)
                    t_full = time.perf_counter() - started

                    started = time.perf_counter()
                    sim, info = sampled_run(app, config, scale, cfg, plan,
                                            store=store)
                    t_cold = time.perf_counter() - started
                    started = time.perf_counter()
                    sim, info = sampled_run(app, config, scale, cfg, plan,
                                            store=store)
                    t_warm = time.perf_counter() - started

                    problems = verify_estimate(info)
                    if problems:
                        raise RuntimeError(
                            f"sampled estimate failed self-check for {key}: "
                            + "; ".join(problems))

                    full_ipc = full.sim.stats.ipc
                    est_ipc = info["estimates"]["ipc"]
                    err = est_ipc - full_ipc
                    err_pct = 100.0 * err / full_ipc if full_ipc else 0.0
                    bar_pct = 100.0 * info["error_bars_rel"]["ipc"]
                    workloads[key] = {
                        "workload": app,
                        "l1": label,
                        "full": {
                            "cycles": full.sim.stats.cycles,
                            "ipc": full_ipc,
                            "wall_s": t_full,
                        },
                        "sampled": {
                            "ipc": est_ipc,
                            "detailed_cycles": info["detailed_cycles"],
                            "total_cycles": info["total_cycles"],
                            "clusters": info["clusters"],
                            "intervals": info["profile"]["intervals"],
                            "wall_s_cold": t_cold,
                            "wall_s_warm": t_warm,
                            "error_bars": dict(info["error_bars"]),
                        },
                        "ipc_err_pct": err_pct,
                        "ipc_bar_pct": bar_pct,
                        "covered": abs(err_pct) <= bar_pct,
                        "cycle_reduction": info["cycle_reduction"],
                    }
                    full_wall += t_full
                    cold_wall += t_cold
                    warm_wall += t_warm
                    full_cycles += info["total_cycles"]
                    detailed_cycles += info["detailed_cycles"]
    finally:
        if gc_was_enabled:
            gc.enable()

    errs = [abs(cell["ipc_err_pct"]) for cell in workloads.values()]
    reductions = [cell["cycle_reduction"] for cell in workloads.values()]
    return {
        "schema": "bench.sampled_speed/1",
        "scale": scale,
        "config": config,
        "plan": {"tag": plan.identity_tag, **plan.identity()},
        "apps": list(apps),
        "workloads": workloads,
        "totals": {
            "num_points": len(workloads),
            "max_ipc_err_pct": max(errs) if errs else 0.0,
            "min_cycle_reduction": min(reductions) if reductions else 0.0,
            "overall_cycle_reduction": (
                full_cycles / detailed_cycles if detailed_cycles else 0.0),
            "full_wall_s": full_wall,
            "sampled_wall_s_cold": cold_wall,
            "sampled_wall_s_warm": warm_wall,
            "sampled_speedup_warm": (
                full_wall / warm_wall if warm_wall > 0 else 0.0),
            "all_bars_cover_error": all(
                cell["covered"] for cell in workloads.values()),
        },
        "provenance": collect_provenance(),
    }
