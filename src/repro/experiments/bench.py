"""Simulator speed microbenchmark: ``python -m repro bench``.

The hot loop of a cycle-accurate simulator is its product as much as its
metrics are, so speed gets the same treatment as fidelity: a fixed,
deterministic point set, timed cold (the runner cache is cleared before
every point), reduced to one headline number — simulated cycles per
wall-clock second — and archived to ``bench_results/BENCH_sim_speed.json``
plus the registry, where the history under the bench's stable ``run_id``
is the performance trajectory across commits.

Two measurements:

* **point set** — a small cross-section of the suite (thrashing, strided,
  broadcast, streaming) under representative configurations, each timed
  individually; totals aggregate them into cycles/second.
* **figure2 end-to-end** — wall-clock of a full ``figures.figure2`` call
  (the paper's motivation figure: every app under a small and an infinite
  L1), which exercises the whole experiment layer rather than one run.

Wall-clock numbers are host-dependent by nature; the payload says so via
its provenance stamp rather than pretending otherwise.
"""

from __future__ import annotations

import time
from typing import Any, Optional, Sequence

from repro.experiments import figures
from repro.experiments.runner import clear_cache, run

#: Fixed cross-section timed by the bench: one thrashing (KM), one strided
#: with reuse (LUD), one broadcast-heavy (BFS), one compute-streaming (CS)
#: workload, under baseline and the paper's two headline configurations.
DEFAULT_POINTS: tuple[tuple[str, str], ...] = (
    ("KM", "base"),
    ("KM", "apres"),
    ("LUD", "laws"),
    ("BFS", "apres"),
    ("CS", "base"),
)

#: Default scale: small enough for CI, large enough to exercise the caches.
DEFAULT_SCALE = 0.3

#: Apps for the end-to-end figure2 timing (two points each: small/huge L1).
DEFAULT_FIGURE2_APPS: tuple[str, ...] = ("BFS", "KM", "LUD", "SPMV")


def _time_point(workload: str, config: str, scale: float) -> dict[str, Any]:
    """Cold-cache timing of one runner point."""
    clear_cache()
    started = time.perf_counter()
    result = run(workload, config, scale=scale)
    wall_s = time.perf_counter() - started
    stats = result.sim.stats
    return {
        "workload": workload,
        "config": config,
        "cycles": stats.cycles,
        "instructions": stats.instructions,
        "ipc": stats.ipc,
        "wall_s": wall_s,
        "cycles_per_s": stats.cycles / wall_s if wall_s > 0 else 0.0,
    }


def run_bench(
    scale: float = DEFAULT_SCALE,
    points: Sequence[tuple[str, str]] = DEFAULT_POINTS,
    figure2_apps: Optional[Sequence[str]] = DEFAULT_FIGURE2_APPS,
) -> dict[str, Any]:
    """Measure simulation speed; returns the BENCH_sim_speed payload.

    Every point is timed with a cold runner cache (memoisation would turn
    the bench into a dict-lookup benchmark). ``figure2_apps=None`` skips
    the end-to-end measurement.
    """
    from repro.registry.provenance import collect_provenance

    timed = [_time_point(workload, config, scale)
             for workload, config in points]
    total_cycles = sum(p["cycles"] for p in timed)
    total_wall = sum(p["wall_s"] for p in timed)
    payload: dict[str, Any] = {
        "schema": "bench.sim_speed/1",
        "scale": scale,
        "points": timed,
        "totals": {
            "num_points": len(timed),
            "cycles": total_cycles,
            "wall_s": total_wall,
            "cycles_per_s": total_cycles / total_wall if total_wall > 0 else 0.0,
        },
        "provenance": collect_provenance(),
    }
    if figure2_apps:
        clear_cache()
        started = time.perf_counter()
        figures.figure2(list(figure2_apps), scale)
        wall_s = time.perf_counter() - started
        payload["figure2"] = {
            "apps": list(figure2_apps),
            "num_points": 2 * len(figure2_apps),
            "wall_s": wall_s,
        }
        payload["totals"]["figure2_wall_s"] = wall_s
    return payload
