"""Data producers for every table and figure of the paper's evaluation.

Each function runs (memoised) simulations and returns plain data
structures; the benchmark harness and examples format them. Figure numbers
follow the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.characterize.loads import LoadProfiler, LoadRow
from repro.core.cost import HardwareCost, hardware_cost
from repro.experiments.configs import CONFIGS, experiment_gpu_config
from repro.experiments.runner import RunResult, run, speedup
from repro.sm.simulator import simulate
from repro.workloads.suite import SUITE, memory_intensive_workloads, workload
from repro.workloads.synthetic import build_kernel

#: Workload order used on every figure's X axis (Table IV order).
ALL_APPS = list(SUITE)
MEMORY_APPS = [w.abbr for w in memory_intensive_workloads()]

#: The five configurations of Figures 10-11.
FIG10_CONFIGS = ["ccws", "laws", "ccws+str", "laws+str", "apres"]
#: The scheduler x prefetcher grid of Figure 3.
FIG3_CONFIGS = [
    "pa+str", "pa+sld", "gto+str", "gto+sld",
    "mascar+str", "mascar+sld", "ccws+str", "ccws+sld",
]
#: STR under the four schedulers (Figure 4).
FIG4_CONFIGS = ["pa+str", "gto+str", "mascar+str", "ccws+str"]


def geomean(values: Sequence[float]) -> float:
    """Geometric mean; 0 for empty input."""
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


# ----------------------------------------------------------------------
# Table I
# ----------------------------------------------------------------------


def table1(apps: Optional[Sequence[str]] = None, scale: float = 1.0,
           top: int = 4) -> dict[str, list[LoadRow]]:
    """Per-load characterisation of the memory-intensive apps under baseline.

    Runs each workload with a :class:`LoadProfiler` attached and returns
    the top ``top`` loads by reference share.
    """
    out: dict[str, list[LoadRow]] = {}
    cfg = experiment_gpu_config()
    for abbr in apps or MEMORY_APPS:
        profiler = LoadProfiler()
        kernel = build_kernel(workload(abbr), scale)
        simulate(kernel, cfg, CONFIGS["base"].build, load_observers=[profiler.observe])
        out[abbr] = profiler.rows(top=top)
    return out


# ----------------------------------------------------------------------
# Table II
# ----------------------------------------------------------------------


def table2() -> HardwareCost:
    """APRES per-SM hardware cost (724 bytes with the paper's geometry)."""
    return hardware_cost()


# ----------------------------------------------------------------------
# Figure 2 — miss breakdown, 32 KB vs 32 MB L1
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class MissBreakdownRow:
    app: str
    cold_ratio: float
    capacity_conflict_ratio: float
    miss_rate: float
    #: Execution-time speedup relative to the 32 KB baseline (1.0 for it).
    speedup: float


def figure2(apps: Optional[Sequence[str]] = None, scale: float = 1.0,
            large_l1_bytes: int = 32 * 1024 * 1024) -> dict[str, dict[str, MissBreakdownRow]]:
    """Baseline (B) vs large-cache (C) miss breakdown per app."""
    out: dict[str, dict[str, MissBreakdownRow]] = {}
    small_cfg = experiment_gpu_config()
    large_cfg = small_cfg.with_l1_size(large_l1_bytes)
    for abbr in apps or ALL_APPS:
        base = run(abbr, "base", scale, small_cfg)
        large = run(abbr, "base", scale, large_cfg)
        out[abbr] = {
            "B": _miss_row(abbr, base, 1.0),
            "C": _miss_row(abbr, large, large.ipc / base.ipc if base.ipc else 0.0),
        }
    return out


def _miss_row(abbr: str, result: RunResult, speedup_value: float) -> MissBreakdownRow:
    l1 = result.sim.stats.l1
    return MissBreakdownRow(
        app=abbr,
        cold_ratio=l1.cold_miss_ratio,
        capacity_conflict_ratio=l1.capacity_conflict_ratio,
        miss_rate=l1.miss_rate,
        speedup=speedup_value,
    )


# ----------------------------------------------------------------------
# Figure 3 — scheduler x prefetcher speedups
# ----------------------------------------------------------------------


def figure3(apps: Optional[Sequence[str]] = None, scale: float = 1.0
            ) -> dict[str, dict[str, float]]:
    """Speedup over baseline for every scheduler+prefetcher combination."""
    out: dict[str, dict[str, float]] = {}
    for config in FIG3_CONFIGS:
        per_app = {abbr: speedup(abbr, config, scale=scale) for abbr in apps or ALL_APPS}
        per_app["GMEAN"] = geomean(list(per_app.values()))
        out[config] = per_app
    return out


# ----------------------------------------------------------------------
# Figure 4 / Figure 12 — early eviction ratios
# ----------------------------------------------------------------------


def early_eviction(configs: Sequence[str], apps: Optional[Sequence[str]] = None,
                   scale: float = 1.0) -> dict[str, dict[str, float]]:
    """Early-eviction ratio per app for the given configurations."""
    out: dict[str, dict[str, float]] = {}
    for config in configs:
        per_app = {
            abbr: run(abbr, config, scale).sim.stats.l1.early_eviction_ratio
            for abbr in apps or ALL_APPS
        }
        values = list(per_app.values())
        per_app["MEAN"] = sum(values) / len(values) if values else 0.0
        out[config] = per_app
    return out


def figure4(apps: Optional[Sequence[str]] = None, scale: float = 1.0
            ) -> dict[str, dict[str, float]]:
    """Early evictions of the STR prefetcher under four schedulers."""
    return early_eviction(FIG4_CONFIGS, apps, scale)


def figure12(apps: Optional[Sequence[str]] = None, scale: float = 1.0
             ) -> dict[str, dict[str, float]]:
    """Early evictions: best existing combination vs APRES."""
    return early_eviction(["ccws+str", "apres"], apps, scale)


# ----------------------------------------------------------------------
# Figure 10 — headline performance
# ----------------------------------------------------------------------


def figure10(apps: Optional[Sequence[str]] = None, scale: float = 1.0
             ) -> dict[str, dict[str, float]]:
    """Speedups of CCWS, LAWS, CCWS+STR, LAWS+STR and APRES over baseline."""
    out: dict[str, dict[str, float]] = {}
    app_list = list(apps or ALL_APPS)
    for config in FIG10_CONFIGS:
        per_app = {abbr: speedup(abbr, config, scale=scale) for abbr in app_list}
        per_app["GMEAN"] = geomean([per_app[a] for a in app_list])
        mem = [per_app[a] for a in app_list if a in MEMORY_APPS]
        if mem:
            per_app["GMEAN-MEM"] = geomean(mem)
        out[config] = per_app
    return out


# ----------------------------------------------------------------------
# Figure 11 — cache hit/miss breakdown
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CacheBreakdownRow:
    app: str
    config: str
    hit_after_hit: float
    hit_after_miss: float
    cold: float
    capacity_conflict: float

    @property
    def hit_ratio(self) -> float:
        return self.hit_after_hit + self.hit_after_miss

    @property
    def miss_ratio(self) -> float:
        return self.cold + self.capacity_conflict


#: Paper's bar labels: Baseline, CCWS, LAWS, CCWS+STR, APRES.
FIG11_CONFIGS = {"B": "base", "C": "ccws", "L": "laws", "S": "ccws+str", "A": "apres"}


def figure11(apps: Optional[Sequence[str]] = None, scale: float = 1.0
             ) -> dict[str, dict[str, CacheBreakdownRow]]:
    """Hit-after-hit / hit-after-miss / cold / capacity+conflict stacks."""
    out: dict[str, dict[str, CacheBreakdownRow]] = {}
    for abbr in apps or ALL_APPS:
        per_config = {}
        for label, config in FIG11_CONFIGS.items():
            l1 = run(abbr, config, scale).sim.stats.l1
            hits_known = l1.hit_after_hit + l1.hit_after_miss
            # The very first access has no predecessor; fold it into
            # hit-after-miss so ratios stack to 1.
            residue = l1.hits - hits_known
            per_config[label] = CacheBreakdownRow(
                app=abbr,
                config=config,
                hit_after_hit=l1.hit_after_hit_ratio,
                hit_after_miss=(l1.hit_after_miss + residue) / l1.accesses
                if l1.accesses else 0.0,
                cold=l1.cold_miss_ratio,
                capacity_conflict=l1.capacity_conflict_ratio,
            )
        out[abbr] = per_config
    return out


# ----------------------------------------------------------------------
# Figures 13/14/15 — latency, traffic, energy
# ----------------------------------------------------------------------


def normalised_metric(metric: str, configs: Sequence[str],
                      apps: Optional[Sequence[str]] = None, scale: float = 1.0
                      ) -> dict[str, dict[str, float]]:
    """Per-app metric values normalised to the baseline configuration."""
    getters = {
        "latency": lambda r: r.sim.stats.memory.avg_demand_latency,
        "traffic": lambda r: float(r.sim.stats.memory.total_traffic_bytes),
        "energy": lambda r: r.energy.total,
    }
    if metric not in getters:
        raise ValueError(f"unknown metric {metric!r}; known: {sorted(getters)}")
    getter = getters[metric]
    out: dict[str, dict[str, float]] = {}
    app_list = list(apps or ALL_APPS)
    for config in configs:
        per_app = {}
        for abbr in app_list:
            base_value = getter(run(abbr, "base", scale))
            value = getter(run(abbr, config, scale))
            per_app[abbr] = value / base_value if base_value else 0.0
        per_app["GMEAN"] = geomean([per_app[a] for a in app_list])
        out[config] = per_app
    return out


def figure13(apps: Optional[Sequence[str]] = None, scale: float = 1.0
             ) -> dict[str, dict[str, float]]:
    """Average memory latency, normalised to baseline."""
    return normalised_metric("latency", ["ccws+str", "apres"], apps, scale)


def figure14(apps: Optional[Sequence[str]] = None, scale: float = 1.0
             ) -> dict[str, dict[str, float]]:
    """Data traffic, normalised to baseline."""
    return normalised_metric("traffic", ["ccws+str", "apres"], apps, scale)


def figure15(apps: Optional[Sequence[str]] = None, scale: float = 1.0
             ) -> dict[str, dict[str, float]]:
    """Dynamic energy, normalised to baseline."""
    return normalised_metric("energy", ["apres"], apps, scale)
