"""Named scheduler/prefetcher configurations used across the evaluation.

A configuration name like ``"ccws+str"`` denotes a scheduler and a
prefetcher; ``"apres"`` builds the coupled LAWS+SAP pair; ``"laws"`` runs
LAWS without any prefetching (the ablation of Figure 10); ``"base"`` is
the paper's baseline (LRR, no prefetching).
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.config import GPUConfig
from repro.core.apres import build_apres
from repro.core.laws import LAWSScheduler
from repro.prefetch.base import Prefetcher
from repro.prefetch.registry import make_prefetcher
from repro.prefetch.none import NullPrefetcher
from repro.sched.base import WarpScheduler
from repro.sched.registry import make_scheduler

#: SM count used by experiments; DRAM bandwidth is scaled to match per-SM
#: pressure of the full 15-SM machine (see DESIGN.md).
EXPERIMENT_NUM_SMS = 2


def experiment_gpu_config(num_sms: int = EXPERIMENT_NUM_SMS) -> GPUConfig:
    """The Table III machine, scaled for tractable pure-Python runs."""
    return GPUConfig().scaled(num_sms)


@dataclass(frozen=True)
class EngineSpec:
    """How to build one SM's scheduler/prefetcher pair."""

    scheduler: str
    prefetcher: str = "none"

    @property
    def name(self) -> str:
        if self.scheduler == "apres":
            return "apres"
        if self.prefetcher == "none":
            return self.scheduler
        return f"{self.scheduler}+{self.prefetcher}"

    def build(self) -> tuple[WarpScheduler, Prefetcher]:
        """Construct fresh per-SM engine instances."""
        if self.scheduler == "apres":
            pair = build_apres()
            return pair.scheduler, pair.prefetcher
        if self.scheduler == "laws":
            laws = LAWSScheduler()
            return laws, _make_prefetcher(self.prefetcher)
        return make_scheduler(self.scheduler), _make_prefetcher(self.prefetcher)


def _make_prefetcher(name: str) -> Prefetcher:
    if name == "none":
        return NullPrefetcher()
    return make_prefetcher(name)


def _build_registry() -> dict[str, EngineSpec]:
    registry: dict[str, EngineSpec] = {"base": EngineSpec("lrr")}
    for sched in ("lrr", "gto", "twolevel", "ccws", "mascar", "pa", "cawa", "laws"):
        registry[sched] = EngineSpec(sched)
        for pf in ("str", "sld", "mta"):
            registry[f"{sched}+{pf}"] = EngineSpec(sched, pf)
    registry["apres"] = EngineSpec("apres")
    return registry


#: Every runnable configuration, keyed by name.
CONFIGS: dict[str, EngineSpec] = _build_registry()
