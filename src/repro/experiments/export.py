"""Machine-readable export of experiment results.

Every figure producer returns plain dictionaries/dataclasses; this module
serialises them to JSON so plotting pipelines and regression dashboards
can consume reproduction results without importing the library.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Any, Callable, Optional, Sequence, Union

from repro.experiments import figures

PathLike = Union[str, pathlib.Path]

#: Figure/table name -> producer taking (apps, scale).
PRODUCERS: dict[str, Callable[..., Any]] = {
    "table1": lambda apps, scale: figures.table1(apps=apps, scale=scale),
    "table2": lambda apps, scale: figures.table2(),
    "figure2": lambda apps, scale: figures.figure2(apps=apps, scale=scale),
    "figure3": lambda apps, scale: figures.figure3(apps=apps, scale=scale),
    "figure4": lambda apps, scale: figures.figure4(apps=apps, scale=scale),
    "figure10": lambda apps, scale: figures.figure10(apps=apps, scale=scale),
    "figure11": lambda apps, scale: figures.figure11(apps=apps, scale=scale),
    "figure12": lambda apps, scale: figures.figure12(apps=apps, scale=scale),
    "figure13": lambda apps, scale: figures.figure13(apps=apps, scale=scale),
    "figure14": lambda apps, scale: figures.figure14(apps=apps, scale=scale),
    "figure15": lambda apps, scale: figures.figure15(apps=apps, scale=scale),
}


def to_jsonable(value: Any) -> Any:
    """Recursively convert experiment results to JSON-compatible data."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {k: to_jsonable(v) for k, v in dataclasses.asdict(value).items()}
    if isinstance(value, dict):
        return {str(k): to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(v) for v in value]
    return value


def export_figure(
    name: str,
    path: PathLike,
    apps: Optional[Sequence[str]] = None,
    scale: float = 0.5,
) -> dict:
    """Produce one figure's data and write it as JSON; returns the payload."""
    try:
        producer = PRODUCERS[name]
    except KeyError:
        known = ", ".join(sorted(PRODUCERS))
        raise ValueError(f"unknown export {name!r}; known: {known}") from None
    payload = {
        "experiment": name,
        "scale": scale,
        "apps": list(apps) if apps else None,
        "data": to_jsonable(producer(apps, scale)),
    }
    from repro.resilience.atomic import atomic_write

    atomic_write(path, json.dumps(payload, indent=2, sort_keys=True))
    return payload


def export_all(directory: PathLike, apps: Optional[Sequence[str]] = None,
               scale: float = 0.5) -> list[pathlib.Path]:
    """Export every table and figure into ``directory`` (one JSON each)."""
    out_dir = pathlib.Path(directory)
    out_dir.mkdir(parents=True, exist_ok=True)
    written = []
    for name in PRODUCERS:
        path = out_dir / f"{name}.json"
        export_figure(name, path, apps=apps, scale=scale)
        written.append(path)
    return written
