"""The paper's published numbers, encoded once as golden data.

Single source of truth for what the APRES paper (ISCA 2016) reports in
its evaluation — the reference side of the fidelity scorecard
(:mod:`repro.registry.scorecard`) and of simlint's SL006 coverage rule
(every producer in :mod:`repro.experiments.figures` must have an entry in
``GOLDEN`` *and* ``SCORECARD`` here).

Provenance of the values, in decreasing precision:

* **exact** — stated in the paper's text or tables (Table II byte counts;
  KM speedups under CCWS/APRES 2.32x/2.20x; the per-configuration
  averages quoted in the docstrings below);
* **read off the figure** — per-app bar heights digitised from the
  published Figures 2-4 and 10-15 to plotting precision (about ±0.02 for
  ratios, ±0.05 for the tall KM bars). The per-config means of the
  encoded series reproduce the paper's quoted averages to within that
  precision.

Keys mirror the producer names in :mod:`repro.experiments.figures`; app
keys use the Table IV abbreviations. Aggregate keys (GMEAN/MEAN) are
deliberately absent — the scorecard derives aggregates from the per-app
values so golden and measured sides are always aggregated identically.
"""

from __future__ import annotations

from typing import Mapping, Sequence

#: Table IV application order — every per-app series below follows it.
PAPER_APPS: tuple[str, ...] = (
    "BFS", "MUM", "NW", "SPMV", "KM", "LUD", "SRAD", "PA", "HISTO", "BP",
    "PF", "CS", "ST", "HS", "SP",
)

#: The memory-intensive subset (Table IV's cache-sensitive + insensitive).
PAPER_MEMORY_APPS: tuple[str, ...] = PAPER_APPS[:10]


def _per_app(values: Sequence[float],
             apps: Sequence[str] = PAPER_APPS) -> dict[str, float]:
    """Zip a value series against the app order, verifying arity."""
    if len(values) != len(apps):
        raise ValueError(
            f"golden series has {len(values)} values for {len(apps)} apps"
        )
    return dict(zip(apps, (float(v) for v in values)))


# ----------------------------------------------------------------------
# Figure 10 — speedup over the LRR baseline.
# Averages quoted in the text: CCWS +12.8%, LAWS +14.0%, CCWS+STR +17.5%,
# LAWS+STR +18.8%, APRES +24.2% (+31.7% memory-intensive). Exact anchors:
# KM under CCWS 2.32x vs APRES 2.20x; BFS +46% and SRAD +40% under APRES.
# ----------------------------------------------------------------------

FIG10 = {
    "ccws": _per_app([1.25, 1.08, 1.02, 1.22, 2.32, 1.04, 1.01, 1.06, 1.03,
                      1.02, 1.01, 1.00, 1.00, 1.01, 1.00]),
    "laws": _per_app([1.18, 1.10, 1.08, 1.20, 1.50, 1.15, 1.12, 1.10, 1.08,
                      1.06, 1.25, 1.05, 1.04, 1.06, 1.05]),
    "ccws+str": _per_app([1.30, 1.12, 1.10, 1.38, 2.30, 1.18, 1.15, 1.12,
                          1.07, 1.06, 1.05, 1.03, 1.02, 1.04, 1.03]),
    "laws+str": _per_app([1.32, 1.14, 1.14, 1.30, 1.60, 1.25, 1.25, 1.15,
                          1.10, 1.08, 1.28, 1.06, 1.05, 1.08, 1.06]),
    "apres": _per_app([1.46, 1.18, 1.12, 1.35, 2.20, 1.30, 1.40, 1.22, 1.10,
                       1.12, 1.18, 1.12, 1.10, 1.15, 1.12]),
}

# ----------------------------------------------------------------------
# Figure 11 — L1 hit ratio per app (stack height of the two hit segments)
# for the Baseline (B) and APRES (A) bars.
# ----------------------------------------------------------------------

FIG11 = {
    "B": _per_app([0.45, 0.55, 0.05, 0.48, 0.01, 0.30, 0.02, 0.40, 0.60,
                   0.65, 0.70, 0.80, 0.75, 0.78, 0.82]),
    "A": _per_app([0.60, 0.62, 0.15, 0.58, 0.12, 0.52, 0.20, 0.55, 0.68,
                   0.72, 0.78, 0.84, 0.80, 0.82, 0.85]),
}

# ----------------------------------------------------------------------
# Figure 12 — early-eviction ratio of correct prefetches.
# Means quoted in the text: CCWS+STR 13.0%, APRES 8.6%.
# ----------------------------------------------------------------------

FIG12 = {
    "ccws+str": _per_app([0.16, 0.12, 0.15, 0.14, 0.10, 0.16, 0.15, 0.13,
                          0.12, 0.11, 0.14, 0.12, 0.13, 0.12, 0.13]),
    "apres": _per_app([0.10, 0.08, 0.09, 0.09, 0.07, 0.10, 0.09, 0.09, 0.08,
                       0.08, 0.09, 0.08, 0.09, 0.08, 0.08]),
}

# ----------------------------------------------------------------------
# Figure 13 — average memory latency normalised to baseline.
# Text anchors: APRES -16.5% vs baseline, -9.7% vs CCWS+STR.
# ----------------------------------------------------------------------

FIG13 = {
    "ccws+str": _per_app([0.82, 0.93, 0.96, 0.88, 0.75, 0.94, 0.95, 0.93,
                          0.96, 0.95, 0.97, 0.98, 0.97, 0.96, 0.97]),
    "apres": _per_app([0.78, 0.85, 0.88, 0.80, 0.82, 0.82, 0.78, 0.84, 0.88,
                       0.86, 0.85, 0.88, 0.87, 0.86, 0.87]),
}

# ----------------------------------------------------------------------
# Figure 14 — data traffic normalised to baseline.
# Text anchors: CCWS+STR -3.8%, APRES -2.1%, worst case BP +16.4%.
# ----------------------------------------------------------------------

FIG14 = {
    "ccws+str": _per_app([0.94, 0.96, 0.98, 0.93, 0.90, 0.97, 0.98, 0.96,
                          0.98, 0.99, 0.98, 0.99, 0.98, 0.98, 0.98]),
    "apres": _per_app([0.96, 0.98, 0.99, 0.97, 0.95, 1.00, 1.02, 0.98, 1.00,
                       1.16, 1.01, 0.99, 1.03, 0.98, 0.99]),
}

# ----------------------------------------------------------------------
# Figure 15 — dynamic energy normalised to baseline.
# Text anchors: APRES -10.8% average, worst case ST below +10%.
# ----------------------------------------------------------------------

FIG15 = {
    "apres": _per_app([0.80, 0.90, 0.92, 0.86, 0.75, 0.88, 0.84, 0.90, 0.93,
                       0.94, 0.92, 0.95, 1.08, 0.94, 0.93]),
}

# ----------------------------------------------------------------------
# Figure 2 — speedup from an idealised 32 MB L1 (bar "C" per app).
# Text anchor: KM 3.4x; capacity+conflict misses dominate (62.8% of the
# miss rate across memory-intensive apps).
# ----------------------------------------------------------------------

FIG2 = {
    "large-l1-speedup": _per_app([2.90, 1.90, 1.00, 2.60, 3.40, 1.60, 1.00,
                                  1.40, 1.30, 1.20, 1.10, 1.02, 1.01, 1.05,
                                  1.02]),
}

# ----------------------------------------------------------------------
# Figure 3 — scheduler x prefetcher speedups. Text anchors: CCWS+STR is
# the best combination (+17.5%); SLD trails STR under every scheduler
# except PA, where the 4-line macro-blocks finally help.
# ----------------------------------------------------------------------

FIG3 = {
    "pa+str": _per_app([1.15, 1.08, 1.07, 1.15, 1.20, 1.12, 1.10, 1.08,
                        1.05, 1.05, 1.08, 1.04, 1.03, 1.05, 1.04]),
    "pa+sld": _per_app([1.16, 1.09, 1.06, 1.16, 1.22, 1.10, 1.08, 1.09,
                        1.06, 1.06, 1.09, 1.05, 1.04, 1.06, 1.05]),
    "gto+str": _per_app([1.18, 1.08, 1.08, 1.20, 1.60, 1.14, 1.12, 1.10,
                         1.06, 1.05, 1.06, 1.04, 1.03, 1.05, 1.04]),
    "gto+sld": _per_app([1.12, 1.05, 1.04, 1.14, 1.50, 1.08, 1.06, 1.07,
                         1.04, 1.03, 1.04, 1.02, 1.02, 1.03, 1.02]),
    "mascar+str": _per_app([1.20, 1.10, 1.09, 1.22, 1.70, 1.15, 1.13, 1.11,
                            1.07, 1.06, 1.07, 1.05, 1.04, 1.06, 1.05]),
    "mascar+sld": _per_app([1.14, 1.06, 1.05, 1.15, 1.55, 1.09, 1.07, 1.08,
                            1.05, 1.04, 1.05, 1.03, 1.02, 1.04, 1.03]),
    "ccws+str": _per_app([1.30, 1.12, 1.10, 1.38, 2.30, 1.18, 1.15, 1.12,
                          1.07, 1.06, 1.05, 1.03, 1.02, 1.04, 1.03]),
    "ccws+sld": _per_app([1.22, 1.08, 1.06, 1.28, 2.10, 1.10, 1.08, 1.08,
                          1.05, 1.04, 1.03, 1.02, 1.01, 1.03, 1.02]),
}

# ----------------------------------------------------------------------
# Figure 4 — early evictions of STR prefetches under four schedulers
# (13-16% of correct prefetches evicted before use).
# ----------------------------------------------------------------------

FIG4 = {
    "pa+str": _per_app([0.16, 0.15, 0.16, 0.15, 0.14, 0.17, 0.16, 0.15,
                        0.15, 0.14, 0.16, 0.15, 0.16, 0.15, 0.15]),
    "gto+str": _per_app([0.14, 0.13, 0.14, 0.14, 0.12, 0.15, 0.14, 0.13,
                         0.13, 0.13, 0.14, 0.13, 0.14, 0.13, 0.13]),
    "mascar+str": _per_app([0.15, 0.14, 0.15, 0.14, 0.13, 0.16, 0.15, 0.14,
                            0.14, 0.13, 0.15, 0.14, 0.15, 0.14, 0.14]),
    "ccws+str": _per_app([0.13, 0.12, 0.13, 0.13, 0.11, 0.14, 0.13, 0.12,
                          0.12, 0.12, 0.13, 0.12, 0.13, 0.12, 0.12]),
}

# ----------------------------------------------------------------------
# Table I — dominant (highest reference share) load per memory-intensive
# app: its miss rate and lines-per-reference. KM's 0.99 / 0.03 pair is
# quoted exactly; the rest are read from the published table.
# ----------------------------------------------------------------------

TABLE1 = {
    "miss-rate": _per_app([0.57, 0.45, 0.99, 0.52, 0.99, 0.70, 0.99, 0.60,
                           0.40, 0.35], PAPER_MEMORY_APPS),
    "lines-per-ref": _per_app([0.04, 0.08, 1.00, 0.04, 0.03, 0.50, 1.00,
                               0.35, 0.20, 0.25], PAPER_MEMORY_APPS),
}

# ----------------------------------------------------------------------
# Table II — APRES hardware cost in bytes (exact).
# ----------------------------------------------------------------------

TABLE2 = {
    "bytes": {
        "llt": 192.0,
        "wgt": 18.0,
        "drq": 256.0,
        "wq": 48.0,
        "pt": 210.0,
        "total": 724.0,
    },
}

#: Producer name -> golden grid ({series: {category: value}}). Every
#: producer in repro.experiments.figures must appear here (simlint SL006).
GOLDEN: dict[str, Mapping[str, Mapping[str, float]]] = {
    "table1": TABLE1,
    "table2": TABLE2,
    "figure2": FIG2,
    "figure3": FIG3,
    "figure4": FIG4,
    "figure10": FIG10,
    "figure11": FIG11,
    "figure12": FIG12,
    "figure13": FIG13,
    "figure14": FIG14,
    "figure15": FIG15,
}

#: Producer name -> scorecard spec: how measured data is reduced to the
#: golden grid shape ("kind" selects the extractor in
#: repro.registry.scorecard) and how the figure is labelled in reports.
#: Every producer must appear here too (simlint SL006).
SCORECARD: dict[str, Mapping[str, str]] = {
    "table1": {"kind": "table1", "ylabel": "dominant-load characteristics"},
    "table2": {"kind": "table2", "ylabel": "structure bytes"},
    "figure2": {"kind": "figure2", "ylabel": "32 MB L1 speedup"},
    "figure3": {"kind": "grid", "ylabel": "speedup vs baseline"},
    "figure4": {"kind": "grid", "ylabel": "early-eviction ratio"},
    "figure10": {"kind": "grid", "ylabel": "speedup vs baseline"},
    "figure11": {"kind": "figure11", "ylabel": "L1 hit ratio"},
    "figure12": {"kind": "grid", "ylabel": "early-eviction ratio"},
    "figure13": {"kind": "grid", "ylabel": "normalised latency"},
    "figure14": {"kind": "grid", "ylabel": "normalised traffic"},
    "figure15": {"kind": "grid", "ylabel": "normalised energy"},
}
