"""Experiment harness: named configurations, memoised runs, per-figure data."""

from repro.experiments.configs import CONFIGS, EngineSpec, experiment_gpu_config
from repro.experiments.runner import RunResult, clear_cache, run, speedup
from repro.experiments import figures
from repro.experiments.report import format_table

__all__ = [
    "CONFIGS",
    "EngineSpec",
    "experiment_gpu_config",
    "RunResult",
    "clear_cache",
    "run",
    "speedup",
    "figures",
    "format_table",
]
