"""Crash-safe sweep driver with an on-disk JSONL results store.

Large evaluations simulate hundreds of ``(workload, config, scale)``
points; a crash, hang, or SIGKILL hours in must not force a rerun from
scratch. This driver therefore:

* persists every completed point to an append-only JSONL store the moment
  it finishes (flushed and fsynced, so a kill can lose at most the point
  in flight — never corrupt earlier ones);
* on restart (``resume_from``), skips points the store already holds and
  re-simulates only incomplete or previously failed ones — simulation is
  deterministic, so the merged store equals an uninterrupted sweep's;
* bounds each point with an optional wall-clock timeout and retries
  transient :class:`SimulationError`\\ s with exponential backoff;
* records failures as structured JSONL rows instead of killing the sweep.

The in-process memoisation cache of :mod:`repro.experiments.runner` is an
optimisation *within* a process; this store is the source of truth
*across* processes.
"""

from __future__ import annotations

import json
import os
import signal
import sys
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import sleep as _default_sleep
from typing import Any, Callable, Iterable, Optional, Sequence

from repro.config import GPUConfig
from repro.errors import ReproError, SimulationError, WatchdogTimeout
from repro.experiments.configs import CONFIGS
from repro.experiments.runner import RunResult, run
from repro.resilience.atomic import append_line
from repro.workloads.suite import SUITE

#: Bump when the record layout changes incompatibly.
RESULT_FORMAT = 1


@dataclass(frozen=True)
class SweepPoint:
    """One simulation point of a sweep."""

    workload: str
    config_name: str
    scale: float

    @property
    def key(self) -> str:
        """Stable store key for resume matching."""
        return f"{self.workload}|{self.config_name}|{self.scale:g}"


def sweep_points(
    apps: Optional[Sequence[str]] = None,
    configs: Optional[Sequence[str]] = None,
    scales: Sequence[float] = (0.5,),
) -> list[SweepPoint]:
    """Cartesian product of workloads x configurations x scales.

    ``None`` selects every workload / every configuration. Unknown names
    raise ValueError up front, before any simulation time is spent.
    """
    app_list = list(apps) if apps else sorted(SUITE)
    config_list = list(configs) if configs else sorted(CONFIGS)
    for app in app_list:
        if app not in SUITE:
            raise ValueError(f"unknown workload {app!r}")
    for config in config_list:
        if config not in CONFIGS:
            raise ValueError(f"unknown config {config!r}")
    return [
        SweepPoint(app, config, scale)
        for app in app_list
        for config in config_list
        for scale in scales
    ]


class ResultsStore:
    """Append-only JSONL store of sweep results.

    Each line is one self-contained JSON record, appended as a single
    fsynced ``O_APPEND`` syscall through the self-healing
    :func:`repro.resilience.atomic.append_line` — a SIGKILL, disk-full or
    I/O error can therefore never leave a torn line behind; :meth:`load`
    still tolerates a legacy torn tail by skipping undecodable lines (the
    affected point is simply re-simulated on resume).
    """

    def __init__(self, path: str):
        self.path = path

    def load(self) -> dict[str, dict]:
        """Records keyed by point key; the last record for a key wins."""
        records: dict[str, dict] = {}
        if not os.path.exists(self.path):
            return records
        with open(self.path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn tail from a crash mid-append
                key = record.get("key")
                if isinstance(key, str):
                    records[key] = record
        return records

    def append(self, record: dict) -> None:
        append_line(self.path, json.dumps(record, sort_keys=True))


@dataclass
class SweepSummary:
    """Outcome of one :func:`run_sweep` invocation."""

    out_path: str
    total_points: int
    simulated: int = 0
    skipped: int = 0
    failed: int = 0
    #: Points replayed from the registry instead of simulated (memoization).
    cache_hits: int = 0
    #: Points that consulted the registry cache and missed.
    cache_misses: int = 0
    #: Keys that ended in a failure record this invocation.
    failed_keys: list[str] = field(default_factory=list)
    #: Registry memo hits rejected by hash verification (re-simulated).
    cache_rejected: int = 0
    #: Quarantined failure records skipped on resume (``--retry-failed``
    #: forces them back into the pending set instead).
    quarantined_skipped: int = 0
    #: Keys currently quarantined: skipped on resume + newly quarantined.
    quarantined_keys: list[str] = field(default_factory=list)

    @property
    def completed(self) -> int:
        return self.simulated + self.skipped + self.cache_hits - self.failed


def _base_provenance(gpu_config: Optional[GPUConfig]) -> dict:
    """Sweep-wide provenance, computed once per invocation.

    Every record (success or failure) is stamped with the commit, the
    GPUConfig content hash and the ``REPRO_BENCH_SCALE`` environment so a
    stored point can always be traced back to the code and settings that
    produced it.
    """
    from repro.experiments.configs import experiment_gpu_config
    from repro.registry.provenance import git_sha
    from repro.registry.records import config_hash

    return {
        "git_sha": git_sha(),
        "config_hash": config_hash(gpu_config or experiment_gpu_config()),
        "bench_scale_env": os.environ.get("REPRO_BENCH_SCALE"),
    }


def _point_provenance(point: SweepPoint, base: dict) -> dict:
    """Per-point provenance: base stamp + scheduler/prefetcher/seed."""
    from repro.registry.records import workload_seed
    from repro.workloads.suite import workload

    spec = CONFIGS.get(point.config_name)
    return {
        **base,
        "scheduler": spec.scheduler if spec else point.config_name,
        "prefetcher": (spec.prefetcher or "none") if spec else "none",
        "seed": workload_seed(workload(point.workload)),
    }


def _ok_record(point: SweepPoint, result: RunResult, attempts: int) -> dict:
    s = result.sim.stats
    record = {
        "format": RESULT_FORMAT,
        "key": point.key,
        "workload": point.workload,
        "config": point.config_name,
        "scale": point.scale,
        "status": "ok",
        "attempts": attempts,
        "cycles": s.cycles,
        "instructions": s.instructions,
        "ipc": s.ipc,
        "l1_miss_rate": s.l1.miss_rate,
        "avg_demand_latency": s.memory.avg_demand_latency,
        "energy_pj": result.energy.total,
        "engine_events": result.sim.engine_events,
        "stats": s.as_dict(),
    }
    shard_info = getattr(result, "shard_info", None)
    if shard_info is not None and not shard_info.get("bit_exact"):
        # Relaxed plans report their measured drift; lock-step records
        # must stay byte-identical to serial ones, so they add nothing.
        record["shard"] = dict(shard_info)
    sampling_info = getattr(result, "sampling_info", None)
    if sampling_info is not None:
        # Sampled records carry their full selection/weights/error-bar
        # block: consumers (diff, scorecards) must see the uncertainty.
        record["sampling"] = dict(sampling_info)
    return record


def _failure_record(point: SweepPoint, exc: ReproError, attempts: int,
                    quarantined: bool = True) -> dict:
    """Structured failure row. ``quarantined`` marks failures that resume
    should *skip* rather than retry: deterministic errors and supervisor
    quarantines (a point that failed ``max_attempts`` times in one run).
    Transient failures (a worker crash under the plain pool, an exhausted
    serial retry budget) pass ``False`` so the next resume re-attempts
    them.
    """
    return {
        "format": RESULT_FORMAT,
        "key": point.key,
        "workload": point.workload,
        "config": point.config_name,
        "scale": point.scale,
        "status": "failed",
        "attempts": attempts,
        "error": type(exc).__name__,
        "message": str(exc),
        "details": exc.details,
        "quarantined": bool(quarantined),
    }


@contextmanager
def _wall_clock_limit(seconds: Optional[float], key: str):
    """SIGALRM-based per-point timeout (main thread only; no-op elsewhere)."""
    usable = (
        seconds
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _on_alarm(signum, frame):
        raise WatchdogTimeout(
            f"sweep point {key} exceeded wall-clock timeout of {seconds}s",
            details={"kind": "wall-clock", "timeout_s": seconds, "key": key},
        )

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, float(seconds))
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


def _cached_record(registry: Any, point: SweepPoint, provenance: dict
                   ) -> tuple[Optional[dict], bool]:
    """Replayable record for ``point`` from the registry, if one exists.

    The point's identity (workload, config, scheduler, prefetcher, seed,
    scale, GPUConfig hash) is content-hashed exactly as ingestion hashes
    it; on a hit the archived sweep record is returned verbatim, so a
    cache-warm sweep appends byte-identical JSONL lines. Only complete
    ``status == "ok"`` records qualify — failures are never memoised.

    A hit is **hash-verified before it is trusted**: ingestion stamps
    ``data["sweep_record_sha256"]`` next to the archived record, and a
    record whose recomputed hash no longer matches (bit rot, a corrupted
    archive, an injected fault) is rejected with a warning instead of
    being replayed into results. Returns ``(record, rejected)`` —
    ``rejected`` is True when a hit existed but failed verification, so
    the caller can count the forced re-simulation.
    """
    from repro.registry.records import record_sha256, sweep_point_run_id

    run_id = sweep_point_run_id(
        point.workload, point.config_name, point.scale, provenance)
    try:
        hits = registry.history(run_id, limit=1)
    except Exception:
        return None, False  # an unreadable registry must not fail the sweep
    if not hits:
        return None, False
    data = hits[0].get("data") or {}
    record = data.get("sweep_record")
    if not isinstance(record, dict) or record.get("status") != "ok":
        return None, False
    if record.get("key") != point.key:
        _warn_cache_reject(point.key, "archived record key mismatch")
        return None, True
    expected = data.get("sweep_record_sha256")
    if isinstance(expected, str) and record_sha256(record) != expected:
        _warn_cache_reject(point.key, "payload hash mismatch")
        return None, True
    return record, False


def _warn_cache_reject(key: str, reason: str) -> None:
    print(
        f"[resilience] registry memo for {key} rejected ({reason}); "
        "re-simulating",
        file=sys.stderr,
    )


def run_sweep(
    points: Iterable[SweepPoint],
    out_path: str,
    *,
    gpu_config: Optional[GPUConfig] = None,
    resume_from: Optional[str] = None,
    retries: int = 2,
    backoff_s: float = 0.5,
    point_timeout_s: Optional[float] = None,
    max_points: Optional[int] = None,
    sleep: Callable[[float], None] = _default_sleep,
    progress: Optional[Callable[[SweepPoint, dict], None]] = None,
    telemetry: bool = False,
    trace_dir: Optional[str] = None,
    telemetry_window: int = 5_000,
    registry: Optional[Any] = None,
    jobs: int = 1,
    use_cache: bool = True,
    heartbeat_writer: Optional[Any] = None,
    retry_failed: bool = False,
    supervisor: Optional[Any] = None,
    shard_plan: Optional[Any] = None,
    sampling_plan: Optional[Any] = None,
) -> SweepSummary:
    """Run every point, persisting each result to ``out_path`` as it lands.

    ``resume_from`` names an earlier (possibly interrupted) store whose
    completed points are skipped; pointing it at ``out_path`` itself makes
    the sweep restartable in place. Failure records marked
    ``"quarantined": true`` (deterministic errors, supervisor
    quarantines) are *also* skipped on resume —
    re-running them would poison the sweep again — and reported via
    ``quarantined_skipped`` / ``quarantined_keys`` in the summary;
    ``retry_failed`` forces them back into the pending set instead.
    ``max_points`` bounds how many points
    are *processed* (simulated or cache-replayed) this invocation (skips
    are free) — useful for smoke tests and incremental fills. ``sleep`` is
    injectable so tests can verify backoff without waiting.

    With ``telemetry`` every simulated point gets a stall-attribution
    breakdown (reconciled exactly against its counters) folded into its
    record; ``trace_dir`` additionally writes one Chrome trace-event JSON
    per point (``<key>.trace.json``, ``|`` replaced by ``_``). Telemetry
    points bypass the runner's memoisation cache by design.

    ``registry`` optionally names a
    :class:`~repro.registry.store.RegistryStore`; every successful point
    is then also ingested as a registry run record (identity-hashed, with
    the same provenance stamp its JSONL record carries). With a registry
    attached and ``use_cache`` (the default), points whose ``run_id`` is
    already archived are replayed verbatim instead of re-simulated —
    ``--no-cache`` at the CLI forces recomputation.

    ``jobs > 1`` shards the points across a process pool
    (:mod:`repro.experiments.parallel`); completed records stream back and
    are appended strictly in point order, so the JSONL output is
    byte-identical to a serial sweep. All persistence (store, registry)
    stays in the parent. ``heartbeat_writer`` (a
    :class:`~repro.experiments.parallel.ProgressWriter`) merges per-worker
    telemetry heartbeats into one stream when telemetry is enabled.
    ``supervisor`` (a :class:`~repro.resilience.SupervisorConfig`) swaps
    the plain pool for the hardened supervised engine — heartbeat
    deadlines, kill-and-requeue, quarantine, serial degradation.

    ``shard_plan`` (a :class:`~repro.shard.ShardPlan`) runs every point
    on the epoch-barrier sharded engine. Lock-step plans (``E=1``)
    produce records indistinguishable from serial ones; relaxed plans
    stamp ``provenance["engine"]`` so their registry memo lineage stays
    separate from serial results. Pool workers receive the plan with
    each task (the process-wide runner default does not cross the pool
    boundary).

    ``sampling_plan`` (a :class:`~repro.sampling.SamplingPlan`) runs
    every point on the sampled executor instead. Sampled records stamp
    ``provenance["sampling"]`` with the plan tag, so their registry memo
    lineage never collides with full-run results, and carry their
    selection/weights/error-bar block under ``record["sampling"]``.
    Sampling rejects telemetry and shard plans up front.
    """
    points = list(points)
    if shard_plan is None:
        from repro.experiments.runner import default_shard_plan

        shard_plan = default_shard_plan()
    if sampling_plan is None:
        from repro.experiments.runner import default_sampling_plan

        sampling_plan = default_sampling_plan()
    if sampling_plan is not None:
        from repro.sampling import reject_unsupported

        reject_unsupported(
            sampling_plan,
            telemetry=telemetry or trace_dir is not None,
            sharded=shard_plan is not None,
        )
    base_prov = _base_provenance(gpu_config)
    if shard_plan is not None and shard_plan.identity_tag:
        base_prov["engine"] = shard_plan.identity_tag
    if sampling_plan is not None:
        base_prov["sampling"] = sampling_plan.identity_tag
    store = ResultsStore(out_path)
    done: dict[str, dict] = {}
    quarantined_resume: dict[str, dict] = {}
    if resume_from:
        carried: list[dict] = []
        for key, record in ResultsStore(resume_from).load().items():
            if record.get("status") == "ok":
                done[key] = record
                carried.append(record)
            elif record.get("quarantined") and not retry_failed:
                quarantined_resume[key] = record
                carried.append(record)
        if os.path.abspath(resume_from) != os.path.abspath(out_path):
            # Merging stores: carry completed (and still-quarantined)
            # points into the new one so out_path alone holds the full
            # sweep at the end.
            for record in carried:
                store.append(record)

    summary = SweepSummary(out_path=out_path, total_points=len(points))
    caching = use_cache and registry is not None

    # Partition into skips and pending work up front; both execution modes
    # then share one in-order flush path.
    pending: list[SweepPoint] = []
    for point in points:
        if point.key in done:
            summary.skipped += 1
        elif point.key in quarantined_resume:
            summary.quarantined_skipped += 1
            summary.quarantined_keys.append(point.key)
        else:
            pending.append(point)
    if max_points is not None:
        pending = pending[:max_points]

    provenances = [_point_provenance(point, base_prov) for point in pending]

    def flush(point: SweepPoint, record: dict, cached: bool) -> None:
        """Persist one completed point and update counters (point order)."""
        store.append(record)
        if cached:
            summary.cache_hits += 1
        else:
            if caching:
                summary.cache_misses += 1
            summary.simulated += 1
            if registry is not None:
                from repro.registry.records import sweep_point_record

                reg_record = sweep_point_record(record)
                if reg_record is not None:
                    registry.put(reg_record)
        done[point.key] = record
        if record["status"] != "ok":
            summary.failed += 1
            summary.failed_keys.append(point.key)
            if record.get("quarantined"):
                summary.quarantined_keys.append(point.key)
        if progress is not None:
            progress(point, record)

    def cache_lookup(point: SweepPoint, provenance: dict) -> Optional[dict]:
        """Verified registry memo lookup, counting rejected hits."""
        cached, rejected = _cached_record(registry, point, provenance)
        if rejected:
            summary.cache_rejected += 1
        return cached

    if jobs > 1 and pending:
        _run_pending_parallel(
            pending, provenances, flush,
            gpu_config=gpu_config, retries=retries, backoff_s=backoff_s,
            point_timeout_s=point_timeout_s,
            telemetry=telemetry or trace_dir is not None,
            trace_dir=trace_dir, telemetry_window=telemetry_window,
            cache_lookup=cache_lookup if caching else None, jobs=jobs,
            heartbeat_writer=heartbeat_writer, supervisor=supervisor,
            shard_plan=shard_plan, sampling_plan=sampling_plan,
        )
        return summary

    for point, provenance in zip(pending, provenances):
        if caching:
            cached = cache_lookup(point, provenance)
            if cached is not None:
                flush(point, cached, cached=True)
                continue
        record = _run_point(
            point,
            gpu_config=gpu_config,
            retries=retries,
            backoff_s=backoff_s,
            point_timeout_s=point_timeout_s,
            sleep=sleep,
            telemetry=telemetry or trace_dir is not None,
            trace_dir=trace_dir,
            telemetry_window=telemetry_window,
            shard_plan=shard_plan,
            sampling_plan=sampling_plan,
        )
        record["provenance"] = provenance
        flush(point, record, cached=False)
    return summary


def _run_pending_parallel(
    pending: list[SweepPoint],
    provenances: list[dict],
    flush: Callable[[SweepPoint, dict, bool], None],
    *,
    gpu_config: Optional[GPUConfig],
    retries: int,
    backoff_s: float,
    point_timeout_s: Optional[float],
    telemetry: bool,
    trace_dir: Optional[str],
    telemetry_window: int,
    cache_lookup: Optional[Callable[[SweepPoint, dict], Optional[dict]]],
    jobs: int,
    heartbeat_writer: Optional[Any],
    supervisor: Optional[Any] = None,
    shard_plan: Optional[Any] = None,
    sampling_plan: Optional[Any] = None,
) -> None:
    """Fan pending points across a pool, flushing strictly in point order.

    Cache lookups happen in the parent (workers never open the registry);
    completed records from workers are held back in a buffer until every
    earlier point has flushed, which is what keeps the JSONL store
    byte-identical to a serial sweep even though execution completes out
    of order.
    """
    from repro.experiments.parallel import (
        HeartbeatRelay,
        PointTask,
        ProgressWriter,
        run_point_tasks,
    )
    from repro.resilience.supervisor import PointQuarantined

    results: dict[int, tuple[dict, bool]] = {}
    tasks: list[PointTask] = []
    for index, (point, provenance) in enumerate(zip(pending, provenances)):
        cached = (
            cache_lookup(point, provenance)
            if cache_lookup is not None else None
        )
        if cached is not None:
            results[index] = (cached, True)
            continue
        tasks.append(PointTask(
            index=index, point=point, gpu_config=gpu_config,
            retries=retries, backoff_s=backoff_s,
            point_timeout_s=point_timeout_s, telemetry=telemetry,
            trace_dir=trace_dir, telemetry_window=telemetry_window,
            shard_plan=shard_plan, sampling_plan=sampling_plan,
        ))

    relay = None
    if telemetry and tasks:
        writer = heartbeat_writer or ProgressWriter()
        relay = HeartbeatRelay(writer)

    next_index = 0

    def flush_ready() -> None:
        nonlocal next_index
        while next_index < len(pending) and next_index in results:
            record, cached = results.pop(next_index)
            flush(pending[next_index], record, cached)
            next_index += 1

    try:
        for index, payload in run_point_tasks(
            tasks, jobs, heartbeat_queue=relay.queue if relay else None,
            supervisor=supervisor,
        ):
            if isinstance(payload, PointQuarantined):
                record = _failure_record(
                    pending[index], payload,
                    attempts=int(payload.details.get("attempts", 1)),
                    quarantined=True,
                )
            elif isinstance(payload, Exception):
                record = _failure_record(
                    pending[index],
                    SimulationError(
                        f"worker died running {pending[index].key}: {payload!r}",
                        details={"kind": "worker-crash",
                                 "error": type(payload).__name__},
                    ),
                    attempts=1,
                    quarantined=False,
                )
            else:
                record = payload
            record["provenance"] = provenances[index]
            results[index] = (record, False)
            flush_ready()
        flush_ready()
    finally:
        if relay is not None:
            relay.close()


def _run_point(
    point: SweepPoint,
    *,
    gpu_config: Optional[GPUConfig],
    retries: int,
    backoff_s: float,
    point_timeout_s: Optional[float],
    sleep: Callable[[float], None],
    telemetry: bool = False,
    trace_dir: Optional[str] = None,
    telemetry_window: int = 5_000,
    heartbeat_sink: Optional[Any] = None,
    shard_plan: Optional[Any] = None,
    sampling_plan: Optional[Any] = None,
) -> dict:
    """Simulate one point with timeout + bounded retry; never raises
    :class:`ReproError` — failures become records.

    ``heartbeat_sink`` (an interval sink) is attached to the telemetry hub
    when one is built; pool workers use it to stream heartbeats back to
    the parent process.
    """
    attempts = 0
    while True:
        attempts += 1
        try:
            hub = None
            if telemetry:
                from repro.telemetry import TelemetryHub

                # One hub per attempt: a hub binds to a single simulator.
                hub = TelemetryHub(
                    window=telemetry_window, trace=trace_dir is not None
                )
                if heartbeat_sink is not None:
                    hub.add_interval_sink(heartbeat_sink)
            with _wall_clock_limit(point_timeout_s, point.key):
                result = run(
                    point.workload,
                    point.config_name,
                    scale=point.scale,
                    gpu_config=gpu_config,
                    telemetry=hub,
                    shard_plan=shard_plan,
                    sampling_plan=sampling_plan,
                )
            record = _ok_record(point, result, attempts)
            if hub is not None:
                _attach_telemetry(record, point, result, hub, trace_dir)
            return record
        except SimulationError as exc:
            if attempts > retries:
                # Transient by assumption (timeouts, livelocks): a resume —
                # possibly under a healthier config — re-attempts these.
                return _failure_record(point, exc, attempts,
                                       quarantined=False)
            sleep(backoff_s * (2 ** (attempts - 1)))
        except ReproError as exc:
            # Config/workload errors are deterministic; retrying cannot help.
            return _failure_record(point, exc, attempts)


def _attach_telemetry(
    record: dict,
    point: SweepPoint,
    result: RunResult,
    hub,
    trace_dir: Optional[str],
) -> None:
    """Fold the point's stall attribution (and optional trace) into its record."""
    # stall_summary reconciles first — raises InvariantError on drift.
    summary = hub.stall_summary(result.sim.stats)
    record["stalls"] = summary
    record["issue_cycles"] = summary["issue_cycles"]
    record["stall_cycles"] = summary["stall_cycles"]
    if trace_dir:
        os.makedirs(trace_dir, exist_ok=True)
        trace_path = os.path.join(
            trace_dir, point.key.replace("|", "_").replace("/", "-") + ".trace.json"
        )
        hub.trace.write(trace_path)
        record["trace_path"] = trace_path
