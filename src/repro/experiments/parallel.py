"""Process-pool execution backend for the experiment layer.

Every simulation point is an independent, deterministic, picklable unit of
work — (workload, config, scale, GPUConfig) in, record out — which makes
sweeps and figure regeneration embarrassingly parallel. This module holds
everything process-related so the rest of the experiment layer stays
sequential in shape:

* :func:`run_point_tasks` fans sweep points across a
  :class:`~concurrent.futures.ProcessPoolExecutor`, running the same
  integrity wrapper (timeout, retry, failure records) inside each worker
  and yielding records back as they complete; the sweep driver reorders
  them into point order so the JSONL store is byte-identical to a serial
  run.
* :func:`prewarm` simulates runner points in a pool and seeds the
  in-process memoisation cache, so figures/scorecards — which only ever
  call :func:`repro.experiments.runner.run` — parallelise without knowing
  this module exists.
* :class:`ProgressWriter` serialises progress and heartbeat lines from
  many sources onto one stream, and :class:`HeartbeatRelay` drains
  per-worker telemetry heartbeats into it.

Workers inherit the parent's environment but never touch the registry or
the results store; all persistence stays in the parent, so there is a
single writer per output file regardless of ``--jobs``.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import sys
import threading
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Optional, Sequence, TextIO

from repro.config import GPUConfig
from repro.resilience import faults
from repro.resilience.supervisor import SupervisedPool, SupervisorConfig
from repro.telemetry.export import TelemetrySink

#: One prewarmable runner point: (workload, config_name, scale, gpu_config).
RunPoint = tuple[str, str, float, Optional[GPUConfig]]


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker count: explicit ``--jobs``, else ``$REPRO_JOBS``, else 1.

    ``0`` means one worker per CPU. Values below zero are rejected; the
    result is always >= 1 (1 = run in-process, no pool).
    """
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if not env:
            return 1
        try:
            jobs = int(env)
        except ValueError as exc:
            raise ValueError(f"REPRO_JOBS must be an integer, got {env!r}") from exc
    jobs = int(jobs)
    if jobs < 0:
        raise ValueError("jobs must be >= 0 (0 = one per CPU)")
    if jobs == 0:
        jobs = os.cpu_count() or 1
    return max(1, jobs)


class ProgressWriter:
    """Line-oriented writer shared by every progress source of one command.

    Sweep progress lines, worker heartbeats and cache notes all funnel
    through :meth:`line`, which holds a lock for the write+flush pair — so
    concurrent sources can never interleave mid-line, no matter how many
    workers are reporting.
    """

    def __init__(self, stream: Optional[TextIO] = None):
        self._stream = stream if stream is not None else sys.stdout
        self._lock = threading.Lock()

    def line(self, text: str) -> None:
        with self._lock:
            self._stream.write(text + "\n")
            self._stream.flush()


class QueueHeartbeatSink(TelemetrySink):
    """Telemetry interval sink that forwards worker heartbeats to the parent.

    Installed on the per-point :class:`~repro.telemetry.TelemetryHub`
    inside pool workers; each interval becomes one small tuple on a
    manager queue, which the parent's :class:`HeartbeatRelay` renders
    through the shared :class:`ProgressWriter`. Subclassing
    :class:`~repro.telemetry.export.TelemetrySink` matters: the hub calls
    ``finish``/``reset`` on every attached sink at run close and shard
    retry, and a bare duck-typed sink would crash there.
    """

    def __init__(self, queue: Any, key: str):
        self._queue = queue
        self._key = key

    def on_interval(self, record: dict[str, Any]) -> None:
        try:
            self._queue.put(
                (self._key, record.get("cycle_end"), record.get("ipc"),
                 record.get("ipc_cum"))
            )
        except Exception:  # simlint: ignore[SL008]
            # A dying manager must never take the simulation down with it.
            pass


class HeartbeatRelay:
    """Parent-side drain of worker heartbeats onto one writer.

    Owns a ``multiprocessing.Manager`` queue (proxy objects are picklable,
    unlike raw ``mp.Queue``, so workers can receive it through the pool
    initializer) and a daemon thread that renders each heartbeat in the
    same format as the serial telemetry heartbeat line, prefixed with the
    point key it belongs to.
    """

    def __init__(self, writer: ProgressWriter):
        self._writer = writer
        self._manager = multiprocessing.Manager()
        self.queue = self._manager.Queue()
        self._thread = threading.Thread(target=self._drain, daemon=True)
        self._thread.start()

    def _drain(self) -> None:
        while True:
            item = self.queue.get()
            if item is None:
                return
            key, cycle_end, ipc, ipc_cum = item
            self._writer.line(
                f"[telemetry] {key}: cycle {cycle_end:,} | "
                f"IPC {ipc:.3f} (cum {ipc_cum:.3f})"
            )

    def close(self) -> None:
        try:
            self.queue.put(None)
            self._thread.join(timeout=5)
        finally:
            self._manager.shutdown()


# ----------------------------------------------------------------------
# Sweep-point execution
# ----------------------------------------------------------------------

#: Worker-global heartbeat queue, set once per worker by ``_init_worker``.
_WORKER_HEARTBEATS: Any = None


def _init_worker(heartbeat_queue: Any) -> None:
    global _WORKER_HEARTBEATS
    _WORKER_HEARTBEATS = heartbeat_queue


@dataclass(frozen=True)
class PointTask:
    """One sweep point plus the integrity knobs its worker run needs."""

    index: int
    point: Any  # SweepPoint; typed loosely to avoid an import cycle.
    gpu_config: Optional[GPUConfig]
    retries: int
    backoff_s: float
    point_timeout_s: Optional[float]
    telemetry: bool
    trace_dir: Optional[str]
    telemetry_window: int
    #: Resolved shard plan for this point (pool workers don't inherit the
    #: parent's process-wide default, so it rides along explicitly).
    shard_plan: Any = None
    #: Resolved sampling plan for this point, shipped explicitly for the
    #: same reason as ``shard_plan``.
    sampling_plan: Any = None


def _run_point_task(task: PointTask) -> tuple[int, dict]:
    """Worker entry: the sweep integrity wrapper around one point.

    Runs in the pool worker's main thread, so the SIGALRM wall-clock
    timeout composes exactly as in serial mode.
    """
    from repro.experiments.sweep import _run_point

    sink = None
    if task.telemetry and _WORKER_HEARTBEATS is not None:
        sink = QueueHeartbeatSink(_WORKER_HEARTBEATS, task.point.key)
    record = _run_point(
        task.point,
        gpu_config=task.gpu_config,
        retries=task.retries,
        backoff_s=task.backoff_s,
        point_timeout_s=task.point_timeout_s,
        sleep=time.sleep,
        telemetry=task.telemetry,
        trace_dir=task.trace_dir,
        telemetry_window=task.telemetry_window,
        heartbeat_sink=sink,
        shard_plan=task.shard_plan,
        sampling_plan=task.sampling_plan,
    )
    return task.index, record


def _default_supervisor_event(message: str) -> None:
    print(f"[supervisor] {message}", file=sys.stderr)


def run_point_tasks(
    tasks: Sequence[PointTask],
    jobs: int,
    heartbeat_queue: Any = None,
    supervisor: Optional[SupervisorConfig] = None,
) -> Iterator[tuple[int, Any]]:
    """Execute sweep-point tasks on a pool, yielding in completion order.

    Yields ``(index, record)``; a worker that dies outright (rather than
    returning a failure record) yields ``(index, exception)`` so the
    caller can turn it into a structured failure record. The caller owns
    ordering — see :func:`repro.experiments.sweep.run_sweep`, which holds
    completed records back until every earlier point has flushed.

    With a ``supervisor`` config — or whenever a fault plan is armed —
    the plain executor is swapped for the hardened
    :class:`~repro.resilience.supervisor.SupervisedPool`: heartbeat
    deadlines, kill-and-requeue with capped jittered backoff, poisoned
    point quarantine (yielded as
    :class:`~repro.resilience.supervisor.PointQuarantined`), and graceful
    degradation to serial when the pool keeps dying.
    """
    if not tasks:
        return
    if supervisor is None and faults.ACTIVE is not None:
        # A chaos run without an explicit config still needs supervision:
        # injected hangs/crashes must be detected, not wedge the sweep.
        supervisor = SupervisorConfig(deadline_s=10.0)
    if supervisor is not None:
        if supervisor.fault_plan is None and faults.ACTIVE is not None:
            supervisor = dataclasses.replace(
                supervisor, fault_plan=faults.ACTIVE)
        pool = SupervisedPool(supervisor, on_event=_default_supervisor_event)
        yield from pool.run(tasks, jobs, telemetry_queue=heartbeat_queue)
        return
    with ProcessPoolExecutor(
        max_workers=min(jobs, len(tasks)),
        initializer=_init_worker,
        initargs=(heartbeat_queue,),
    ) as pool:
        futures = {pool.submit(_run_point_task, task): task for task in tasks}
        for future in as_completed(futures):
            task = futures[future]
            try:
                yield future.result()
            except Exception as exc:  # e.g. BrokenProcessPool, MemoryError
                yield task.index, exc


# ----------------------------------------------------------------------
# Cache prewarming (figures / scorecard / ablations)
# ----------------------------------------------------------------------


def _prewarm_worker(item: tuple):
    from repro.experiments.runner import run

    point, shard_plan, sampling_plan = item
    workload, config_name, scale, gpu_config = point
    return point, run(workload, config_name, scale, gpu_config,
                      shard_plan=shard_plan, sampling_plan=sampling_plan)


def prewarm(points: Iterable[RunPoint], jobs: int, shard_plan=None,
            sampling_plan=None) -> int:
    """Simulate runner points in a pool and seed the in-process run cache.

    Returns how many points were actually simulated (already-cached and
    duplicate points are dropped first). With ``jobs <= 1`` the points run
    in-process, which is exactly what the figure code would do lazily —
    so prewarming never changes results, only when the work happens.
    RunResults are plain picklable dataclasses, and simulation is
    deterministic, so a worker-produced result is indistinguishable from
    a local one.

    ``shard_plan`` and ``sampling_plan`` default to the process-wide
    plans installed by the CLI's ``--shards``/``--sampled``; pool workers
    don't inherit that module state, so the resolved plans ship with each
    work item. The ``--jobs`` budget rule is enforced again here (defence
    in depth): pool workers may only shard in-process. Sampled prewarm
    workers share profiles through the on-disk profile store, so a
    profile built by one worker serves every later consumer.
    """
    from repro.errors import ShardConfigError
    from repro.experiments import runner

    plan = shard_plan if shard_plan is not None else runner.default_shard_plan()
    splan = (sampling_plan if sampling_plan is not None
             else runner.default_sampling_plan())
    if plan is not None and jobs > 1 and plan.worker_processes():
        raise ShardConfigError(
            f"--jobs {jobs} already owns the process budget; prewarm "
            "workers cannot nest process-backend shards",
            details={"jobs": jobs, "backend": plan.backend},
        )
    todo: list[RunPoint] = []
    seen: set[tuple] = set()
    for point in points:
        key = runner.cache_key(point[0], point[1], point[2], point[3], plan,
                               splan)
        if key in seen or runner.is_cached(
                point[0], point[1], point[2], point[3], plan, splan):
            continue
        seen.add(key)
        todo.append(point)
    if not todo:
        return 0
    if jobs <= 1 or len(todo) == 1:
        for workload, config_name, scale, gpu_config in todo:
            runner.run(workload, config_name, scale, gpu_config,
                       shard_plan=plan, sampling_plan=splan)
        return len(todo)
    with ProcessPoolExecutor(max_workers=min(jobs, len(todo))) as pool:
        for point, result in pool.map(
                _prewarm_worker, [(p, plan, splan) for p in todo]):
            runner.seed_cache(point[0], point[1], point[2], point[3],
                              result, plan, splan)
    return len(todo)


def parallel_map(fn: Callable[[Any], Any], items: Iterable[Any], jobs: int) -> list:
    """Order-preserving map over a process pool (in-process for jobs<=1).

    ``fn`` must be a module-level callable and every item picklable; the
    ablation sweeps use this to evaluate their non-memoisable APRES
    variants concurrently.
    """
    items = list(items)
    if jobs <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with ProcessPoolExecutor(max_workers=min(jobs, len(items))) as pool:
        return list(pool.map(fn, items))


# ----------------------------------------------------------------------
# Figure / scorecard point enumeration
# ----------------------------------------------------------------------

#: Named configurations each figure's producer resolves through run().
#: "base" is listed wherever the figure normalises against the baseline.
_FIGURE_CONFIGS: dict[str, tuple[str, ...]] = {
    "figure3": ("pa+str", "pa+sld", "gto+str", "gto+sld", "mascar+str",
                "mascar+sld", "ccws+str", "ccws+sld", "base"),
    "figure4": ("pa+str", "gto+str", "mascar+str", "ccws+str"),
    "figure10": ("ccws", "laws", "ccws+str", "laws+str", "apres", "base"),
    "figure11": ("base", "ccws", "laws", "ccws+str", "apres"),
    "figure12": ("ccws+str", "apres"),
    "figure13": ("ccws+str", "apres", "base"),
    "figure14": ("ccws+str", "apres", "base"),
    "figure15": ("apres", "base"),
}


def figure_points(
    name: str,
    apps: Optional[Sequence[str]] = None,
    scale: float = 1.0,
) -> list[RunPoint]:
    """Every memoisable (workload, config, scale, gpu_config) a figure needs.

    Prewarming these in a pool makes the figure's own (serial) producer a
    pure cache walk. Figures that simulate outside the runner cache —
    table1 attaches per-run load observers — return an empty list and
    simply run serially.
    """
    from repro.experiments.configs import experiment_gpu_config
    from repro.experiments.figures import ALL_APPS

    app_list = list(apps) if apps else list(ALL_APPS)
    cfg = experiment_gpu_config()
    if name == "figure2":
        large = cfg.with_l1_size(32 * 1024 * 1024)
        return [(app, "base", scale, c) for app in app_list for c in (cfg, large)]
    configs = _FIGURE_CONFIGS.get(name)
    if configs is None:
        return []
    return [(app, config, scale, cfg)
            for config in dict.fromkeys(configs) for app in app_list]


def scorecard_points(
    figures: Sequence[str],
    apps: Optional[Sequence[str]] = None,
    scale: float = 1.0,
) -> list[RunPoint]:
    """Union of every figure's prewarm points, deduplicated in order."""
    out: list[RunPoint] = []
    seen: set[tuple] = set()
    for name in figures:
        for point in figure_points(name, apps, scale):
            key = (point[0], point[1], point[2], point[3])
            if key not in seen:
                seen.add(key)
                out.append(point)
    return out
