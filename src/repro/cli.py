"""Command-line interface: ``python -m repro <command>``.

Commands::

    list                                 workloads and configurations
    run APP CONFIG [--scale S]           simulate one point, print metrics
    compare APP [CONFIG ...]             speedups over baseline for one app
    characterize APP [--scale S]         Table I rows for one workload
    table {1,2} [--scale S]              regenerate a paper table
    figure {2,3,4,10,11,12,13,14,15}     regenerate a paper figure's data
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.experiments import figures
from repro.experiments.configs import CONFIGS
from repro.experiments.report import format_table
from repro.experiments.runner import run
from repro.workloads.suite import SUITE


def _cmd_list(args: argparse.Namespace) -> int:
    rows = [
        [w.abbr, w.name, w.suite, w.category.value, len(w.loads), w.iterations]
        for w in SUITE.values()
    ]
    print(format_table(
        ["Abbr", "Name", "Suite", "Category", "Loads", "Iters"], rows,
        title="Workloads (Table IV)",
    ))
    print()
    print("Configurations: " + ", ".join(sorted(CONFIGS)))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    result = run(args.app, args.config, scale=args.scale)
    s = result.sim.stats
    rows = [
        ["cycles", s.cycles],
        ["IPC", f"{s.ipc:.3f}"],
        ["L1 accesses", s.l1.accesses],
        ["L1 miss rate", f"{s.l1.miss_rate:.3f}"],
        ["cold miss ratio", f"{s.l1.cold_miss_ratio:.3f}"],
        ["capacity+conflict ratio", f"{s.l1.capacity_conflict_ratio:.3f}"],
        ["hit-after-hit ratio", f"{s.l1.hit_after_hit_ratio:.3f}"],
        ["avg memory latency", f"{s.memory.avg_demand_latency:.1f}"],
        ["traffic (bytes)", s.memory.total_traffic_bytes],
        ["prefetches issued", s.l1.prefetch_issued],
        ["prefetch early-eviction ratio", f"{s.l1.early_eviction_ratio:.3f}"],
        ["dynamic energy (pJ)", f"{result.energy.total:.0f}"],
    ]
    print(format_table(["Metric", "Value"], rows,
                       title=f"{args.app} under {args.config} (scale={args.scale})"))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    configs = args.configs or ["ccws", "laws", "ccws+str", "laws+str", "apres"]
    base = run(args.app, "base", scale=args.scale)
    rows = []
    for config in configs:
        r = run(args.app, config, scale=args.scale)
        rows.append([
            config, f"{base.cycles / r.cycles:.3f}",
            f"{r.sim.stats.l1.miss_rate:.3f}",
            r.sim.stats.l1.prefetch_issued,
        ])
    print(format_table(["Config", "Speedup", "L1 miss", "Prefetches"], rows,
                       title=f"{args.app}: speedup over baseline"))
    return 0


def _cmd_characterize(args: argparse.Namespace) -> int:
    data = figures.table1(apps=[args.app], scale=args.scale)
    rows = []
    for r in data[args.app]:
        stride = "-" if r.top_stride is None else r.top_stride
        rows.append([f"0x{r.pc:X}", f"{r.pct_load:.1%}", f"{r.lines_per_ref:.2f}",
                     f"{r.miss_rate:.2f}", stride, f"{r.pct_stride:.1%}"])
    print(format_table(["PC", "%Load", "#L/#R", "MissRate", "Stride", "%Stride"],
                       rows, title=f"{args.app}: per-load characterisation"))
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    if args.number == 1:
        return _cmd_characterize_all(args)
    cost = figures.table2()
    rows = [
        ["LAWS: LLT", cost.llt_bytes],
        ["LAWS: WGT", cost.wgt_bytes],
        ["SAP: DRQ", cost.drq_bytes],
        ["SAP: WQ", cost.wq_bytes],
        ["SAP: PT", cost.pt_bytes],
        ["Total", cost.total_bytes],
    ]
    print(format_table(["Structure", "Bytes"], rows, title="Table II"))
    return 0


def _cmd_characterize_all(args: argparse.Namespace) -> int:
    data = figures.table1(scale=args.scale)
    rows = []
    for app, load_rows in data.items():
        for r in load_rows:
            stride = "-" if r.top_stride is None else r.top_stride
            rows.append([app, f"0x{r.pc:X}", f"{r.pct_load:.1%}",
                         f"{r.lines_per_ref:.2f}", f"{r.miss_rate:.2f}",
                         stride, f"{r.pct_stride:.1%}"])
    print(format_table(
        ["App", "PC", "%Load", "#L/#R", "MissRate", "Stride", "%Stride"],
        rows, title="Table I"))
    return 0


_FIGURES = {
    2: lambda scale, apps: _print_figure2(scale, apps),
    3: lambda scale, apps: _print_grid(figures.figure3(apps, scale), "Figure 3"),
    4: lambda scale, apps: _print_grid(figures.figure4(apps, scale), "Figure 4"),
    10: lambda scale, apps: _print_grid(figures.figure10(apps, scale), "Figure 10"),
    11: lambda scale, apps: _print_figure11(scale, apps),
    12: lambda scale, apps: _print_grid(figures.figure12(apps, scale), "Figure 12"),
    13: lambda scale, apps: _print_grid(figures.figure13(apps, scale), "Figure 13"),
    14: lambda scale, apps: _print_grid(figures.figure14(apps, scale), "Figure 14"),
    15: lambda scale, apps: _print_grid(figures.figure15(apps, scale), "Figure 15"),
}


def _print_grid(data: dict, title: str) -> None:
    apps = list(next(iter(data.values())))
    rows = [[config] + [f"{data[config][a]:.3f}" for a in apps] for config in data]
    print(format_table(["Config"] + apps, rows, title=title))


def _print_figure2(scale: float, apps: Optional[Sequence[str]]) -> None:
    data = figures.figure2(apps, scale)
    rows = []
    for app, variants in data.items():
        for label in ("B", "C"):
            r = variants[label]
            rows.append([app, label, f"{r.cold_ratio:.2f}",
                         f"{r.capacity_conflict_ratio:.2f}", f"{r.speedup:.2f}"])
    print(format_table(["App", "L1", "Cold", "Cap+Conf", "Speedup"], rows,
                       title="Figure 2"))


def _print_figure11(scale: float, apps: Optional[Sequence[str]]) -> None:
    data = figures.figure11(apps, scale)
    rows = []
    for app, per_config in data.items():
        for label, r in per_config.items():
            rows.append([app, label, f"{r.hit_after_hit:.2f}", f"{r.hit_after_miss:.2f}",
                         f"{r.cold:.2f}", f"{r.capacity_conflict:.2f}"])
    print(format_table(
        ["App", "Cfg", "HaH", "HaM", "Cold", "Cap+Conf"], rows, title="Figure 11"))


def _cmd_figure(args: argparse.Namespace) -> int:
    apps = args.apps or None
    _FIGURES[args.number](args.scale, apps)
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.experiments.validate import check_claims, format_report

    results = check_claims(scale=args.scale, apps=args.apps or None)
    print(format_report(results))
    return 0 if all(r.passed for r in results) else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="APRES (ISCA 2016) reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads and configurations")

    p_run = sub.add_parser("run", help="simulate one workload/configuration")
    p_run.add_argument("app", choices=sorted(SUITE))
    p_run.add_argument("config", choices=sorted(CONFIGS))
    p_run.add_argument("--scale", type=float, default=0.5)

    p_cmp = sub.add_parser("compare", help="speedups over baseline for one app")
    p_cmp.add_argument("app", choices=sorted(SUITE))
    p_cmp.add_argument("configs", nargs="*", metavar="CONFIG")
    p_cmp.add_argument("--scale", type=float, default=0.5)

    p_char = sub.add_parser("characterize", help="Table I rows for one workload")
    p_char.add_argument("app", choices=sorted(SUITE))
    p_char.add_argument("--scale", type=float, default=0.5)

    p_table = sub.add_parser("table", help="regenerate a paper table")
    p_table.add_argument("number", type=int, choices=(1, 2))
    p_table.add_argument("--scale", type=float, default=0.5)

    p_fig = sub.add_parser("figure", help="regenerate a paper figure's data")
    p_fig.add_argument("number", type=int, choices=sorted(_FIGURES))
    p_fig.add_argument("--scale", type=float, default=0.5)
    p_fig.add_argument("--apps", nargs="*", metavar="APP")

    p_val = sub.add_parser("validate", help="check the reproduction's shape claims")
    p_val.add_argument("--scale", type=float, default=0.5)
    p_val.add_argument("--apps", nargs="*", metavar="APP")
    return parser


_COMMANDS = {
    "list": _cmd_list,
    "run": _cmd_run,
    "compare": _cmd_compare,
    "characterize": _cmd_characterize,
    "table": _cmd_table,
    "figure": _cmd_figure,
    "validate": _cmd_validate,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
