"""Command-line interface: ``python -m repro <command>``.

Commands::

    list                                 workloads and configurations
    run APP CONFIG [--scale S]           simulate one point, print metrics
    trace APP CONFIG [--out DIR]         run with full telemetry: Chrome
                                         trace, interval JSONL, stall report
    compare APP [CONFIG ...]             speedups over baseline for one app
    characterize APP [--scale S]         Table I rows for one workload
    table {1,2} [--scale S]              regenerate a paper table
    figure {2,3,4,10,11,12,13,14,15}     regenerate a paper figure's data
    validate [--scale S]                 check the reproduction's shape claims
    sweep --out R.jsonl [...]            crash-safe multi-point sweep
    bench [--scale S]                    simulator speed microbenchmark
                                         (cycles/second -> BENCH_sim_speed.json)
    lint [PATH ...]                      simulator-aware static analysis
    scorecard [--json] [--out F]         paper-fidelity scorecard (MAPE,
                                         geomean delta, Spearman rank corr.)
    diff REF [REF2] [--rtol R]           tolerance-checked metric diff;
                                         exits 1 on drift (the CI gate)
    report [--html F]                    self-contained HTML results report
    chaos --faults K,K [...]             sweep under injected faults; assert
                                         output byte-identical to clean run
    fsck [--repair]                      audit (and heal) the run registry

``run`` takes ``--telemetry`` (stall attribution + heartbeat),
``--trace-out FILE`` (Chrome trace-event JSON; open in chrome://tracing
or https://ui.perfetto.dev) and ``--intervals-out FILE`` (windowed
metrics as JSONL); ``sweep`` takes ``--telemetry``/``--trace-dir`` to
add a per-point stall breakdown (and optional traces) to its records.

``run`` and ``sweep`` accept ``--cycle-budget N`` (hard simulated-cycle
limit) and ``--watchdog N`` (abort after N cycles without progress, with a
diagnostic dump). ``sweep``, ``figure``, ``table`` and ``scorecard``
accept ``--jobs N`` (or ``$REPRO_JOBS``; ``0`` = one worker per CPU) to
fan independent simulation points over a process pool — results are
bit-identical to a serial run because each point is deterministic and all
persistence stays in the parent process. ``sweep --no-cache`` forces
re-simulation of points whose records the registry already holds
(otherwise they are replayed verbatim — run memoization). A sweep
persists each finished point to its JSONL store immediately, so an
interrupted sweep resumes where it left off::

    python -m repro sweep --apps KM BFS --configs base apres \\
        --out results.jsonl
    # ... SIGKILL mid-way ...
    python -m repro sweep --apps KM BFS --configs base apres \\
        --out results.jsonl --resume-from results.jsonl   # only the rest

Resume skips quarantined failure records (deterministic errors,
exhausted retries, supervisor quarantines) instead of re-running them;
``sweep --retry-failed`` forces a re-attempt. ``sweep --worker-deadline
SEC`` / ``--max-attempts N`` enable the hardened supervised pool: hung
workers are killed after SEC silent seconds and their points requeued
with capped jittered backoff, poisoned points are quarantined after N
dispatches, and the pool degrades to serial if workers keep dying.

``run``, ``figure`` and ``sweep`` accept ``--shards N`` to split the
simulated GPU's SMs over N epoch-barrier shard workers inside each run
(``--epoch-cycles E`` sets the barrier interval, ``--shard-backend``
picks in-process or OS-process workers). ``E=1`` is lock-step and
bit-identical to serial — same metrics, same registry run ids; larger
``E`` (default 64) trades bounded fill-latency drift for speed and is
recorded under its own engine tag so drifted statistics never mix with
the serial lineage. Shards compose with ``--jobs`` only in-process:
``--jobs`` owns the process budget, so ``--shard-backend process`` with
a pool is refused. ``--telemetry``/``--trace-out``/``--intervals-out``
(and sweep's ``--trace-dir``) work under shards: each lane records into
per-lane buffers and the parent merges them at every epoch barrier, so
lock-step (``E=1``) telemetry artifacts are byte-identical to serial
(see :mod:`repro.shard.telemetry`).

``run``, ``sweep`` and ``figure`` accept ``--metrics-out FILE`` to dump
the process-wide operational metrics registry (counters, gauges,
histograms — see :mod:`repro.telemetry.metrics`) as JSON, plus a
Prometheus textfile next to it (``FILE.prom``).

``run``, ``sweep``, ``figure``, ``table`` and ``scorecard`` ingest their
results into the registry (``bench_results/registry`` by default,
``REPRO_REGISTRY_DIR`` to relocate, ``--no-registry`` to skip), which is
what ``repro diff <run-id>`` and ``repro report`` read back.

``chaos`` runs a small sweep twice — clean/serial and ``--jobs N`` under
a seeded fault plan (``--faults crash,hang,torn-write,disk-full,
fsync-fail,corrupt-record``) — heals the damage (supervised pool, atomic
appends, ``fsck --repair``) and exits 0 only when the final sweep store
and registry are byte-identical to the clean run. ``fsck`` audits the
registry for torn lines, hash mismatches, duplicates and index drift;
``--repair`` quarantines bad lines (``<registry>/quarantine/``),
restores restorable records from a sweep store (``--restore-from``) and
rebuilds the index.

Exit codes: 0 success, 1 failed validation, failed sweep points, lint
findings, fsck/chaos findings, or a diff outside tolerance, 2 a
:class:`~repro.errors.ReproError` aborted the command.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from repro.errors import ReproError
from repro.experiments import figures
from repro.experiments.configs import CONFIGS, experiment_gpu_config
from repro.experiments.report import format_table
from repro.experiments.runner import run
from repro.resilience.atomic import atomic_write
from repro.workloads.suite import SUITE

#: Exit code when a ReproError aborts the command.
EXIT_REPRO_ERROR = 2


def _cmd_list(args: argparse.Namespace) -> int:
    rows = [
        [w.abbr, w.name, w.suite, w.category.value, len(w.loads), w.iterations]
        for w in SUITE.values()
    ]
    print(format_table(
        ["Abbr", "Name", "Suite", "Category", "Loads", "Iters"], rows,
        title="Workloads (Table IV)",
    ))
    print()
    print("Configurations: " + ", ".join(sorted(CONFIGS)))
    return 0


def _limited_gpu_config(args: argparse.Namespace):
    """Fold --cycle-budget / --watchdog flags into the experiment config."""
    dump_dir = getattr(args, "dump_dir", None)
    if dump_dir:
        # The watchdog is constructed deep inside the simulator; the env
        # var is how its default dump directory is threaded through.
        os.environ["REPRO_DUMP_DIR"] = dump_dir
    return experiment_gpu_config().with_limits(
        max_cycles=getattr(args, "cycle_budget", None),
        watchdog_cycles=getattr(args, "watchdog", None),
        integrity_interval=getattr(args, "integrity_every", None),
    )


def _telemetry_wanted(args: argparse.Namespace) -> bool:
    return bool(
        getattr(args, "telemetry", False)
        or getattr(args, "trace_out", None)
        or getattr(args, "intervals_out", None)
    )


def _build_run_hub(args: argparse.Namespace):
    """TelemetryHub for ``run``/``trace`` flags; None when telemetry is off."""
    if not _telemetry_wanted(args):
        return None
    from repro.telemetry import HeartbeatSink, IntervalJSONLWriter, TelemetryHub

    hub = TelemetryHub(
        window=getattr(args, "window", None) or 5_000,
        trace=bool(getattr(args, "trace_out", None)),
    )
    trace_out = getattr(args, "trace_out", None)
    if trace_out and os.path.dirname(trace_out):
        os.makedirs(os.path.dirname(trace_out), exist_ok=True)
    intervals_out = getattr(args, "intervals_out", None)
    if intervals_out:
        if os.path.dirname(intervals_out):
            os.makedirs(os.path.dirname(intervals_out), exist_ok=True)
        if os.path.exists(intervals_out):
            os.remove(intervals_out)  # the writer appends (resume-safe)
        hub.add_interval_sink(IntervalJSONLWriter(intervals_out))
    if not getattr(args, "no_heartbeat", False):
        hub.add_interval_sink(
            HeartbeatSink(cycle_budget=getattr(args, "cycle_budget", None) or 0)
        )
    return hub


def _registry(args: argparse.Namespace):
    """The session registry store, or None under ``--no-registry``."""
    if getattr(args, "no_registry", False):
        return None
    from repro.registry.store import RegistryStore

    return RegistryStore()


def _resolved_jobs(args: argparse.Namespace) -> int:
    """--jobs folded with $REPRO_JOBS; exits via ReproError on bad input."""
    from repro.experiments.parallel import resolve_jobs

    try:
        return resolve_jobs(getattr(args, "jobs", None))
    except ValueError as exc:
        raise ReproError(str(exc)) from exc


def _prewarm_points(points, jobs: int) -> None:
    """Fill the runner cache from a pool so serial producers just walk it."""
    if jobs <= 1 or not points:
        return
    from repro.experiments.parallel import prewarm

    prewarm(points, jobs)


def _ingest_figure(args: argparse.Namespace, name: str, payload: object,
                   scale: float, apps: Optional[Sequence[str]] = None) -> None:
    """Ingest one regenerated figure/table payload into the registry."""
    registry = _registry(args)
    if registry is None:
        return
    from repro.registry.records import figure_record

    record = registry.put(figure_record(name, payload, scale, apps))
    print(f"registry: {record.run_id} ({name}) -> {registry.root}")


def _stall_rows(report: dict) -> list:
    total = report["stall_cycles"] or 1
    rows = [
        [cause, cycles, f"{100.0 * cycles / total:.1f}%"]
        for cause, cycles in report["by_cause"].items()
        if cycles
    ]
    rows.append(["(all stalls)", report["stall_cycles"], "100.0%"])
    rows.append(["(issue cycles)", report["issue_cycles"], "-"])
    return rows


def _maybe_write_metrics(args: argparse.Namespace) -> None:
    """Export the operational metrics registry when ``--metrics-out`` asks.

    Written last, after the command's work, so the export reflects every
    counter the run touched (shard windows, cache hits, retries, ...).
    """
    out = getattr(args, "metrics_out", None)
    if not out:
        return
    from repro.telemetry.metrics import write_metrics

    if os.path.dirname(out):
        os.makedirs(os.path.dirname(out), exist_ok=True)
    prom_path = write_metrics(out)
    print(f"metrics: {out} (+ {prom_path})")


def _resolve_shard_plan(args: argparse.Namespace, jobs: int = 1):
    """The ShardPlan the ``--shards`` flags describe, or None (serial)."""
    from repro.shard import resolve_plan

    return resolve_plan(
        getattr(args, "shards", None),
        epoch_cycles=getattr(args, "epoch_cycles", None),
        backend=getattr(args, "shard_backend", None),
        jobs=jobs,
    )


def _resolve_sampling_plan(args: argparse.Namespace):
    """The SamplingPlan the ``--sampled`` flags describe, or None (full)."""
    from repro.errors import SamplingConfigError
    from repro.sampling import SamplingPlan

    extras = {
        "--sample-intervals": getattr(args, "sample_intervals", None),
        "--sample-warmup": getattr(args, "sample_warmup", None),
        "--sample-clusters": getattr(args, "sample_clusters", None),
    }
    if not getattr(args, "sampled", False):
        given = [name for name, value in extras.items() if value is not None]
        if given:
            raise SamplingConfigError(
                f"{', '.join(given)} require --sampled",
                details={"flags": given},
            )
        return None
    kwargs = {}
    if extras["--sample-intervals"] is not None:
        kwargs["interval_cycles"] = extras["--sample-intervals"]
    if extras["--sample-warmup"] is not None:
        kwargs["warmup_cycles"] = extras["--sample-warmup"]
    if extras["--sample-clusters"] is not None:
        kwargs["clusters"] = extras["--sample-clusters"]
    return SamplingPlan(**kwargs)


def _print_sampling_info(info: Optional[dict]) -> None:
    if not info:
        return
    bar = info["error_bars_rel"]["ipc"] * 100
    source = "cached" if info["profile"]["cached"] else "built"
    print(f"sampled estimator: {info['clusters']} representatives over "
          f"{info['profile']['intervals']} intervals "
          f"(W={info['plan']['interval_cycles']}), detailed "
          f"{info['detailed_cycles']:,}/{info['total_cycles']:,} cycles "
          f"({info['cycle_reduction']:.1f}x reduction), "
          f"IPC {info['estimates']['ipc']:.3f} +/- {bar:.1f}% "
          f"(profile {source})")


def _print_shard_info(info: Optional[dict]) -> None:
    if not info:
        return
    mode = "lock-step (bit-exact)" if info["bit_exact"] else "relaxed"
    line = (f"shard engine: {info['shards']} shards x "
            f"E={info['epoch_cycles']} {mode}, "
            f"{info['windows_run']} windows")
    if not info["bit_exact"]:
        line += (f", {info['clamped_fills']} clamped fills "
                 f"(max clamp {info['max_clamp_cycles']} cycles)")
    if info.get("degraded"):
        line += " [degraded to serial]"
    elif info.get("attempts", 1) > 1:
        line += f" [{info['attempts']} attempts]"
    print(line)


def _cmd_run(args: argparse.Namespace) -> int:
    import time

    hub = _build_run_hub(args)
    plan = _resolve_shard_plan(args)
    sampling = _resolve_sampling_plan(args)
    gpu_config = _limited_gpu_config(args)
    started = time.perf_counter()
    result = run(args.app, args.config, scale=args.scale,
                 gpu_config=gpu_config, telemetry=hub, shard_plan=plan,
                 sampling_plan=sampling)
    wall_time_s = time.perf_counter() - started
    s = result.sim.stats
    rows = [
        ["cycles", s.cycles],
        ["IPC", f"{s.ipc:.3f}"],
        ["L1 accesses", s.l1.accesses],
        ["L1 miss rate", f"{s.l1.miss_rate:.3f}"],
        ["cold miss ratio", f"{s.l1.cold_miss_ratio:.3f}"],
        ["capacity+conflict ratio", f"{s.l1.capacity_conflict_ratio:.3f}"],
        ["hit-after-hit ratio", f"{s.l1.hit_after_hit_ratio:.3f}"],
        ["avg memory latency", f"{s.memory.avg_demand_latency:.1f}"],
        ["traffic (bytes)", s.memory.total_traffic_bytes],
        ["prefetches issued", s.l1.prefetch_issued],
        ["prefetch early-eviction ratio", f"{s.l1.early_eviction_ratio:.3f}"],
        ["dynamic energy (pJ)", f"{result.energy.total:.0f}"],
    ]
    title = f"{args.app} under {args.config} (scale={args.scale})"
    if result.sampling_info is not None:
        title += " [sampled estimate]"
    print(format_table(["Metric", "Value"], rows, title=title))
    _print_shard_info(result.shard_info)
    _print_sampling_info(result.sampling_info)
    if hub is not None:
        report = hub.reconcile(s)
        print()
        print(format_table(["Stall cause", "Cycles", "Share"],
                           _stall_rows(report), title="Stall attribution"))
        if getattr(args, "trace_out", None):
            hub.trace.write(args.trace_out)
            print(f"chrome trace: {args.trace_out} "
                  "(open in chrome://tracing or https://ui.perfetto.dev)")
        if getattr(args, "intervals_out", None):
            print(f"interval metrics: {args.intervals_out}")
    registry = _registry(args)
    if registry is not None:
        from repro.registry.records import run_record

        stalls = hub.stall_summary(s) if hub is not None else None
        record = registry.put(run_record(
            result, args.scale, gpu_config,
            stalls=stalls, wall_time_s=wall_time_s,
            engine_tag=plan.identity_tag if plan is not None else None,
        ))
        print(f"registry: {record.run_id} -> {registry.root}")
    _maybe_write_metrics(args)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import json

    from repro.telemetry import (
        HeartbeatSink,
        IntervalJSONLWriter,
        PhaseTimer,
        RunProfiler,
        TelemetryHub,
    )

    out_dir = args.out or os.path.join("traces", f"{args.app}_{args.config}")
    os.makedirs(out_dir, exist_ok=True)
    intervals_path = os.path.join(out_dir, "intervals.jsonl")
    if os.path.exists(intervals_path):
        os.remove(intervals_path)  # the writer appends (resume-safe)

    hub = TelemetryHub(window=args.window, trace=True)
    hub.add_interval_sink(IntervalJSONLWriter(intervals_path))
    if not args.no_heartbeat:
        hub.add_interval_sink(HeartbeatSink(cycle_budget=args.cycle_budget or 0))

    timer = PhaseTimer()
    profiler = RunProfiler() if args.profile else None
    gpu_config = _limited_gpu_config(args)
    with timer.phase("simulate"):
        if profiler is not None:
            result = profiler.run(
                run, args.app, args.config, scale=args.scale,
                gpu_config=gpu_config, telemetry=hub,
            )
        else:
            result = run(args.app, args.config, scale=args.scale,
                         gpu_config=gpu_config, telemetry=hub)

    stats = result.sim.stats
    with timer.phase("export"):
        report = hub.reconcile(stats)  # raises if attribution drifted
        trace_path = os.path.join(out_dir, "trace.json")
        hub.trace.write(trace_path)
        stalls_path = os.path.join(out_dir, "stalls.json")
        atomic_write(stalls_path,
                     json.dumps(report, indent=2, sort_keys=True) + "\n")

    print(format_table(
        ["Stall cause", "Cycles", "Share"], _stall_rows(report),
        title=f"{args.app} under {args.config}: stall attribution "
              f"(cycles={stats.cycles}, IPC={stats.ipc:.3f})"))
    print()
    print(f"reconciliation: issue+stall == {stats.cycles} cycles x "
          f"{report['reconciliation']['num_sms']} SMs (exact)")
    print(f"events captured: {hub.events_emitted}")
    print(f"chrome trace:     {trace_path} "
          "(open in chrome://tracing or https://ui.perfetto.dev)")
    print(f"interval metrics: {intervals_path}")
    print(f"stall report:     {stalls_path}")
    if profiler is not None:
        profile_path = os.path.join(out_dir, "host_profile.pstats")
        profiler.dump(profile_path)
        print(f"host profile:     {profile_path}")
        print()
        print(profiler.format_report(limit=args.profile_limit))
    print()
    print(timer.format_report())
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    configs = args.configs or ["ccws", "laws", "ccws+str", "laws+str", "apres"]
    base = run(args.app, "base", scale=args.scale)
    rows = []
    for config in configs:
        r = run(args.app, config, scale=args.scale)
        rows.append([
            config, f"{base.cycles / r.cycles:.3f}",
            f"{r.sim.stats.l1.miss_rate:.3f}",
            r.sim.stats.l1.prefetch_issued,
        ])
    print(format_table(["Config", "Speedup", "L1 miss", "Prefetches"], rows,
                       title=f"{args.app}: speedup over baseline"))
    return 0


def _cmd_characterize(args: argparse.Namespace) -> int:
    data = figures.table1(apps=[args.app], scale=args.scale)
    rows = []
    for r in data[args.app]:
        stride = "-" if r.top_stride is None else r.top_stride
        rows.append([f"0x{r.pc:X}", f"{r.pct_load:.1%}", f"{r.lines_per_ref:.2f}",
                     f"{r.miss_rate:.2f}", stride, f"{r.pct_stride:.1%}"])
    print(format_table(["PC", "%Load", "#L/#R", "MissRate", "Stride", "%Stride"],
                       rows, title=f"{args.app}: per-load characterisation"))
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    if args.number == 1:
        return _cmd_characterize_all(args)
    cost = figures.table2()
    rows = [
        ["LAWS: LLT", cost.llt_bytes],
        ["LAWS: WGT", cost.wgt_bytes],
        ["SAP: DRQ", cost.drq_bytes],
        ["SAP: WQ", cost.wq_bytes],
        ["SAP: PT", cost.pt_bytes],
        ["Total", cost.total_bytes],
    ]
    print(format_table(["Structure", "Bytes"], rows, title="Table II"))
    _ingest_figure(args, "table2", cost, args.scale)
    return 0


def _cmd_characterize_all(args: argparse.Namespace) -> int:
    data = figures.table1(scale=args.scale)
    rows = []
    for app, load_rows in data.items():
        for r in load_rows:
            stride = "-" if r.top_stride is None else r.top_stride
            rows.append([app, f"0x{r.pc:X}", f"{r.pct_load:.1%}",
                         f"{r.lines_per_ref:.2f}", f"{r.miss_rate:.2f}",
                         stride, f"{r.pct_stride:.1%}"])
    print(format_table(
        ["App", "PC", "%Load", "#L/#R", "MissRate", "Stride", "%Stride"],
        rows, title="Table I"))
    _ingest_figure(args, "table1", data, args.scale)
    return 0


def _print_grid(data: dict, title: str) -> None:
    apps = list(next(iter(data.values())))
    rows = [[config] + [f"{data[config][a]:.3f}" for a in apps] for config in data]
    print(format_table(["Config"] + apps, rows, title=title))


def _print_figure2(data: dict) -> None:
    rows = []
    for app, variants in data.items():
        for label in ("B", "C"):
            r = variants[label]
            rows.append([app, label, f"{r.cold_ratio:.2f}",
                         f"{r.capacity_conflict_ratio:.2f}", f"{r.speedup:.2f}"])
    print(format_table(["App", "L1", "Cold", "Cap+Conf", "Speedup"], rows,
                       title="Figure 2"))


def _print_figure11(data: dict) -> None:
    rows = []
    for app, per_config in data.items():
        for label, r in per_config.items():
            rows.append([app, label, f"{r.hit_after_hit:.2f}", f"{r.hit_after_miss:.2f}",
                         f"{r.cold:.2f}", f"{r.capacity_conflict:.2f}"])
    print(format_table(
        ["App", "Cfg", "HaH", "HaM", "Cold", "Cap+Conf"], rows, title="Figure 11"))


_FIGURE_PRINTERS = {
    2: _print_figure2,
    3: lambda data: _print_grid(data, "Figure 3"),
    4: lambda data: _print_grid(data, "Figure 4"),
    10: lambda data: _print_grid(data, "Figure 10"),
    11: _print_figure11,
    12: lambda data: _print_grid(data, "Figure 12"),
    13: lambda data: _print_grid(data, "Figure 13"),
    14: lambda data: _print_grid(data, "Figure 14"),
    15: lambda data: _print_grid(data, "Figure 15"),
}

#: Numbers accepted by ``repro figure`` (kept for parser choices).
_FIGURES = _FIGURE_PRINTERS


def _cmd_figure(args: argparse.Namespace) -> int:
    apps = args.apps or None
    name = f"figure{args.number}"
    from repro.experiments.parallel import figure_points
    from repro.experiments.runner import (
        set_default_sampling_plan,
        set_default_shard_plan,
    )

    jobs = _resolved_jobs(args)
    plan = _resolve_shard_plan(args, jobs=jobs)
    sampling = _resolve_sampling_plan(args)
    # The figure producers only ever call runner.run(); the process-wide
    # default plans route every one of their points through the shard or
    # sampled engine without threading a parameter into the producer API.
    set_default_shard_plan(plan)
    set_default_sampling_plan(sampling)
    try:
        _prewarm_points(figure_points(name, apps, args.scale), jobs)
        payload = getattr(figures, name)(apps, args.scale)
    finally:
        set_default_shard_plan(None)
        set_default_sampling_plan(None)
    _FIGURE_PRINTERS[args.number](payload)
    _ingest_figure(args, name, payload, args.scale, apps)
    _maybe_write_metrics(args)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.parallel import ProgressWriter
    from repro.experiments.sweep import run_sweep, sweep_points

    try:
        points = sweep_points(args.apps or None, args.configs or None,
                              scales=args.scales)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_REPRO_ERROR

    jobs = _resolved_jobs(args)
    plan = _resolve_shard_plan(args, jobs=jobs)
    # One writer for progress lines and (parallel) worker heartbeats, so
    # concurrent sources never interleave mid-line.
    writer = ProgressWriter()

    def show_progress(point, record) -> None:
        status = record["status"]
        extra = (f"ipc={record['ipc']:.3f}" if status == "ok"
                 else f"{record['error']}: {record['message']}")
        writer.line(f"[sweep] {point.key}: {status} ({extra})")

    supervisor = None
    if args.worker_deadline is not None or args.max_attempts is not None:
        from repro.resilience.supervisor import SupervisorConfig

        supervisor = SupervisorConfig(
            deadline_s=args.worker_deadline,
            max_attempts=args.max_attempts
            if args.max_attempts is not None else 3,
        )

    registry = _registry(args)
    summary = run_sweep(
        points,
        args.out,
        gpu_config=_limited_gpu_config(args),
        resume_from=args.resume_from,
        retries=args.retries,
        backoff_s=args.backoff,
        point_timeout_s=args.timeout,
        max_points=args.max_points,
        progress=show_progress,
        telemetry=args.telemetry or bool(args.trace_dir),
        trace_dir=args.trace_dir,
        telemetry_window=args.window,
        registry=registry,
        jobs=jobs,
        use_cache=not args.no_cache,
        heartbeat_writer=writer,
        retry_failed=args.retry_failed,
        supervisor=supervisor,
        shard_plan=plan,
        sampling_plan=_resolve_sampling_plan(args),
    )
    rows = [
        ["points", summary.total_points],
        ["simulated", summary.simulated],
        ["skipped (already done)", summary.skipped],
        ["failed", summary.failed],
        ["jobs", jobs],
        ["results store", summary.out_path],
    ]
    if registry is not None and not args.no_cache:
        rows.insert(4, ["cache hits (registry)", summary.cache_hits])
        rows.insert(5, ["cache misses", summary.cache_misses])
        if summary.cache_rejected:
            rows.insert(6, ["cache hits rejected (hash)",
                            summary.cache_rejected])
    if summary.quarantined_skipped:
        rows.insert(3, ["skipped (quarantined)", summary.quarantined_skipped])
    if registry is not None:
        rows.append(["registry", str(registry.root)])
    print(format_table(["Sweep", "Value"], rows, title="Sweep summary"))
    if summary.failed_keys:
        print("failed points: " + ", ".join(summary.failed_keys))
    if summary.quarantined_keys:
        print("quarantined points (resume skips; --retry-failed re-attempts): "
              + ", ".join(summary.quarantined_keys))
    _maybe_write_metrics(args)
    return 1 if summary.failed else 0


#: Conventional location of the committed CI baseline scorecard.
BASELINE_SCORECARD = os.path.join("bench_results", "baseline_scorecard.json")

#: Where ``repro bench`` writes its headline speed measurement.
BENCH_SIM_SPEED = os.path.join("bench_results", "BENCH_sim_speed.json")

#: Where ``repro bench --shards-axis`` writes the serial-vs-sharded
#: cycles/second comparison.
BENCH_SHARD_SPEED = os.path.join("bench_results", "BENCH_shard_speed.json")

#: Where ``repro bench --telemetry-axis`` writes the telemetry-overhead
#: measurement backing DESIGN.md's table.
BENCH_TELEMETRY_OVERHEAD = os.path.join(
    "bench_results", "BENCH_telemetry_overhead.json")

#: Where ``repro bench --sampled-axis`` writes the sampled-vs-full
#: accuracy and speedup measurement.
BENCH_SAMPLED_SPEED = os.path.join(
    "bench_results", "BENCH_sampled_speed.json")


def _cmd_bench_sampled(args: argparse.Namespace) -> int:
    import json

    from repro.experiments.bench import DEFAULT_FIGURE2_APPS, run_sampled_bench

    apps = tuple(args.apps) if args.apps else DEFAULT_FIGURE2_APPS
    # --sampled-axis implies sampling; the --sample-* knobs apply directly.
    args.sampled = True
    payload = run_sampled_bench(
        scale=args.scale, apps=apps, plan=_resolve_sampling_plan(args))

    out = args.out or BENCH_SAMPLED_SPEED
    directory = os.path.dirname(out)
    if directory:
        os.makedirs(directory, exist_ok=True)
    atomic_write(out, json.dumps(payload, indent=2, sort_keys=True) + "\n")

    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        rows = []
        for key, cell in payload["workloads"].items():
            rows.append([
                key,
                f"{cell['full']['ipc']:.3f}",
                f"{cell['sampled']['ipc']:.3f}",
                f"{cell['ipc_err_pct']:+.2f}%",
                f"+/-{cell['ipc_bar_pct']:.2f}%",
                f"{cell['cycle_reduction']:.1f}x",
                "yes" if cell["covered"] else "NO",
            ])
        totals = payload["totals"]
        print(format_table(
            ["Workload", "Full IPC", "Sampled IPC", "Err", "Bar",
             "Detail reduction", "Bar covers err"],
            rows,
            title=(f"Sampled vs full (scale={payload['scale']}, "
                   f"{payload['config']}, {payload['plan']['tag']})")))
        print(f"headline: worst IPC error {totals['max_ipc_err_pct']:.2f}%, "
              f"min detailed-cycle reduction "
              f"{totals['min_cycle_reduction']:.1f}x, overall "
              f"{totals['overall_cycle_reduction']:.1f}x, warm sampled "
              f"wall speedup {totals['sampled_speedup_warm']:.1f}x")
        print(f"bench json: {out}")
    registry = _registry(args)
    if registry is not None:
        from repro.registry.records import bench_record

        record = registry.put(bench_record(payload))
        if not args.json:
            print(f"registry: {record.run_id} -> {registry.root}")
    return 0


def _cmd_bench_telemetry(args: argparse.Namespace) -> int:
    import json

    from repro.experiments.bench import run_telemetry_bench

    kwargs = {"scale": args.scale}
    if args.repeats:
        kwargs["repeats"] = args.repeats
    payload = run_telemetry_bench(**kwargs)

    out = args.out or BENCH_TELEMETRY_OVERHEAD
    directory = os.path.dirname(out)
    if directory:
        os.makedirs(directory, exist_ok=True)
    atomic_write(out, json.dumps(payload, indent=2, sort_keys=True) + "\n")

    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        rows = []
        for mode, cells in payload["modes"].items():
            for label, cell in cells.items():
                rows.append([
                    mode, label, f"{cell['wall_s']:.3f}",
                    f"{cell['cycles_per_s']:,.0f}",
                    f"{cell['overhead_pct_vs_off']:+.1f}%",
                ])
        print(format_table(
            ["Telemetry", "Engine", "Wall s", "Cycles/s", "vs off"], rows,
            title=(f"Telemetry overhead ({payload['workload']}/"
                   f"{payload['config']}, scale={payload['scale']}, "
                   f"median of {payload['repeats']})")))
        head = payload["headline"]
        print(f"headline: stalls {head['stalls_overhead_pct']:+.1f}%, "
              f"trace {head['trace_overhead_pct']:+.1f}%, "
              f"stalls-under-shards {head['shard_stalls_overhead_pct']:+.1f}% "
              "(each vs the same engine with telemetry off)")
        print(f"bench json: {out}")
    registry = _registry(args)
    if registry is not None:
        from repro.registry.records import bench_record

        record = registry.put(bench_record(payload))
        if not args.json:
            print(f"registry: {record.run_id} -> {registry.root}")
    return 0


def _cmd_bench_shards(args: argparse.Namespace) -> int:
    import json

    from repro.experiments.bench import (
        DEFAULT_FIGURE2_APPS,
        SHARD_BENCH_COUNTS,
        run_shard_bench,
    )

    apps = tuple(args.apps) if args.apps else DEFAULT_FIGURE2_APPS
    payload = run_shard_bench(
        scale=args.scale, apps=apps,
        epoch_cycles=args.epoch_cycles,
        shard_counts=tuple(args.shards) if args.shards else SHARD_BENCH_COUNTS,
    )

    out = args.out or BENCH_SHARD_SPEED
    directory = os.path.dirname(out)
    if directory:
        os.makedirs(directory, exist_ok=True)
    atomic_write(out, json.dumps(payload, indent=2, sort_keys=True) + "\n")

    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        rows = []
        for label, eng in payload["engines"].items():
            for p in eng["points"]:
                rows.append([
                    label, p["workload"], p["cycles"], f"{p['wall_s']:.2f}",
                    f"{p['cycles_per_s']:,.0f}",
                    (f"{p['ipc_drift_pct']:+.3f}%"
                     if "ipc_drift_pct" in p else "-"),
                ])
            totals = eng["totals"]
            speedup = totals.get("speedup_vs_serial")
            rows.append([
                label, "(total)", totals["cycles"],
                f"{totals['wall_s']:.2f}", f"{totals['cycles_per_s']:,.0f}",
                f"{speedup:.2f}x vs serial" if speedup else "-",
            ])
        print(format_table(
            ["Engine", "App", "Cycles", "Wall s", "Cycles/s", "IPC drift"],
            rows,
            title=(f"Shard engine speed (scale={payload['scale']}, "
                   f"{payload['num_sms']} SMs, {payload['config']}, "
                   f"E={payload['epoch_cycles']}, "
                   f"median of {payload['repeats']})")))
        head = payload["headline"]
        print(f"headline: {head['engine']} at "
              f"{head['speedup_vs_serial']:.2f}x serial cycles/s")
        print(f"bench json: {out}")
    registry = _registry(args)
    if registry is not None:
        from repro.registry.records import bench_record

        record = registry.put(bench_record(payload))
        if not args.json:
            print(f"registry: {record.run_id} -> {registry.root}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import json

    from repro.experiments.bench import (
        DEFAULT_FIGURE2_APPS,
        DEFAULT_POINTS,
        run_bench,
    )

    axes = [name for name, on in [("--shards-axis", args.shards_axis),
                                  ("--telemetry-axis", args.telemetry_axis),
                                  ("--sampled-axis", args.sampled_axis)] if on]
    if len(axes) > 1:
        raise ReproError(f"{' and '.join(axes)} are separate bench modes; "
                         "pick one")
    if args.shards_axis:
        return _cmd_bench_shards(args)
    if args.telemetry_axis:
        return _cmd_bench_telemetry(args)
    if args.sampled_axis:
        return _cmd_bench_sampled(args)
    if args.shards or args.epoch_cycles:
        raise ReproError("--shards/--epoch-cycles only apply to "
                         "bench --shards-axis")
    if args.repeats:
        raise ReproError("--repeats only applies to bench --telemetry-axis")
    if (args.sampled or args.sample_intervals is not None
            or args.sample_warmup is not None
            or args.sample_clusters is not None):
        raise ReproError("--sampled/--sample-* only apply to "
                         "bench --sampled-axis")
    points = DEFAULT_POINTS
    if args.apps:
        points = tuple((app, config) for app, config in DEFAULT_POINTS
                       if app in args.apps)
        if not points:
            points = tuple((app, "base") for app in args.apps)
    figure2_apps = None if args.no_figure2 else (
        tuple(args.apps) if args.apps else DEFAULT_FIGURE2_APPS)
    payload = run_bench(scale=args.scale, points=points,
                        figure2_apps=figure2_apps)

    out = args.out or BENCH_SIM_SPEED
    directory = os.path.dirname(out)
    if directory:
        os.makedirs(directory, exist_ok=True)
    atomic_write(out, json.dumps(payload, indent=2, sort_keys=True) + "\n")

    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        rows = [
            [p["workload"], p["config"], p["cycles"], f"{p['wall_s']:.2f}",
             f"{p['cycles_per_s']:,.0f}"]
            for p in payload["points"]
        ]
        totals = payload["totals"]
        rows.append(["(total)", "-", totals["cycles"],
                     f"{totals['wall_s']:.2f}",
                     f"{totals['cycles_per_s']:,.0f}"])
        print(format_table(
            ["App", "Config", "Cycles", "Wall s", "Cycles/s"], rows,
            title=f"Simulation speed (scale={args.scale}, cold cache)"))
        fig2 = payload.get("figure2")
        if fig2:
            print(f"figure2 end-to-end: {fig2['wall_s']:.2f}s "
                  f"({fig2['num_points']} points, apps: "
                  f"{', '.join(fig2['apps'])})")
        print(f"bench json: {out}")
    registry = _registry(args)
    if registry is not None:
        from repro.registry.records import bench_record

        record = registry.put(bench_record(payload))
        if not args.json:
            print(f"registry: {record.run_id} -> {registry.root}")
    return 0


def _cmd_scorecard(args: argparse.Namespace) -> int:
    import json

    from repro.registry.scorecard import (
        DEFAULT_SCORECARD_FIGURES,
        format_scorecard,
        scorecard,
    )

    names = list(args.figures) if args.figures else list(DEFAULT_SCORECARD_FIGURES)
    from repro.experiments.parallel import scorecard_points
    from repro.experiments.runner import set_default_sampling_plan

    set_default_sampling_plan(_resolve_sampling_plan(args))
    try:
        _prewarm_points(scorecard_points(names, args.apps or None, args.scale),
                        _resolved_jobs(args))
        payload = scorecard(figures=names, apps=args.apps or None,
                            scale=args.scale)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_REPRO_ERROR
    finally:
        set_default_sampling_plan(None)
    if args.out:
        directory = os.path.dirname(args.out)
        if directory:
            os.makedirs(directory, exist_ok=True)
        atomic_write(args.out,
                     json.dumps(payload, indent=2, sort_keys=True) + "\n")
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(format_scorecard(payload))
        if args.out:
            print(f"scorecard json: {args.out}")
    registry = _registry(args)
    if registry is not None:
        from repro.registry.records import scorecard_record

        record = registry.put(scorecard_record(payload))
        if not args.json:
            print(f"registry: {record.run_id} -> {registry.root}")
    return 0


def _sampling_bars(record_like: Optional[dict]) -> dict:
    """Per-metric absolute error bars from a sampled record, else {}.

    Sampled run records carry ``data.sampling.error_bars`` whose keys
    (``ipc``, ``instructions``, ``l1.accesses``, ...) match the record's
    flattened metric names, so the bars feed ``diff_metrics`` directly.
    """
    if not isinstance(record_like, dict):
        return {}
    sampling = (record_like.get("data") or {}).get("sampling") \
        if "data" in record_like else record_like.get("sampling")
    if not isinstance(sampling, dict):
        return {}
    bars = sampling.get("error_bars")
    if not isinstance(bars, dict):
        return {}
    return {str(key): float(value) for key, value in bars.items()}


def _load_json_metrics(path: str) -> tuple[dict, Optional[dict], dict]:
    """(flat metrics, scorecard payload or None, error bars) from a file."""
    import json

    from repro.registry.records import flatten_metrics

    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    if isinstance(payload, dict) and "figures" in payload and "schema" in payload:
        # A scorecard JSON: diff its fidelity metrics (same slice that
        # scorecard_record indexes into the registry).
        return flatten_metrics(payload["figures"]), payload, {}
    if isinstance(payload, dict) and "metrics" in payload and "run_id" in payload:
        # An exported registry record.
        return dict(payload["metrics"]), None, _sampling_bars(payload)
    return flatten_metrics(payload), None, {}


def _resolve_diff_ref(
    ref: str, nth: int = 0,
) -> tuple[dict, str, Optional[dict], dict]:
    """(flat metrics, label, scorecard payload or None, error bars).

    A ref is ``baseline`` (the committed baseline scorecard), a JSON file
    path, or a registry run-id prefix (``nth`` selects the occurrence,
    newest first). The error bars are non-empty only for sampled records
    — a sampled point estimate is compared within its own stated
    uncertainty.
    """
    from repro.registry.store import RegistryStore

    path = BASELINE_SCORECARD if ref == "baseline" else ref
    if os.path.exists(path):
        metrics, payload, bars = _load_json_metrics(path)
        return metrics, path, payload, bars
    record = RegistryStore().resolve(ref, nth=nth)
    suffix = "" if nth == 0 else f"~{nth}"
    label = f"{record['run_id']}{suffix} ({record.get('name', '?')})"
    if record.get("kind") == "scorecard":
        return (dict(record.get("metrics") or {}), label,
                record.get("data"), {})
    return (dict(record.get("metrics") or {}), label, None,
            _sampling_bars(record))


def _cmd_diff(args: argparse.Namespace) -> int:
    import json

    from repro.registry.diffing import (
        DEFAULT_ATOL,
        DEFAULT_RTOL,
        diff_metrics,
        format_diff,
    )

    rtol = DEFAULT_RTOL if args.rtol is None else args.rtol
    atol = DEFAULT_ATOL if args.atol is None else args.atol
    overrides = {}
    for spec in args.tolerance or []:
        pattern, sep, value = spec.rpartition("=")
        if not sep or not pattern:
            print(f"error: --tolerance expects GLOB=RTOL, got {spec!r}",
                  file=sys.stderr)
            return EXIT_REPRO_ERROR
        overrides[pattern] = float(value)

    metrics_a, label_a, scorecard_a, bars_a = _resolve_diff_ref(args.ref_a)
    bars_b: dict = {}
    if args.ref_b:
        metrics_b, label_b, _, bars_b = _resolve_diff_ref(args.ref_b)
    elif scorecard_a is not None:
        # One scorecard ref: regenerate at its scale/apps and compare.
        from repro.registry.scorecard import scorecard

        payload = scorecard(
            figures=sorted(scorecard_a.get("figures") or {}) or None,
            apps=scorecard_a.get("apps") or None,
            scale=float(scorecard_a.get("scale") or 0.5),
        )
        from repro.registry.records import flatten_metrics

        metrics_b, label_b = flatten_metrics(payload["figures"]), "current"
    else:
        # One run-id ref: latest occurrence vs the previous one.
        metrics_b, label_b, bars_b = metrics_a, label_a, bars_a
        metrics_a, label_a, _, bars_a = _resolve_diff_ref(args.ref_a, nth=1)

    # When both sides are sampled estimates, their uncertainties add.
    bars = dict(bars_a)
    for key, value in bars_b.items():
        bars[key] = bars.get(key, 0.0) + value

    report = diff_metrics(
        metrics_a, metrics_b,
        rtol=rtol, atol=atol,
        overrides=overrides, ignore=args.ignore or (),
        label_a=label_a, label_b=label_b,
        bars=bars,
    )
    if args.json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        print(format_diff(report))
    return 0 if report.ok else 1


def _cmd_report(args: argparse.Namespace) -> int:
    import json

    from repro.experiments.report import write_html_report

    if args.from_json:
        with open(args.from_json, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    else:
        from repro.registry.scorecard import scorecard

        payload = scorecard(figures=args.figures or None,
                            apps=args.apps or None, scale=args.scale)
    stall_records: list = []
    registry = _registry(args)
    if registry is not None:
        stall_records = [
            record for record in registry.list(kind="run", limit=200)
            if record.get("stalls")
        ][:10]
    path = write_html_report(args.html, payload, stall_records)
    print(f"html report: {path}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    # Imported lazily: the analysis subsystem is not needed for simulation.
    from repro.analysis.cli import cmd_lint

    return cmd_lint(args)


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.resilience.chaos import format_chaos, run_chaos
    from repro.resilience.faults import FAULT_KINDS

    if args.faults.strip().lower() == "all":
        kinds = list(FAULT_KINDS)
    else:
        kinds = [k.strip() for k in args.faults.split(",") if k.strip()]
        unknown = sorted(set(kinds) - set(FAULT_KINDS))
        if unknown:
            raise ReproError(
                f"unknown fault kind(s): {', '.join(unknown)}; choose from "
                + ", ".join(FAULT_KINDS) + " (or 'all')",
                details={"unknown": unknown},
            )
    extra = {"apps": args.apps} if args.apps else {}
    report = run_chaos(
        kinds,
        jobs=args.jobs,
        seed=args.seed,
        out_dir=args.out,
        deadline_s=args.deadline,
        max_attempts=args.max_attempts,
        scale=args.scale,
        **extra,
    )
    print(format_chaos(report))
    return 0 if report.ok else 1


def _cmd_fsck(args: argparse.Namespace) -> int:
    import json

    from repro.registry.store import RegistryStore
    from repro.resilience.fsck import format_fsck, fsck

    store = RegistryStore(args.registry) if args.registry else RegistryStore()
    report = fsck(store, repair=args.repair, restore_from=args.restore_from)
    if args.json:
        payload = {
            "root": report.root,
            "records": report.records,
            "issues": report.counts(),
            "repaired": report.repaired,
            "quarantine": report.quarantine_path,
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(format_fsck(report))
    if report.ok:
        return 0
    if args.repair:
        # A repair pass resolved what it found; verify the healed store.
        return 0 if fsck(store).ok else 1
    return 1


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.experiments.validate import check_claims, format_report

    results = check_claims(scale=args.scale, apps=args.apps or None)
    print(format_report(results))
    return 0 if all(r.passed for r in results) else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="APRES (ISCA 2016) reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads and configurations")

    def add_integrity_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--cycle-budget", type=int, default=None, metavar="N",
                       help="abort any simulation exceeding N cycles")
        p.add_argument("--watchdog", type=int, default=None, metavar="N",
                       help="abort after N cycles without forward progress")
        p.add_argument("--integrity-every", type=int, default=None, metavar="N",
                       help="run conservation-invariant checks every N cycles")
        p.add_argument("--dump-dir", default=None, metavar="DIR",
                       help="write watchdog diagnostic dumps (JSON) to DIR")

    def add_telemetry_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--window", type=int, default=5_000, metavar="N",
                       help="interval-metrics window in simulated cycles")
        p.add_argument("--no-heartbeat", action="store_true",
                       help="suppress the periodic progress line on stderr")

    def add_registry_flag(p: argparse.ArgumentParser) -> None:
        p.add_argument("--no-registry", action="store_true",
                       help="skip ingesting results into the run registry "
                            "(bench_results/registry, or REPRO_REGISTRY_DIR)")

    def add_parallel_flags(p: argparse.ArgumentParser,
                           cache: bool = False) -> None:
        p.add_argument("--jobs", type=int, default=None, metavar="N",
                       help="process-pool workers for independent points "
                            "(default: $REPRO_JOBS, else 1; 0 = one per CPU)")
        if cache:
            p.add_argument("--no-cache", action="store_true",
                           help="re-simulate points even when the registry "
                                "already archives their records")

    def add_metrics_flag(p: argparse.ArgumentParser) -> None:
        p.add_argument("--metrics-out", metavar="FILE", default=None,
                       help="dump the operational metrics registry as JSON "
                            "to FILE plus a Prometheus textfile (FILE.prom)")

    def add_sampling_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--sampled", action="store_true",
                       help="estimate each run from clustered representative "
                            "intervals instead of simulating every cycle "
                            "(10x+ fewer detailed cycles; results carry "
                            "error bars and a distinct cache lineage)")
        p.add_argument("--sample-intervals", type=int, default=None,
                       metavar="W",
                       help="profiling interval width in cycles "
                            "(default 200; requires --sampled)")
        p.add_argument("--sample-warmup", type=int, default=None, metavar="N",
                       help="extra detailed warmup cycles before each "
                            "representative interval (default 0; requires "
                            "--sampled)")
        p.add_argument("--sample-clusters", type=int, default=None,
                       metavar="K",
                       help="number of representative intervals (default: "
                            "auto, one per ~12 intervals; requires --sampled)")

    def add_shard_flags(p: argparse.ArgumentParser) -> None:
        from repro.shard import BACKENDS

        p.add_argument("--shards", type=int, default=None, metavar="N",
                       help="partition each run's SMs across N shard "
                            "workers (epoch-barrier engine); E=1 is "
                            "lock-step and bit-identical to serial")
        p.add_argument("--epoch-cycles", type=int, default=None, metavar="E",
                       help="cycles each shard simulates between barriers "
                            "(default 64; 1 = exact lock-step; requires "
                            "--shards)")
        p.add_argument("--shard-backend", choices=BACKENDS, default=None,
                       help="barrier transport: inproc (default) or one "
                            "OS process per shard (requires --shards; "
                            "incompatible with --jobs > 1)")

    p_run = sub.add_parser("run", help="simulate one workload/configuration")
    p_run.add_argument("app", choices=sorted(SUITE))
    p_run.add_argument("config", choices=sorted(CONFIGS))
    p_run.add_argument("--scale", type=float, default=0.5)
    p_run.add_argument("--telemetry", action="store_true",
                       help="enable stall attribution, interval metrics and "
                            "a heartbeat progress line")
    p_run.add_argument("--trace-out", metavar="FILE", default=None,
                       help="write a Chrome trace-event JSON (implies "
                            "--telemetry)")
    p_run.add_argument("--intervals-out", metavar="FILE", default=None,
                       help="write interval metrics as JSONL (implies "
                            "--telemetry)")
    add_telemetry_flags(p_run)
    add_integrity_flags(p_run)
    add_registry_flag(p_run)
    add_shard_flags(p_run)
    add_sampling_flags(p_run)
    add_metrics_flag(p_run)

    p_trace = sub.add_parser(
        "trace",
        help="run one point with full telemetry: Chrome trace, interval "
             "JSONL, stall attribution, optional host profile",
    )
    p_trace.add_argument("app", choices=sorted(SUITE))
    p_trace.add_argument("config", choices=sorted(CONFIGS))
    p_trace.add_argument("--scale", type=float, default=0.5)
    p_trace.add_argument("--out", metavar="DIR", default=None,
                         help="output directory (default traces/APP_CONFIG)")
    p_trace.add_argument("--profile", action="store_true",
                         help="cProfile the host process and report hot "
                              "functions")
    p_trace.add_argument("--profile-limit", type=int, default=15, metavar="N",
                         help="functions to show in the profile report")
    add_telemetry_flags(p_trace)
    add_integrity_flags(p_trace)

    p_cmp = sub.add_parser("compare", help="speedups over baseline for one app")
    p_cmp.add_argument("app", choices=sorted(SUITE))
    p_cmp.add_argument("configs", nargs="*", metavar="CONFIG")
    p_cmp.add_argument("--scale", type=float, default=0.5)

    p_char = sub.add_parser("characterize", help="Table I rows for one workload")
    p_char.add_argument("app", choices=sorted(SUITE))
    p_char.add_argument("--scale", type=float, default=0.5)

    p_table = sub.add_parser("table", help="regenerate a paper table")
    p_table.add_argument("number", type=int, choices=(1, 2))
    p_table.add_argument("--scale", type=float, default=0.5)
    add_parallel_flags(p_table)
    add_registry_flag(p_table)

    p_fig = sub.add_parser("figure", help="regenerate a paper figure's data")
    p_fig.add_argument("number", type=int, choices=sorted(_FIGURES))
    p_fig.add_argument("--scale", type=float, default=0.5)
    p_fig.add_argument("--apps", nargs="*", metavar="APP")
    add_parallel_flags(p_fig)
    add_shard_flags(p_fig)
    add_sampling_flags(p_fig)
    add_registry_flag(p_fig)
    add_metrics_flag(p_fig)

    p_val = sub.add_parser("validate", help="check the reproduction's shape claims")
    p_val.add_argument("--scale", type=float, default=0.5)
    p_val.add_argument("--apps", nargs="*", metavar="APP")

    p_sweep = sub.add_parser(
        "sweep", help="crash-safe multi-point sweep with a JSONL results store"
    )
    p_sweep.add_argument("--out", required=True, metavar="PATH",
                         help="JSONL results store (appended as points finish)")
    p_sweep.add_argument("--apps", nargs="*", metavar="APP",
                         help="workloads to sweep (default: all)")
    p_sweep.add_argument("--configs", nargs="*", metavar="CONFIG",
                         help="configurations to sweep (default: all)")
    p_sweep.add_argument("--scales", nargs="*", type=float, default=[0.5],
                         metavar="S", help="workload scales (default: 0.5)")
    p_sweep.add_argument("--resume-from", metavar="PATH", default=None,
                         help="skip points already completed in this store "
                              "(quarantined failures stay skipped)")
    p_sweep.add_argument("--retry-failed", action="store_true",
                         help="with --resume-from: re-attempt quarantined "
                              "failure records instead of skipping them")
    p_sweep.add_argument("--retries", type=int, default=2, metavar="K",
                         help="retries per point on transient simulation errors")
    p_sweep.add_argument("--backoff", type=float, default=0.5, metavar="SEC",
                         help="base retry backoff (doubles per attempt)")
    p_sweep.add_argument("--timeout", type=float, default=None, metavar="SEC",
                         help="wall-clock limit per point")
    p_sweep.add_argument("--max-points", type=int, default=None, metavar="N",
                         help="simulate at most N new points this invocation")
    p_sweep.add_argument("--telemetry", action="store_true",
                         help="attach stall attribution to every point's "
                              "record (reconciled against its counters)")
    p_sweep.add_argument("--trace-dir", metavar="DIR", default=None,
                         help="write one Chrome trace per point into DIR "
                              "(implies --telemetry)")
    p_sweep.add_argument("--window", type=int, default=5_000, metavar="N",
                         help="interval-metrics window in simulated cycles")
    p_sweep.add_argument("--worker-deadline", type=float, default=None,
                         metavar="SEC",
                         help="supervised pool: kill and requeue any worker "
                              "silent for SEC seconds (enables heartbeats)")
    p_sweep.add_argument("--max-attempts", type=int, default=None, metavar="N",
                         help="supervised pool: quarantine a point after N "
                              "dispatch attempts (default 3)")
    add_parallel_flags(p_sweep, cache=True)
    add_shard_flags(p_sweep)
    add_sampling_flags(p_sweep)
    add_integrity_flags(p_sweep)
    add_registry_flag(p_sweep)
    add_metrics_flag(p_sweep)

    p_bench = sub.add_parser(
        "bench",
        help="simulator speed microbenchmark: cycles/second over a fixed "
             "point set, written to bench_results/BENCH_sim_speed.json",
    )
    p_bench.add_argument("--scale", type=float, default=0.3)
    p_bench.add_argument("--apps", nargs="*", metavar="APP",
                         help="restrict the point set (and figure2 timing) "
                              "to these workloads")
    p_bench.add_argument("--out", metavar="FILE", default=None,
                         help=f"output path (default {BENCH_SIM_SPEED})")
    p_bench.add_argument("--no-figure2", action="store_true",
                         help="skip the end-to-end figure2 wall-clock timing")
    p_bench.add_argument("--json", action="store_true",
                         help="emit the bench payload as JSON on stdout")
    p_bench.add_argument("--shards-axis", action="store_true",
                         help="benchmark the epoch-barrier shard engine "
                              "instead: serial vs sharded cycles/second on "
                              "the figure-2 workload set at 15 SMs, written "
                              f"to {BENCH_SHARD_SPEED}")
    p_bench.add_argument("--shards", nargs="+", type=int, default=None,
                         metavar="N",
                         help="with --shards-axis: shard counts to time "
                              "(default: 2 4)")
    p_bench.add_argument("--epoch-cycles", type=int, default=None, metavar="E",
                         help="with --shards-axis: barrier interval "
                              "(default: the engine default, 64)")
    p_bench.add_argument("--telemetry-axis", action="store_true",
                         help="benchmark telemetry overhead instead: off vs "
                              "stalls vs full trace, serial vs the lock-step "
                              "2-shard merge, written to "
                              f"{BENCH_TELEMETRY_OVERHEAD}")
    p_bench.add_argument("--repeats", type=int, default=None, metavar="R",
                         help="with --telemetry-axis: interleaved repeats "
                              "per cell (default 5, median reported)")
    p_bench.add_argument("--sampled-axis", action="store_true",
                         help="benchmark the sampled estimator instead: "
                              "full vs sampled IPC, per-workload error bars "
                              "and detailed-cycle reduction on the figure-2 "
                              f"set, written to {BENCH_SAMPLED_SPEED}")
    add_sampling_flags(p_bench)
    add_registry_flag(p_bench)

    p_score = sub.add_parser(
        "scorecard",
        help="paper-fidelity scorecard: MAPE, geomean delta and Spearman "
             "rank correlation vs the paper's numbers",
    )
    p_score.add_argument("--scale", type=float, default=0.5)
    p_score.add_argument("--apps", nargs="*", metavar="APP",
                         help="restrict scoring to these workloads")
    p_score.add_argument("--figures", nargs="*", metavar="FIG",
                         help="producer names to score (default: "
                              "figure10..figure15)")
    p_score.add_argument("--json", action="store_true",
                         help="emit the scorecard payload as JSON on stdout")
    p_score.add_argument("--out", metavar="FILE", default=None,
                         help="also write the scorecard JSON to FILE")
    add_parallel_flags(p_score)
    add_sampling_flags(p_score)
    add_registry_flag(p_score)

    p_diff = sub.add_parser(
        "diff",
        help="tolerance-checked metric diff between registry records, "
             "scorecard JSON files, or 'baseline'; exits 1 on drift",
    )
    p_diff.add_argument("ref_a", metavar="REF",
                        help="run-id prefix, JSON file, or 'baseline' "
                             f"({BASELINE_SCORECARD})")
    p_diff.add_argument("ref_b", nargs="?", metavar="REF2", default=None,
                        help="second ref (default: regenerate a scorecard "
                             "ref, or the run id's previous occurrence)")
    p_diff.add_argument("--rtol", type=float, default=None, metavar="R",
                        help="relative tolerance (default 0.05)")
    p_diff.add_argument("--atol", type=float, default=None, metavar="A",
                        help="absolute tolerance floor (default 1e-9)")
    p_diff.add_argument("--tolerance", action="append", metavar="GLOB=RTOL",
                        help="per-metric rtol override (repeatable; first "
                             "matching glob wins)")
    p_diff.add_argument("--ignore", nargs="*", metavar="GLOB", default=[],
                        help="metric globs to skip entirely")
    p_diff.add_argument("--json", action="store_true",
                        help="emit the diff report as JSON on stdout")

    p_rep = sub.add_parser(
        "report", help="write the self-contained HTML results report"
    )
    p_rep.add_argument("--html", metavar="FILE",
                       default=os.path.join("bench_results", "report.html"),
                       help="output path (default bench_results/report.html)")
    p_rep.add_argument("--from", dest="from_json", metavar="FILE", default=None,
                       help="reuse an existing scorecard JSON instead of "
                            "re-running the simulations")
    p_rep.add_argument("--scale", type=float, default=0.5)
    p_rep.add_argument("--apps", nargs="*", metavar="APP")
    p_rep.add_argument("--figures", nargs="*", metavar="FIG")
    add_registry_flag(p_rep)

    p_chaos = sub.add_parser(
        "chaos",
        help="sweep under injected faults; assert the healed output is "
             "byte-identical to a clean run",
    )
    p_chaos.add_argument("--faults", default="all", metavar="K,K,...",
                         help="comma-separated fault kinds (crash, hang, "
                              "torn-write, disk-full, fsync-fail, "
                              "corrupt-record) or 'all'")
    p_chaos.add_argument("--jobs", type=int, default=2, metavar="N",
                         help="workers for the chaotic run (default 2)")
    p_chaos.add_argument("--apps", nargs="*", metavar="APP",
                         help="workloads for the chaos grid (default BFS KM)")
    p_chaos.add_argument("--scale", type=float, default=0.05,
                         help="workload scale for the chaos grid")
    p_chaos.add_argument("--seed", type=int, default=0,
                         help="fault-plan placement seed")
    p_chaos.add_argument("--out", metavar="DIR", default=None,
                         help="artifact directory (default: a fresh temp dir)")
    p_chaos.add_argument("--deadline", type=float, default=5.0, metavar="SEC",
                         help="heartbeat deadline before a hung worker is "
                              "killed and its point requeued")
    p_chaos.add_argument("--max-attempts", type=int, default=3, metavar="N",
                         help="dispatch attempts before a point is "
                              "quarantined")

    p_fsck = sub.add_parser(
        "fsck",
        help="audit (and with --repair, heal) the run registry: torn lines, "
             "hash mismatches, duplicates, index drift",
    )
    p_fsck.add_argument("--registry", metavar="DIR", default=None,
                        help="registry root (default bench_results/registry, "
                             "or REPRO_REGISTRY_DIR)")
    p_fsck.add_argument("--repair", action="store_true",
                        help="quarantine bad lines, restore restorable "
                             "records, rewrite the JSONL atomically and "
                             "rebuild the SQLite index")
    p_fsck.add_argument("--restore-from", metavar="PATH", default=None,
                        help="sweep JSONL store used to regenerate corrupted "
                             "registry records losslessly")
    p_fsck.add_argument("--json", action="store_true",
                        help="emit the fsck report as JSON on stdout")

    p_lint = sub.add_parser(
        "lint", help="simulator-aware static analysis (simlint SL001-SL011)"
    )
    from repro.analysis.cli import add_lint_arguments

    add_lint_arguments(p_lint)
    return parser


_COMMANDS = {
    "list": _cmd_list,
    "run": _cmd_run,
    "trace": _cmd_trace,
    "compare": _cmd_compare,
    "characterize": _cmd_characterize,
    "table": _cmd_table,
    "figure": _cmd_figure,
    "validate": _cmd_validate,
    "sweep": _cmd_sweep,
    "bench": _cmd_bench,
    "scorecard": _cmd_scorecard,
    "diff": _cmd_diff,
    "report": _cmd_report,
    "lint": _cmd_lint,
    "chaos": _cmd_chaos,
    "fsck": _cmd_fsck,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        # One actionable line instead of a traceback; structured context
        # (if any) is in exc.details and any watchdog dump it references.
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return EXIT_REPRO_ERROR


if __name__ == "__main__":
    sys.exit(main())
