"""Per-load characterisation: the methodology behind Table I.

For every static load the profiler accumulates, over coalesced line
requests: the share of total memory references (%Load), the ratio of
unique lines to references (#L/#R — the idealised miss rate with infinite
cache), the actual L1 miss rate, and the dominant inter-warp stride with
its share of detected strides. Strides follow Section III-B's definition:
address delta divided by warp-ID delta for consecutive executions of the
same static load.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Optional

from repro.mem.request import LoadAccess


@dataclass
class _PCRecord:
    refs: int = 0
    misses: int = 0
    executions: int = 0
    unique_lines: set[int] = field(default_factory=set)
    strides: Counter = field(default_factory=Counter)
    #: last (warp, primary address) per SM, for stride pairing.
    last: dict[int, tuple[int, int]] = field(default_factory=dict)
    label: str = ""


@dataclass(frozen=True)
class LoadRow:
    """One row of the Table I reproduction."""

    pc: int
    label: str
    pct_load: float
    lines_per_ref: float
    miss_rate: float
    top_stride: Optional[int]
    pct_stride: float
    executions: int

    def formatted(self) -> str:
        stride = "-" if self.top_stride is None else str(self.top_stride)
        return (
            f"0x{self.pc:X}\t{self.pct_load:6.1%}\t{self.lines_per_ref:5.2f}\t"
            f"{self.miss_rate:5.2f}\t{stride:>10}\t{self.pct_stride:6.1%}"
        )


class LoadProfiler:
    """Attachable load observer accumulating Table I metrics."""

    def __init__(self) -> None:
        self._records: dict[int, _PCRecord] = {}
        self._total_refs = 0

    def observe(self, access: LoadAccess, line_hits: list[bool]) -> None:
        """Pipeline hook: one executed load with its per-line outcomes."""
        rec = self._records.setdefault(access.pc, _PCRecord())
        rec.executions += 1
        rec.refs += len(access.line_addrs)
        rec.misses += sum(1 for hit in line_hits if not hit)
        rec.unique_lines.update(access.line_addrs)
        self._total_refs += len(access.line_addrs)

        prev = rec.last.get(access.sm_id)
        if prev is not None:
            stride = self._stride(prev, (access.warp_id, access.primary_addr))
            if stride is not None:
                rec.strides[stride] += 1
        rec.last[access.sm_id] = (access.warp_id, access.primary_addr)

    @staticmethod
    def _stride(prev: tuple[int, int], cur: tuple[int, int]) -> Optional[int]:
        warp_delta = cur[0] - prev[0]
        addr_delta = cur[1] - prev[1]
        if warp_delta == 0:
            return addr_delta
        if addr_delta % warp_delta:
            return None
        return addr_delta // warp_delta

    def rows(self, top: Optional[int] = None) -> list[LoadRow]:
        """Characterisation rows sorted by reference share (Table I order)."""
        out = []
        for pc, rec in self._records.items():
            top_stride, stride_count = None, 0
            if rec.strides:
                top_stride, stride_count = rec.strides.most_common(1)[0]
            total_strides = sum(rec.strides.values())
            out.append(
                LoadRow(
                    pc=pc,
                    label=rec.label,
                    pct_load=rec.refs / self._total_refs if self._total_refs else 0.0,
                    lines_per_ref=len(rec.unique_lines) / rec.refs if rec.refs else 0.0,
                    miss_rate=rec.misses / rec.refs if rec.refs else 0.0,
                    top_stride=top_stride,
                    pct_stride=stride_count / total_strides if total_strides else 0.0,
                    executions=rec.executions,
                )
            )
        out.sort(key=lambda r: -r.pct_load)
        return out[:top] if top is not None else out
