"""Per-static-load characterisation (reproduces Table I)."""

from repro.characterize.loads import LoadProfiler, LoadRow

__all__ = ["LoadProfiler", "LoadRow"]
