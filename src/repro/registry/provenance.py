"""Run provenance: who produced a number, from which code, on what host.

A reproduction number without provenance cannot be trusted after the
fact — "which commit produced bench_results/figure10.txt?" must have a
mechanical answer. Every registry record therefore embeds the dict
returned by :func:`collect_provenance`. All fields degrade gracefully
(``None``) outside a git checkout or on exotic hosts; provenance must
never make a simulation fail.
"""

from __future__ import annotations

import os
import pathlib
import platform
import subprocess
import time
from typing import Optional

import repro

#: Environment knob that scales benchmark workloads; recorded so a stored
#: figure can never be mistaken for a differently-scaled one.
BENCH_SCALE_ENV = "REPRO_BENCH_SCALE"

#: Pins ``created_unix`` to a fixed epoch. ``repro chaos`` sets it around
#: its clean and faulted runs so registry lines — which embed provenance —
#: can be compared byte-for-byte; every other provenance field is already
#: stable within one host and checkout.
PROVENANCE_EPOCH_ENV = "REPRO_PROVENANCE_EPOCH"


def _created_unix() -> float:
    pinned = os.environ.get(PROVENANCE_EPOCH_ENV, "").strip()
    if pinned:
        try:
            return float(pinned)
        except ValueError:  # simlint: ignore[SL008]
            pass  # a malformed pin must never fail a simulation
    return time.time()


def _repo_root() -> pathlib.Path:
    """Directory to resolve git metadata from (the source checkout)."""
    return pathlib.Path(__file__).resolve().parents[3]


def _git(*args: str) -> Optional[str]:
    try:
        proc = subprocess.run(
            ("git",) + args,
            cwd=_repo_root(),
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout.strip() or None


def git_sha(short: bool = False) -> Optional[str]:
    """Current HEAD commit, or None outside a git checkout."""
    if short:
        return _git("rev-parse", "--short", "HEAD")
    return _git("rev-parse", "HEAD")


def git_dirty() -> Optional[bool]:
    """True when the working tree has uncommitted changes (None: unknown)."""
    status = _git("status", "--porcelain")
    if status is None:
        # Distinguish "clean" (empty output) from "git failed": _git folds
        # both to None, so re-check that a repo is visible at all.
        return None if _git("rev-parse", "HEAD") is None else False
    return bool(status.strip())


def collect_provenance() -> dict:
    """Provenance dict stamped on every registry record and sweep point."""
    return {
        "git_sha": git_sha(),
        "git_dirty": git_dirty(),
        "code_version": repro.__version__,
        "host": platform.node(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "bench_scale_env": os.environ.get(BENCH_SCALE_ENV),
        "created_unix": _created_unix(),
    }
