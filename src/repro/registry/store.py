"""SQLite-indexed, JSONL-mirrored registry store.

Two complementary persistence layers, written in lock-step:

* ``registry.db`` — a SQLite index over (run_id, kind, name, created_at,
  git_sha, scale) with the full record as JSON. Queries (latest record of
  a figure, history of a run id, prefix resolution) go through it.
* ``records.jsonl`` — an append-only JSONL mirror, flushed and fsynced
  per record exactly like the sweep store. It is the crash-safe source of
  truth: :meth:`RegistryStore.rebuild_index` reconstructs the SQLite
  index from it, so a corrupted or deleted ``.db`` never loses data.

The same identity may be ingested many times (the point of a registry:
tracking one experiment across commits); every occurrence is kept, and
"latest occurrence wins" is a query-time choice, not a storage one.
"""

from __future__ import annotations

import json
import os
import pathlib
import sqlite3
import time
from typing import Any, Optional, Union

from repro.errors import ReproError
from repro.registry.records import RunRecord
from repro.resilience import faults
from repro.resilience.atomic import append_line

PathLike = Union[str, pathlib.Path]

#: Default store location, relative to the working directory.
DEFAULT_REGISTRY_DIR = os.path.join("bench_results", "registry")

#: Environment override for the store root (tests, CI sandboxes).
REGISTRY_DIR_ENV = "REPRO_REGISTRY_DIR"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS records (
    seq        INTEGER PRIMARY KEY AUTOINCREMENT,
    run_id     TEXT NOT NULL,
    kind       TEXT NOT NULL,
    name       TEXT NOT NULL,
    created_at REAL NOT NULL,
    git_sha    TEXT,
    scale      REAL,
    json       TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_records_run ON records (run_id, seq);
CREATE INDEX IF NOT EXISTS idx_records_kind ON records (kind, name, seq);
"""


class RegistryError(ReproError):
    """A registry lookup or write failed."""


class RegistryStore:
    """Persistent run-record store (SQLite index + JSONL mirror)."""

    def __init__(self, root: Optional[PathLike] = None):
        resolved = root or os.environ.get(REGISTRY_DIR_ENV) or DEFAULT_REGISTRY_DIR
        self.root = pathlib.Path(resolved)
        self.db_path = self.root / "registry.db"
        self.jsonl_path = self.root / "records.jsonl"

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    def put(self, record: RunRecord) -> RunRecord:
        """Persist one record (JSONL first — it is the source of truth).

        The JSONL append goes through the self-healing single-syscall
        :func:`repro.resilience.atomic.append_line`, so a torn registry
        line cannot persist. The trailing hook lets an armed
        :class:`~repro.resilience.faults.FaultPlan` corrupt the record it
        just ingested (the ``corrupt-record`` chaos fault).
        """
        self.root.mkdir(parents=True, exist_ok=True)
        payload = record.as_dict()
        line = json.dumps(payload, sort_keys=True, default=str)
        append_line(self.jsonl_path, line)
        self._index(payload, line)
        plan = faults.ACTIVE
        if plan is not None:
            plan.registry_ingest_fault(self)
        return record

    def _index(self, payload: dict, line: str) -> None:
        with self._connect() as conn:
            self._insert(conn, payload, line)

    @staticmethod
    def _insert(conn: sqlite3.Connection, payload: dict, line: str) -> None:
        conn.execute(
            "INSERT INTO records (run_id, kind, name, created_at, git_sha,"
            " scale, json) VALUES (?, ?, ?, ?, ?, ?, ?)",
            (
                payload["run_id"],
                payload["kind"],
                payload["name"],
                float(payload.get("provenance", {}).get("created_unix")
                      or time.time()),
                payload.get("provenance", {}).get("git_sha"),
                payload.get("identity", {}).get("scale"),
                line,
            ),
        )

    def rebuild_index(self) -> int:
        """Reconstruct ``registry.db`` from the JSONL mirror; returns rows.

        The rebuild happens in a temporary database that atomically
        replaces the live one, so a crash mid-rebuild leaves either the
        old index or the new one — never a half-filled database.
        """
        tmp_path = self.db_path.with_name(
            self.db_path.name + f".tmp.{os.getpid()}")
        if tmp_path.exists():
            tmp_path.unlink()
        count = 0
        try:
            conn = sqlite3.connect(tmp_path)
            try:
                conn.executescript(_SCHEMA)
                for payload, line in self._iter_jsonl():
                    self._insert(conn, payload, line)
                    count += 1
                conn.commit()
            finally:
                conn.close()
            os.replace(tmp_path, self.db_path)
        except BaseException:
            if tmp_path.exists():
                tmp_path.unlink()
            raise
        return count

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def count(self) -> int:
        if not self.db_path.exists():
            return 0
        with self._connect() as conn:
            row = conn.execute("SELECT COUNT(*) FROM records").fetchone()
        return int(row[0])

    def latest(self, kind: Optional[str] = None,
               name: Optional[str] = None) -> Optional[dict]:
        """Most recently ingested record, optionally filtered."""
        rows = self.list(kind=kind, name=name, limit=1)
        return rows[0] if rows else None

    def list(self, kind: Optional[str] = None, name: Optional[str] = None,
             limit: int = 50) -> list[dict]:
        """Newest-first records matching the filters."""
        if not self.db_path.exists():
            return []
        clauses, params = [], []
        if kind is not None:
            clauses.append("kind = ?")
            params.append(kind)
        if name is not None:
            clauses.append("name = ?")
            params.append(name)
        where = (" WHERE " + " AND ".join(clauses)) if clauses else ""
        with self._connect() as conn:
            rows = conn.execute(
                f"SELECT json FROM records{where} ORDER BY seq DESC LIMIT ?",
                (*params, int(limit)),
            ).fetchall()
        return [json.loads(row[0]) for row in rows]

    def history(self, run_id: str, limit: int = 50) -> list[dict]:
        """Newest-first occurrences of one identity hash."""
        if not self.db_path.exists():
            return []
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT json FROM records WHERE run_id = ?"
                " ORDER BY seq DESC LIMIT ?",
                (run_id, int(limit)),
            ).fetchall()
        return [json.loads(row[0]) for row in rows]

    def resolve(self, ref: str, nth: int = 0) -> dict:
        """Record whose run_id starts with ``ref`` (``nth`` newest-first).

        Raises :class:`RegistryError` when the prefix matches nothing or
        is ambiguous across distinct run ids.
        """
        if not self.db_path.exists():
            raise RegistryError(
                f"registry at {self.root} is empty; run `repro run`/`repro "
                "sweep` or the benchmarks to populate it",
                details={"root": str(self.root)},
            )
        with self._connect() as conn:
            ids = conn.execute(
                "SELECT DISTINCT run_id FROM records WHERE run_id LIKE ?",
                (ref + "%",),
            ).fetchall()
        distinct = sorted(row[0] for row in ids)
        if not distinct:
            raise RegistryError(
                f"no registry record matches run-id prefix {ref!r}",
                details={"ref": ref, "root": str(self.root)},
            )
        if len(distinct) > 1:
            raise RegistryError(
                f"run-id prefix {ref!r} is ambiguous: "
                + ", ".join(distinct[:8]),
                details={"ref": ref, "matches": distinct},
            )
        occurrences = self.history(distinct[0], limit=nth + 1)
        if len(occurrences) <= nth:
            raise RegistryError(
                f"run id {distinct[0]} has only {len(occurrences)} "
                f"occurrence(s); cannot take occurrence #{nth}",
                details={"run_id": distinct[0], "nth": nth},
            )
        return occurrences[nth]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _connect(self) -> sqlite3.Connection:
        self.root.mkdir(parents=True, exist_ok=True)
        conn = sqlite3.connect(self.db_path)
        conn.executescript(_SCHEMA)
        return conn

    def _iter_jsonl(self):
        if not self.jsonl_path.exists():
            return
        with open(self.jsonl_path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn tail from a crash mid-append
                if isinstance(payload, dict) and "run_id" in payload:
                    yield payload, line
