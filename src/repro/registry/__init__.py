"""Persistent results registry: run records, provenance, fidelity scorecard.

Every number this repository produces — a single ``repro run``, a sweep
point, a regenerated paper figure — can be ingested into one persistent
store under ``bench_results/registry/`` (SQLite index + append-only JSONL
mirror). Records are keyed by a content hash of their *identity* (what
was simulated: workload, configuration, scheduler, prefetcher, seed,
scale, GPU-config hash) and carry full *provenance* (git SHA, code
version, host, wall time) plus a flattened metric dict, so any two
records — across commits, machines and months — can be diffed
counter-by-counter (``python -m repro diff``).

On top of the store sits the paper-fidelity scorecard
(:mod:`repro.registry.scorecard`): golden per-app numbers from the APRES
paper (:mod:`repro.experiments.paper_data`) are compared against fresh or
stored reproduction data, yielding MAPE, geomean-speedup delta and
Spearman rank correlation per figure (``python -m repro scorecard``), and
a committed baseline of those metrics gates CI against silent drift.
"""

from repro.registry.records import (
    RECORD_FORMAT,
    RunRecord,
    config_hash,
    content_hash,
    figure_record,
    flatten_metrics,
    headline_metrics,
    run_record,
    scorecard_record,
    sweep_point_record,
    workload_seed,
)
from repro.registry.provenance import collect_provenance, git_sha
from repro.registry.store import DEFAULT_REGISTRY_DIR, RegistryStore
from repro.registry.diffing import DiffReport, DiffRow, diff_metrics
from repro.registry.scorecard import (
    geomean,
    mape,
    score_figure,
    scorecard,
    spearman,
)

__all__ = [
    "RECORD_FORMAT",
    "RunRecord",
    "config_hash",
    "content_hash",
    "figure_record",
    "flatten_metrics",
    "headline_metrics",
    "run_record",
    "scorecard_record",
    "sweep_point_record",
    "workload_seed",
    "collect_provenance",
    "git_sha",
    "DEFAULT_REGISTRY_DIR",
    "RegistryStore",
    "DiffReport",
    "DiffRow",
    "diff_metrics",
    "geomean",
    "mape",
    "score_figure",
    "scorecard",
    "spearman",
]
