"""Registry record model: identity hashing and metric flattening.

A record's *identity* is the minimal description of what was simulated —
workload, configuration (split into scheduler and prefetcher), seed,
scale and the hash of the :class:`~repro.config.GPUConfig`. The identity
is content-hashed into the record's ``run_id``, so the same logical
experiment always lands under the same id regardless of when, where or
from which commit it ran; the store keeps every occurrence, which is what
makes ``repro diff <run-id>`` (current vs previous occurrence) work.

*Metrics* are a flat ``dotted.key -> number`` dict derived from the full
nested counter tree, so two records can be compared counter-by-counter
without either side knowing the other's schema.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Sequence

#: Bump when the record layout changes incompatibly.
RECORD_FORMAT = 1

#: Characters of the sha256 hex digest used as the run id. 16 hex chars
#: (64 bits) keeps collision odds negligible at any realistic store size
#: while staying shell-friendly.
RUN_ID_LEN = 16


def content_hash(identity: Mapping[str, Any]) -> str:
    """Stable hash of a record identity (order-insensitive, canonical JSON)."""
    canonical = json.dumps(identity, sort_keys=True, separators=(",", ":"),
                           default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:RUN_ID_LEN]


def record_sha256(record: Mapping[str, Any]) -> str:
    """Full sha256 of a record's canonical JSON (memo-verification hash).

    Ingestion stamps this next to every archived sweep record
    (``data["sweep_record_sha256"]``); replay recomputes it before
    trusting a cache hit, so a corrupted archive entry — still valid
    JSON, wrong numbers — is detected instead of replayed into results.
    """
    canonical = json.dumps(record, sort_keys=True, separators=(",", ":"),
                           default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def config_hash(gpu_config: Any) -> str:
    """Content hash of a GPUConfig (any frozen dataclass works)."""
    if dataclasses.is_dataclass(gpu_config) and not isinstance(gpu_config, type):
        payload: Any = dataclasses.asdict(gpu_config)
    else:
        payload = repr(gpu_config)
    return content_hash({"gpu_config": payload})


def workload_seed(spec: Any) -> int:
    """Fold a workload spec's per-load generator seeds into one integer.

    The suite bakes one seed per address generator into each
    :class:`~repro.workloads.spec.WorkloadSpec`; this collapses them (plus
    the structural repr, which pins strides and footprints) into a single
    stable integer for record identities.
    """
    seeds = []
    for load in getattr(spec, "loads", ()) or ():
        generator = getattr(load, "generator", None) or getattr(load, "gen", None)
        seed = getattr(generator, "seed", None)
        if isinstance(seed, int):
            seeds.append(seed)
    canonical = json.dumps(seeds) if seeds else repr(spec)
    digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
    return int(digest[:12], 16)


def flatten_metrics(value: Any, prefix: str = "") -> dict[str, float]:
    """Flatten nested dicts/lists/dataclasses into ``dotted.key -> number``.

    Only numeric leaves survive (bools and strings are identity/metadata,
    not metrics). List elements are keyed by index.
    """
    out: dict[str, float] = {}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        value = dataclasses.asdict(value)
    if isinstance(value, Mapping):
        for key, sub in value.items():
            sub_prefix = f"{prefix}.{key}" if prefix else str(key)
            out.update(flatten_metrics(sub, sub_prefix))
    elif isinstance(value, (list, tuple)):
        for index, sub in enumerate(value):
            sub_prefix = f"{prefix}.{index}" if prefix else str(index)
            out.update(flatten_metrics(sub, sub_prefix))
    elif isinstance(value, bool):
        pass
    elif isinstance(value, (int, float)):
        out[prefix or "value"] = float(value)
    return out


#: Key fragments that mark a figure's headline aggregates.
_HEADLINE_MARKERS = ("GMEAN", "MEAN", "total")


def headline_metrics(value: Any, limit: int = 24) -> dict[str, float]:
    """The headline slice of a payload's metrics (geomeans, means, totals).

    Used to seed the compact ``bench_results/BENCH_<name>.json`` trajectory
    files: small enough to diff in review, stable enough to chart over the
    git history. Falls back to the first ``limit`` flattened metrics when a
    payload has no aggregate keys.
    """
    flat = flatten_metrics(value)
    headline = {
        key: val
        for key, val in flat.items()
        if any(marker in key for marker in _HEADLINE_MARKERS)
    }
    if headline:
        return dict(sorted(headline.items()))
    return dict(sorted(flat.items())[:limit])


@dataclass(frozen=True)
class RunRecord:
    """One registry entry: identity, metrics, payload, provenance."""

    run_id: str
    kind: str  # "run" | "figure" | "scorecard"
    name: str
    identity: dict
    metrics: dict
    data: dict = field(default_factory=dict)
    provenance: dict = field(default_factory=dict)
    stalls: Optional[dict] = None
    wall_time_s: Optional[float] = None
    format: int = RECORD_FORMAT

    def as_dict(self) -> dict:
        return {
            "format": self.format,
            "run_id": self.run_id,
            "kind": self.kind,
            "name": self.name,
            "identity": self.identity,
            "metrics": self.metrics,
            "data": self.data,
            "provenance": self.provenance,
            "stalls": self.stalls,
            "wall_time_s": self.wall_time_s,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RunRecord":
        return cls(
            run_id=payload["run_id"],
            kind=payload["kind"],
            name=payload["name"],
            identity=dict(payload.get("identity") or {}),
            metrics=dict(payload.get("metrics") or {}),
            data=dict(payload.get("data") or {}),
            provenance=dict(payload.get("provenance") or {}),
            stalls=payload.get("stalls"),
            wall_time_s=payload.get("wall_time_s"),
            format=int(payload.get("format", RECORD_FORMAT)),
        )


def _record(kind: str, name: str, identity: dict, metrics: dict, *,
            data: Optional[dict] = None, stalls: Optional[dict] = None,
            wall_time_s: Optional[float] = None) -> RunRecord:
    from repro.registry.provenance import collect_provenance

    identity = {"kind": kind, **identity}
    return RunRecord(
        run_id=content_hash(identity),
        kind=kind,
        name=name,
        identity=identity,
        metrics=metrics,
        data=data or {},
        provenance=collect_provenance(),
        stalls=stalls,
        wall_time_s=wall_time_s,
    )


def run_record(result: Any, scale: float, gpu_config: Any, *,
               seed: Optional[int] = None, stalls: Optional[dict] = None,
               wall_time_s: Optional[float] = None,
               engine_tag: Optional[str] = None) -> RunRecord:
    """Registry record for one :class:`~repro.experiments.runner.RunResult`.

    ``engine_tag`` names a non-serial execution engine whose statistics
    are *not* bit-identical to the serial one (a relaxed shard plan's
    :attr:`~repro.shard.ShardPlan.identity_tag`). It becomes part of the
    record identity, so drifted metrics get their own ``run_id`` lineage
    instead of polluting the serial history. Bit-exact engines (lock-step
    shards) pass ``None`` and share the serial run ids — their payloads
    hash identically by construction.
    """
    from repro.experiments.configs import CONFIGS
    from repro.workloads.suite import workload

    spec = CONFIGS.get(result.config_name)
    if seed is None:
        seed = workload_seed(workload(result.workload))
    identity = {
        "workload": result.workload,
        "config": result.config_name,
        "scheduler": spec.scheduler if spec else result.config_name,
        "prefetcher": spec.prefetcher if spec else "none",
        "seed": seed,
        "scale": scale,
        "gpu_config": config_hash(gpu_config),
    }
    if engine_tag is not None:
        identity["engine"] = engine_tag
    sampling_info = getattr(result, "sampling_info", None)
    if sampling_info is not None:
        # A sampled run is an *estimator*, not a simulation: its plan
        # joins the identity so sampled estimates get their own run_id
        # lineage and can never replay as full-run results (or vice
        # versa — full runs lack the block entirely).
        identity["sampling"] = dict(sampling_info.get("plan") or {})
    stats = result.sim.stats
    metrics = flatten_metrics(stats.as_dict())
    metrics["ipc"] = stats.ipc
    metrics["energy_pj"] = result.energy.total
    data: dict = {"engine_events": result.sim.engine_events}
    shard_info = getattr(result, "shard_info", None)
    if shard_info is not None and not shard_info.get("bit_exact"):
        # Only relaxed plans annotate: a lock-step run's record must stay
        # byte-comparable to (and filed under the same run_id as) serial.
        data["shard"] = dict(shard_info)
    if sampling_info is not None:
        # Full block (weights, representatives, error bars) rides in the
        # payload so diff can honour the estimate's uncertainty.
        data["sampling"] = dict(sampling_info)
    return _record(
        "run",
        f"{result.workload}|{result.config_name}",
        identity,
        metrics,
        data=data,
        stalls=stalls,
        wall_time_s=wall_time_s,
    )


def sweep_point_identity(
    workload: str,
    config: str,
    scale: float,
    provenance: Mapping[str, Any],
) -> dict:
    """Identity dict of one sweep point (shared by ingest and memo lookup).

    ``provenance`` is the per-point provenance stamp the sweep driver
    computes (scheduler, prefetcher, seed, config_hash); building the
    identity from it on both the write side (:func:`sweep_point_record`)
    and the read side (:func:`sweep_point_run_id`) guarantees a cache
    lookup hashes to exactly the id an earlier ingest stored under.

    A relaxed shard plan stamps ``provenance["engine"]`` (see
    :func:`run_record`); carrying it into the identity keeps drifted
    sweep results out of the serial memo lineage. A sampling plan stamps
    ``provenance["sampling"]`` the same way, so sampled sweep estimates
    never replay as full-run memo hits and vice versa.
    """
    identity = {
        "workload": workload,
        "config": config,
        "scheduler": provenance.get("scheduler", config),
        "prefetcher": provenance.get("prefetcher", "none"),
        "seed": provenance.get("seed", 0),
        "scale": scale,
        "gpu_config": provenance.get("config_hash", ""),
    }
    engine = provenance.get("engine")
    if engine:
        identity["engine"] = engine
    sampling = provenance.get("sampling")
    if sampling:
        identity["sampling"] = sampling
    return identity


def sweep_point_run_id(
    workload: str,
    config: str,
    scale: float,
    provenance: Mapping[str, Any],
) -> str:
    """The ``run_id`` a completed sweep point would be ingested under."""
    identity = {"kind": "run",
                **sweep_point_identity(workload, config, scale, provenance)}
    return content_hash(identity)


def sweep_point_record(record: Mapping[str, Any]) -> Optional[RunRecord]:
    """Registry record built from one completed sweep JSONL record.

    Returns None for failure records — a failed point has no metrics worth
    indexing (its diagnosis lives in the sweep store). The full JSONL
    record rides along in ``data["sweep_record"]`` so a later sweep can
    replay the point verbatim from the registry (run memoization) instead
    of re-simulating it.
    """
    if record.get("status") != "ok":
        return None
    provenance = record.get("provenance") or {}
    identity = sweep_point_identity(
        record["workload"], record["config"], record["scale"], provenance)
    metrics = flatten_metrics(record.get("stats") or {})
    for key in ("ipc", "energy_pj"):
        if isinstance(record.get(key), (int, float)):
            metrics[key] = float(record[key])
    return _record(
        "run",
        f"{record['workload']}|{record['config']}",
        identity,
        metrics,
        data={"sweep_key": record.get("key"),
              "engine_events": record.get("engine_events"),
              "sweep_record": dict(record),
              "sweep_record_sha256": record_sha256(record)},
        stalls=record.get("stalls"),
    )


def figure_record(name: str, payload: Any, scale: float,
                  apps: Optional[Sequence[str]] = None) -> RunRecord:
    """Registry record for one regenerated figure/table payload."""
    from repro.experiments.export import to_jsonable

    jsonable = to_jsonable(payload)
    identity = {
        "figure": name,
        "scale": scale,
        "apps": sorted(apps) if apps else None,
    }
    return _record(
        "figure", name, identity, flatten_metrics(jsonable),
        data={"figure": name, "payload": jsonable},
    )


def bench_record(payload: Mapping[str, Any]) -> RunRecord:
    """Registry record for one ``repro bench`` speed measurement.

    Speed is a property of the host as much as of the code, so the
    identity includes nothing host-specific — every bench run of the same
    point set at the same scale lands under one ``run_id`` and the history
    under that id is the perf trajectory. The serial-vs-sharded bench
    (``bench.shard_speed`` schema) gets its own lineage keyed on the
    engine matrix rather than the point set.
    """
    if str(payload.get("schema", "")).startswith("bench.shard_speed"):
        identity = {
            "bench": "shard_speed",
            "scale": payload.get("scale"),
            "config": payload.get("config"),
            "num_sms": payload.get("num_sms"),
            "epoch_cycles": payload.get("epoch_cycles"),
            "apps": list(payload.get("apps") or []),
        }
        metrics: dict = {}
        for label, eng in (payload.get("engines") or {}).items():
            totals = eng.get("totals") or {}
            metrics[f"{label}_cycles_per_s"] = totals.get("cycles_per_s", 0.0)
            if "speedup_vs_serial" in totals:
                metrics[f"{label}_speedup"] = totals["speedup_vs_serial"]
        return _record("bench", "shard_speed", identity, metrics,
                       data=dict(payload))
    if str(payload.get("schema", "")).startswith("bench.sampled_speed"):
        identity = {
            "bench": "sampled_speed",
            "scale": payload.get("scale"),
            "config": payload.get("config"),
            "plan": payload.get("plan"),
            "apps": list(payload.get("apps") or []),
        }
        metrics = {}
        for key, cell in (payload.get("workloads") or {}).items():
            metrics[f"{key}_ipc_err_pct"] = cell.get("ipc_err_pct", 0.0)
            metrics[f"{key}_cycle_reduction"] = cell.get(
                "cycle_reduction", 0.0)
        totals = payload.get("totals") or {}
        for name in ("max_ipc_err_pct", "min_cycle_reduction",
                     "overall_cycle_reduction", "sampled_speedup_warm"):
            if name in totals:
                metrics[name] = totals[name]
        return _record("bench", "sampled_speed", identity, metrics,
                       data=dict(payload))
    if str(payload.get("schema", "")).startswith("bench.telemetry_overhead"):
        identity = {
            "bench": "telemetry_overhead",
            "scale": payload.get("scale"),
            "workload": payload.get("workload"),
            "config": payload.get("config"),
            "num_sms": payload.get("num_sms"),
            "window": payload.get("window"),
        }
        metrics = {}
        for mode, cells in (payload.get("modes") or {}).items():
            for label, cell in (cells or {}).items():
                metrics[f"{mode}_{label}_wall_s"] = cell.get("wall_s", 0.0)
                metrics[f"{mode}_{label}_overhead_pct"] = cell.get(
                    "overhead_pct_vs_off", 0.0)
        return _record("bench", "telemetry_overhead", identity, metrics,
                       data=dict(payload))
    identity = {
        "bench": "sim_speed",
        "scale": payload.get("scale"),
        "points": [[p.get("workload"), p.get("config")]
                   for p in payload.get("points") or []],
    }
    return _record(
        "bench", "sim_speed", identity,
        flatten_metrics(payload.get("totals") or {}),
        data=dict(payload),
    )


def scorecard_record(payload: Mapping[str, Any]) -> RunRecord:
    """Registry record for one scorecard evaluation."""
    identity = {
        "scale": payload.get("scale"),
        "apps": payload.get("apps"),
        "figures": sorted(payload.get("figures") or {}),
    }
    return _record(
        "scorecard", "scorecard", identity,
        flatten_metrics(payload.get("figures") or {}),
        data=dict(payload),
    )
