"""Paper-fidelity scorecard: quantified error vs the paper's numbers.

For each reproduced figure, the scorecard aligns the measured per-app
series against the paper's golden series
(:mod:`repro.experiments.paper_data`) and computes three complementary
fidelity metrics per configuration series:

* **MAPE** (mean absolute percentage error) — how far individual bars
  are from the paper's, in percent;
* **geomean delta** — measured geomean minus golden geomean, i.e. whether
  the *headline average* of the figure is reproduced (sign included: a
  negative delta on a speedup figure means the reproduction is slower
  than the paper claims);
* **Spearman rank correlation** — whether the per-app *ordering* (which
  app wins, which loses) transfers, independent of magnitude. This is the
  metric the reproduction is actually judged on (see EXPERIMENTS.md:
  magnitudes compress on this substrate by design, orderings must not).

``python -m repro scorecard`` surfaces the result as text and JSON; the
JSON is what CI's ``bench-regression`` job diffs against the committed
``bench_results/baseline_scorecard.json``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional, Sequence

from repro.experiments import paper_data

#: Scorecard schema version (bump on incompatible payload changes).
SCORECARD_SCHEMA = 1

#: The figures scored by default: the paper's evaluation headline.
DEFAULT_SCORECARD_FIGURES = (
    "figure10", "figure11", "figure12", "figure13", "figure14", "figure15",
)

#: Aggregate keys the producers append to per-app grids; never scored.
_AGGREGATE_KEYS = ("GMEAN", "GMEAN-MEM", "MEAN")


# ----------------------------------------------------------------------
# Fidelity metrics (dependency-free, hand-checkable)
# ----------------------------------------------------------------------


def geomean(values: Sequence[float]) -> float:
    """Geometric mean of the positive values; 0 for empty input."""
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def mape(golden: Sequence[float], measured: Sequence[float]) -> Optional[float]:
    """Mean absolute percentage error, in percent (None: nothing to score)."""
    if len(golden) != len(measured):
        raise ValueError("mape needs series of equal length")
    terms = [
        abs(m - g) / abs(g)
        for g, m in zip(golden, measured)
        if g != 0
    ]
    if not terms:
        return None
    return 100.0 * sum(terms) / len(terms)


def _ranks(values: Sequence[float]) -> list[float]:
    """Average ranks (1-based), ties sharing the mean of their positions."""
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    i = 0
    while i < len(order):
        j = i
        while j + 1 < len(order) and values[order[j + 1]] == values[order[i]]:
            j += 1
        avg_rank = (i + j) / 2.0 + 1.0
        for k in range(i, j + 1):
            ranks[order[k]] = avg_rank
        i = j + 1
    return ranks


def spearman(xs: Sequence[float], ys: Sequence[float]) -> Optional[float]:
    """Spearman rank correlation (ties via average ranks; None if undefined).

    Computed as the Pearson correlation of the rank vectors, so tied
    values are handled exactly. Undefined (None) for fewer than 3 pairs or
    when either side has zero rank variance.
    """
    if len(xs) != len(ys):
        raise ValueError("spearman needs series of equal length")
    n = len(xs)
    if n < 3:
        return None
    rx, ry = _ranks(xs), _ranks(ys)
    mean_x = sum(rx) / n
    mean_y = sum(ry) / n
    cov = sum((a - mean_x) * (b - mean_y) for a, b in zip(rx, ry))
    var_x = sum((a - mean_x) ** 2 for a in rx)
    var_y = sum((b - mean_y) ** 2 for b in ry)
    if var_x == 0 or var_y == 0:
        return None
    return cov / math.sqrt(var_x * var_y)


# ----------------------------------------------------------------------
# Measured-data extraction: producer output -> golden grid shape
# ----------------------------------------------------------------------


def _extract_grid(data: Mapping[str, Mapping[str, float]]
                  ) -> dict[str, dict[str, float]]:
    """Drop aggregate keys from a {config: {app: value}} producer grid."""
    return {
        str(series): {
            str(app): float(value)
            for app, value in per_app.items()
            if str(app) not in _AGGREGATE_KEYS
        }
        for series, per_app in data.items()
    }


def _extract_figure2(data: Mapping[str, Mapping[str, Any]]
                     ) -> dict[str, dict[str, float]]:
    """Per-app speedup of the idealised 32 MB L1 (the "C" bar)."""
    return {
        "large-l1-speedup": {
            app: float(variants["C"].speedup) for app, variants in data.items()
        }
    }


def _extract_figure11(data: Mapping[str, Mapping[str, Any]]
                      ) -> dict[str, dict[str, float]]:
    """Hit ratio (both hit segments) of the golden-scored bars (B, A)."""
    out: dict[str, dict[str, float]] = {}
    for app, per_config in data.items():
        for label, row in per_config.items():
            if label in paper_data.FIG11:
                out.setdefault(label, {})[app] = float(row.hit_ratio)
    return out


def _extract_table1(data: Mapping[str, Sequence[Any]]
                    ) -> dict[str, dict[str, float]]:
    """Miss rate and lines-per-ref of each app's dominant load."""
    miss: dict[str, float] = {}
    lpr: dict[str, float] = {}
    for app, rows in data.items():
        if not rows:
            continue
        top = rows[0]  # rows are ordered by reference share
        miss[app] = float(top.miss_rate)
        lpr[app] = float(top.lines_per_ref)
    return {"miss-rate": miss, "lines-per-ref": lpr}


def _extract_table2(cost: Any) -> dict[str, dict[str, float]]:
    return {
        "bytes": {
            "llt": float(cost.llt_bytes),
            "wgt": float(cost.wgt_bytes),
            "drq": float(cost.drq_bytes),
            "wq": float(cost.wq_bytes),
            "pt": float(cost.pt_bytes),
            "total": float(cost.total_bytes),
        }
    }


_EXTRACTORS: dict[str, Callable[[Any], dict[str, dict[str, float]]]] = {
    "grid": _extract_grid,
    "figure2": _extract_figure2,
    "figure11": _extract_figure11,
    "table1": _extract_table1,
    "table2": _extract_table2,
}


def measured_grid(figure: str, apps: Optional[Sequence[str]] = None,
                  scale: float = 0.5) -> dict[str, dict[str, float]]:
    """Run the figure's producer and reduce its output to the golden shape."""
    from repro.experiments import figures as figures_mod

    spec = paper_data.SCORECARD.get(figure)
    if spec is None:
        known = ", ".join(sorted(paper_data.SCORECARD))
        raise ValueError(f"unknown scorecard figure {figure!r}; known: {known}")
    producer = getattr(figures_mod, figure)
    if figure == "table2":
        raw = producer()
    elif figure == "table1":
        app_list = [a for a in (apps or paper_data.PAPER_MEMORY_APPS)
                    if a in paper_data.PAPER_MEMORY_APPS]
        raw = producer(apps=app_list or None, scale=scale)
    else:
        raw = producer(apps=apps, scale=scale)
    return _EXTRACTORS[spec["kind"]](raw)


# ----------------------------------------------------------------------
# Scoring
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SeriesScore:
    """Fidelity of one configuration series of one figure."""

    figure: str
    series: str
    n_apps: int
    mape_pct: Optional[float]
    geomean_measured: float
    geomean_golden: float
    geomean_delta: float
    spearman: Optional[float]
    per_app: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "n_apps": self.n_apps,
            "mape_pct": self.mape_pct,
            "geomean_measured": self.geomean_measured,
            "geomean_golden": self.geomean_golden,
            "geomean_delta": self.geomean_delta,
            "spearman": self.spearman,
            "per_app": self.per_app,
        }


@dataclass(frozen=True)
class FigureScore:
    """Fidelity of one figure: per-series scores plus figure aggregates."""

    figure: str
    series: tuple[SeriesScore, ...]

    @property
    def mape_pct(self) -> Optional[float]:
        vals = [s.mape_pct for s in self.series if s.mape_pct is not None]
        return sum(vals) / len(vals) if vals else None

    @property
    def geomean_delta(self) -> Optional[float]:
        if not self.series:
            return None
        return sum(s.geomean_delta for s in self.series) / len(self.series)

    @property
    def spearman(self) -> Optional[float]:
        vals = [s.spearman for s in self.series if s.spearman is not None]
        return sum(vals) / len(vals) if vals else None

    def as_dict(self) -> dict:
        return {
            "mape_pct": self.mape_pct,
            "geomean_delta": self.geomean_delta,
            "spearman": self.spearman,
            "series": {s.series: s.as_dict() for s in self.series},
        }


def score_series(figure: str, series: str, golden: Mapping[str, float],
                 measured: Mapping[str, float]) -> SeriesScore:
    """Score one measured series against its golden twin (shared keys only)."""
    shared = sorted(set(golden) & set(measured))
    gold = [float(golden[k]) for k in shared]
    meas = [float(measured[k]) for k in shared]
    gm_g = geomean(gold)
    gm_m = geomean(meas)
    return SeriesScore(
        figure=figure,
        series=series,
        n_apps=len(shared),
        mape_pct=mape(gold, meas) if shared else None,
        geomean_measured=gm_m,
        geomean_golden=gm_g,
        geomean_delta=gm_m - gm_g,
        spearman=spearman(gold, meas) if shared else None,
        per_app={k: {"golden": g, "measured": m}
                 for k, g, m in zip(shared, gold, meas)},
    )


def score_figure(figure: str, apps: Optional[Sequence[str]] = None,
                 scale: float = 0.5,
                 measured: Optional[Mapping[str, Mapping[str, float]]] = None,
                 ) -> FigureScore:
    """Score one figure; ``measured`` overrides running the producer."""
    golden = paper_data.GOLDEN[figure]
    if measured is None:
        measured = measured_grid(figure, apps=apps, scale=scale)
    scores = tuple(
        score_series(figure, series, golden[series], measured[series])
        for series in golden
        if series in measured
    )
    return FigureScore(figure=figure, series=scores)


def scorecard(figures: Optional[Sequence[str]] = None,
              apps: Optional[Sequence[str]] = None,
              scale: float = 0.5,
              measured: Optional[Mapping[str, Mapping[str, Mapping[str, float]]]]
              = None) -> dict:
    """Full scorecard payload (JSON-ready).

    ``measured`` optionally maps figure name -> pre-extracted grid (e.g.
    from stored registry figure records); anything absent is produced by
    running the simulations (memoised process-wide).
    """
    names = list(figures or DEFAULT_SCORECARD_FIGURES)
    for name in names:
        if name not in paper_data.GOLDEN:
            known = ", ".join(sorted(paper_data.GOLDEN))
            raise ValueError(f"unknown scorecard figure {name!r}; known: {known}")
    figure_payload: dict[str, dict] = {}
    for name in names:
        pre = measured.get(name) if measured else None
        figure_payload[name] = score_figure(
            name, apps=apps, scale=scale, measured=pre
        ).as_dict()
    mapes = [f["mape_pct"] for f in figure_payload.values()
             if f["mape_pct"] is not None]
    spears = [f["spearman"] for f in figure_payload.values()
              if f["spearman"] is not None]
    deltas = [f["geomean_delta"] for f in figure_payload.values()
              if f["geomean_delta"] is not None]
    return {
        "schema": SCORECARD_SCHEMA,
        "scale": scale,
        "apps": sorted(apps) if apps else None,
        "figures": figure_payload,
        "summary": {
            "mean_mape_pct": sum(mapes) / len(mapes) if mapes else None,
            "mean_abs_geomean_delta":
                sum(abs(d) for d in deltas) / len(deltas) if deltas else None,
            "mean_spearman": sum(spears) / len(spears) if spears else None,
        },
    }


def format_scorecard(payload: Mapping[str, Any]) -> str:
    """Human-readable scorecard table."""
    from repro.experiments.report import format_table

    rows = []
    for figure, score in payload["figures"].items():
        for series, s in score["series"].items():
            rows.append([
                figure,
                series,
                s["n_apps"],
                "-" if s["mape_pct"] is None else f"{s['mape_pct']:.1f}%",
                f"{s['geomean_measured']:.3f}",
                f"{s['geomean_golden']:.3f}",
                f"{s['geomean_delta']:+.3f}",
                "-" if s["spearman"] is None else f"{s['spearman']:+.2f}",
            ])
    summary = payload["summary"]
    title = (
        f"Paper-fidelity scorecard (scale={payload['scale']}"
        + (f", apps={','.join(payload['apps'])}" if payload.get("apps") else "")
        + ")"
    )
    table = format_table(
        ["Figure", "Series", "N", "MAPE", "GM meas", "GM paper", "GM delta",
         "Spearman"],
        rows, title=title,
    )
    footer = []
    if summary.get("mean_mape_pct") is not None:
        footer.append(f"mean MAPE {summary['mean_mape_pct']:.1f}%")
    if summary.get("mean_abs_geomean_delta") is not None:
        footer.append(
            f"mean |geomean delta| {summary['mean_abs_geomean_delta']:.3f}")
    if summary.get("mean_spearman") is not None:
        footer.append(f"mean Spearman {summary['mean_spearman']:+.2f}")
    if footer:
        table += "\n" + " | ".join(footer)
    return table
