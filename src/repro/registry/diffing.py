"""Tolerance-checked metric diffs between any two registry payloads.

The diff engine is deliberately schema-free: both sides are flattened to
``dotted.key -> number`` (:func:`repro.registry.records.flatten_metrics`)
and compared key-by-key under an absolute + relative tolerance, so the
same machinery diffs two simulation runs (per-counter), two figure
records (per-bar) or two scorecards (per-fidelity-metric). A key outside
tolerance fails the diff — that is the CI regression gate.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

#: Default relative tolerance for ``repro diff``.
DEFAULT_RTOL = 0.05
#: Default absolute tolerance (floors the relative band near zero).
DEFAULT_ATOL = 1e-9


@dataclass(frozen=True)
class DiffRow:
    """One compared metric."""

    key: str
    a: float
    b: float
    rtol: float
    atol: float
    #: Absolute error-bar allowance. Non-zero when at least one side is a
    #: sampled estimate: a point estimate within its reported bar is not
    #: a regression, it is the estimator's stated uncertainty.
    bar: float = 0.0

    @property
    def abs_delta(self) -> float:
        return self.b - self.a

    @property
    def rel_delta(self) -> Optional[float]:
        if self.a == 0:
            return None
        return (self.b - self.a) / abs(self.a)

    @property
    def ok(self) -> bool:
        return abs(self.b - self.a) <= (
            self.atol + self.bar + self.rtol * abs(self.a))

    def as_dict(self) -> dict:
        return {
            "key": self.key,
            "a": self.a,
            "b": self.b,
            "abs_delta": self.abs_delta,
            "rel_delta": self.rel_delta,
            "rtol": self.rtol,
            "atol": self.atol,
            "bar": self.bar,
            "ok": self.ok,
        }


@dataclass
class DiffReport:
    """Outcome of one metric diff."""

    rows: list[DiffRow] = field(default_factory=list)
    only_in_a: list[str] = field(default_factory=list)
    only_in_b: list[str] = field(default_factory=list)
    label_a: str = "a"
    label_b: str = "b"

    @property
    def failed(self) -> list[DiffRow]:
        return [row for row in self.rows if not row.ok]

    @property
    def ok(self) -> bool:
        return not self.failed

    def as_dict(self) -> dict:
        return {
            "a": self.label_a,
            "b": self.label_b,
            "compared": len(self.rows),
            "failed": [row.as_dict() for row in self.failed],
            "only_in_a": self.only_in_a,
            "only_in_b": self.only_in_b,
            "ok": self.ok,
        }


def _tolerance_for(key: str, rtol: float,
                   overrides: Mapping[str, float]) -> float:
    """Per-key rtol: the first glob pattern that matches wins."""
    for pattern, value in overrides.items():
        if fnmatch.fnmatchcase(key, pattern):
            return value
    return rtol


def diff_metrics(
    a: Mapping[str, float],
    b: Mapping[str, float],
    *,
    rtol: float = DEFAULT_RTOL,
    atol: float = DEFAULT_ATOL,
    overrides: Optional[Mapping[str, float]] = None,
    ignore: Sequence[str] = (),
    label_a: str = "a",
    label_b: str = "b",
    bars: Optional[Mapping[str, float]] = None,
) -> DiffReport:
    """Compare two flat metric dicts under tolerances.

    ``overrides`` maps glob patterns to per-key relative tolerances (e.g.
    ``{"figure10.*.spearman": 0.2}``); ``ignore`` lists glob patterns to
    skip entirely. Keys present on only one side are reported but do not
    fail the diff — a removed counter is visible in the report, while the
    gate stays focused on value drift.

    ``bars`` maps metric keys to absolute error-bar allowances (sampled
    records report these — see :mod:`repro.sampling`); a key's band
    widens to ``atol + bar + rtol * |a|``, so a sampled point estimate
    only fails when it disagrees *beyond its own stated uncertainty*.
    """
    report = DiffReport(label_a=label_a, label_b=label_b)
    keys_a = set(a)
    keys_b = set(b)

    def ignored(key: str) -> bool:
        return any(fnmatch.fnmatchcase(key, pattern) for pattern in ignore)

    for key in sorted(keys_a & keys_b):
        if ignored(key):
            continue
        report.rows.append(DiffRow(
            key=key,
            a=float(a[key]),
            b=float(b[key]),
            rtol=_tolerance_for(key, rtol, overrides or {}),
            atol=atol,
            bar=float((bars or {}).get(key, 0.0)),
        ))
    report.only_in_a = sorted(k for k in keys_a - keys_b if not ignored(k))
    report.only_in_b = sorted(k for k in keys_b - keys_a if not ignored(k))
    return report


def format_diff(report: DiffReport, max_rows: int = 40) -> str:
    """Human-readable diff report (failures first)."""
    from repro.experiments.report import format_table

    lines = [
        f"diff: {report.label_a}  vs  {report.label_b}",
        f"compared {len(report.rows)} shared metrics; "
        f"{len(report.failed)} outside tolerance",
    ]
    failed = report.failed
    if failed:
        rows = [
            [
                row.key,
                f"{row.a:.6g}",
                f"{row.b:.6g}",
                f"{row.abs_delta:+.6g}",
                "-" if row.rel_delta is None else f"{100 * row.rel_delta:+.2f}%",
                f"{row.rtol:g}" + (f" (+bar {row.bar:g})" if row.bar else ""),
            ]
            for row in failed[:max_rows]
        ]
        lines.append(format_table(
            ["Metric", report.label_a, report.label_b, "Delta", "Rel", "rtol"],
            rows, title="Out of tolerance",
        ))
        if len(failed) > max_rows:
            lines.append(f"... and {len(failed) - max_rows} more")
    if report.only_in_a:
        lines.append(f"only in {report.label_a}: "
                     + ", ".join(report.only_in_a[:10])
                     + (" ..." if len(report.only_in_a) > 10 else ""))
    if report.only_in_b:
        lines.append(f"only in {report.label_b}: "
                     + ", ".join(report.only_in_b[:10])
                     + (" ..." if len(report.only_in_b) > 10 else ""))
    lines.append("PASS" if report.ok else "FAIL")
    return "\n".join(lines)
