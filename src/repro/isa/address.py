"""Per-lane address generation for memory instructions.

Address generators are the knob that lets synthetic workloads reproduce the
per-static-load behaviour of Table I in the paper: broadcast loads give the
high-locality (#L/#R near 0) class, strided loads give the large-footprint
striding class, and irregular loads give the graph-style access patterns of
BFS/MUM.

All generators are deterministic functions of ``(warp, iteration, lane)``;
re-running a simulation reproduces the exact same address stream.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.config import WARP_SIZE


def _mix64(x: int) -> int:
    """SplitMix64 finaliser: a cheap, stateless, well-distributed integer hash."""
    x = (x + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return x ^ (x >> 31)


def _contiguous_lines(
    start: int, lanes: int, element_bytes: int, line_size: int
) -> tuple[int, list[int]]:
    """Coalesce an ascending per-lane run starting at ``start`` directly.

    With ``element_bytes <= line_size`` the lanes cover every line between
    the first and last address, so the line list is just an aligned range
    — no per-lane list needs to be built.
    """
    if element_bytes <= line_size:
        first = start - start % line_size
        last_addr = start + (lanes - 1) * element_bytes
        last = last_addr - last_addr % line_size
        return start, list(range(first, last + line_size, line_size))
    return start, list(
        dict.fromkeys(
            (start + lane * element_bytes) // line_size * line_size
            for lane in range(lanes)
        )
    )


class AddressGenerator(abc.ABC):
    """Maps ``(global warp id, iteration)`` to per-lane byte addresses."""

    @abc.abstractmethod
    def addresses(self, warp: int, iteration: int) -> list[int]:
        """Return one byte address per lane for this dynamic instance."""

    def primary_address(self, warp: int, iteration: int) -> int:
        """Address requested by the lowest thread ID (what SAP's DRQ stores)."""
        return self.addresses(warp, iteration)[0]

    def coalesced(self, warp: int, iteration: int, line_size: int) -> tuple[int, list[int]]:
        """``(primary address, unique line addresses)`` for this instance.

        Equivalent to coalescing :meth:`addresses`, but overridable so
        generators with known structure can skip materialising the
        per-lane list on the issue hot path. The line order must match
        :func:`repro.mem.coalescer.coalesce` on the per-lane stream
        (lowest lane's segment first).
        """
        addrs = self.addresses(warp, iteration)
        return addrs[0], list(
            dict.fromkeys(a - a % line_size for a in addrs)
        )


@dataclass(frozen=True)
class BroadcastAddress(AddressGenerator):
    """All lanes of all warps read the same (small) region.

    Models the high-locality load class: a per-iteration scalar or small
    table shared across warps. ``region_bytes`` bounds the footprint; the
    address advances by ``element_bytes`` per iteration and wraps.
    """

    base: int
    region_bytes: int = 4096
    element_bytes: int = 4
    lanes: int = WARP_SIZE

    def addresses(self, warp: int, iteration: int) -> list[int]:
        addr = self.base + (iteration * self.element_bytes) % self.region_bytes
        return [addr] * self.lanes

    def primary_address(self, warp: int, iteration: int) -> int:
        return self.base + (iteration * self.element_bytes) % self.region_bytes

    def coalesced(self, warp: int, iteration: int, line_size: int) -> tuple[int, list[int]]:
        addr = self.base + (iteration * self.element_bytes) % self.region_bytes
        return addr, [addr - addr % line_size]


@dataclass(frozen=True)
class StridedAddress(AddressGenerator):
    """Array indexed by thread ID: the dominant GPU access pattern.

    ``addr(lane) = base + warp*warp_stride + iteration*iter_stride +
    lane*element_bytes``, wrapped inside ``footprint_bytes``. With 4-byte
    elements a warp's 32 lanes cover exactly one 128-byte line, so the load
    coalesces to a single request and the *inter-warp* stride seen by a
    PC-indexed prefetcher is ``warp_stride`` — the quantity Table I reports.

    ``wrap_bytes`` (if set) wraps the *iteration* component so each warp
    re-walks a private region of that size — the KMeans pattern where every
    thread repeatedly traverses its own points.
    """

    base: int
    warp_stride: int
    iter_stride: int = 0
    element_bytes: int = 4
    footprint_bytes: int = 1 << 40
    wrap_bytes: int = 0
    lanes: int = WARP_SIZE

    def addresses(self, warp: int, iteration: int) -> list[int]:
        start = self._start(warp, iteration)
        return [start + lane * self.element_bytes for lane in range(self.lanes)]

    def primary_address(self, warp: int, iteration: int) -> int:
        return self._start(warp, iteration)

    def coalesced(self, warp: int, iteration: int, line_size: int) -> tuple[int, list[int]]:
        return _contiguous_lines(
            self._start(warp, iteration), self.lanes, self.element_bytes,
            line_size,
        )

    def _start(self, warp: int, iteration: int) -> int:
        iter_off = iteration * self.iter_stride
        if self.wrap_bytes:
            iter_off %= self.wrap_bytes
        offset = warp * self.warp_stride + iter_off
        return self.base + offset % self.footprint_bytes


@dataclass(frozen=True)
class IrregularAddress(AddressGenerator):
    """Data-dependent gather over a footprint with a shared hot set.

    Models graph workloads (BFS, MUM): each lane hashes to a pseudo-random
    element. With probability ``hot_fraction`` the access falls in a small
    persistent hot region of ``hot_bytes`` — the paper's high-locality
    class, loads that "access only a small range of memory space"
    (Section I). Remaining accesses are cold gathers over
    ``footprint_bytes``. ``lines_per_warp`` throttles divergence: lanes
    are binned so a warp touches at most that many distinct lines.

    With ``private_block_bytes`` set, each warp's hot accesses stay inside
    its own block of that size — *intra-warp* locality, the reuse class
    CCWS's victim tags detect and throttling recovers. Otherwise the hot
    region is shared by all warps (inter-warp locality).
    """

    base: int
    footprint_bytes: int
    hot_bytes: int = 8192
    hot_fraction: float = 0.5
    lines_per_warp: int = 4
    private_block_bytes: int = 0
    seed: int = 1
    element_bytes: int = 4
    lanes: int = WARP_SIZE

    def addresses(self, warp: int, iteration: int) -> list[int]:
        # Lanes sharing a bucket hash identically, so one address per
        # bucket suffices (``lines_per_warp`` of them, not ``lanes``).
        out: list[int] = []
        last_bucket = -1
        addr = 0
        for lane in range(self.lanes):
            bucket = lane * self.lines_per_warp // self.lanes
            if bucket != last_bucket:
                addr = self._bucket_address(warp, iteration, bucket)
                last_bucket = bucket
            out.append(addr)
        return out

    def primary_address(self, warp: int, iteration: int) -> int:
        return self._bucket_address(warp, iteration, 0)

    def coalesced(self, warp: int, iteration: int, line_size: int) -> tuple[int, list[int]]:
        primary: int = 0
        lines: dict[int, None] = {}
        lanes = self.lanes
        lpw = self.lines_per_warp
        last_bucket = -1
        for lane in range(lanes):
            bucket = lane * lpw // lanes
            if bucket == last_bucket:
                continue
            last_bucket = bucket
            addr = self._bucket_address(warp, iteration, bucket)
            if bucket == 0:
                primary = addr
            lines[addr - addr % line_size] = None
        return primary, list(lines)

    def _bucket_address(self, warp: int, iteration: int, bucket: int) -> int:
        hot_cut = int(self.hot_fraction * 256)
        h = _mix64((self.seed << 48) ^ (warp << 28) ^ (iteration << 8) ^ bucket)
        if (h & 0xFF) < hot_cut:
            if self.private_block_bytes:
                block = self.private_block_bytes
                elem = (h >> 8) % max(1, block // self.element_bytes)
                return self.base + warp * block + elem * self.element_bytes
            elem = (h >> 8) % max(1, self.hot_bytes // self.element_bytes)
        else:
            elem = (h >> 8) % max(1, self.footprint_bytes // self.element_bytes)
        return self.base + elem * self.element_bytes


@dataclass(frozen=True)
class IndirectAddress(AddressGenerator):
    """Strided walk whose target is permuted within a window.

    Models index-array-driven accesses (SPMV rows): mostly streaming but
    with short-range shuffling, which defeats naive next-line prefetching
    while keeping a dominant inter-warp stride.
    """

    base: int
    warp_stride: int
    window_bytes: int = 2048
    iter_stride: int = 0
    footprint_bytes: int = 1 << 40
    seed: int = 1
    element_bytes: int = 4
    lanes: int = WARP_SIZE

    def addresses(self, warp: int, iteration: int) -> list[int]:
        start = self._start(warp, iteration)
        return [start + lane * self.element_bytes for lane in range(self.lanes)]

    def primary_address(self, warp: int, iteration: int) -> int:
        return self._start(warp, iteration)

    def coalesced(self, warp: int, iteration: int, line_size: int) -> tuple[int, list[int]]:
        return _contiguous_lines(
            self._start(warp, iteration), self.lanes, self.element_bytes,
            line_size,
        )

    def _start(self, warp: int, iteration: int) -> int:
        offset = warp * self.warp_stride + iteration * self.iter_stride
        jitter = _mix64((self.seed << 40) ^ (warp << 20) ^ iteration) % self.window_bytes
        jitter -= self.window_bytes // 2
        raw = offset + jitter
        return self.base + raw % self.footprint_bytes
