"""Instruction representation.

The simulator models three instruction classes: arithmetic (``ALU``),
global-memory loads (``LOAD``) and global-memory stores (``STORE``).
Each instruction carries the static PC the paper's tables key on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.isa.address import AddressGenerator


class Op(enum.Enum):
    """Instruction class."""

    ALU = "alu"
    LOAD = "load"
    STORE = "store"


@dataclass(frozen=True)
class Instr:
    """One static instruction of a warp program.

    Attributes:
        op: Instruction class.
        pc: Static program counter (bytes); identifies the load in every
            APRES/prefetcher table.
        addr_gen: Address generator for memory instructions, ``None`` for ALU.
        label: Optional human-readable name used in characterisation output.
    """

    op: Op
    pc: int
    addr_gen: Optional[AddressGenerator] = None
    label: str = ""

    def __post_init__(self) -> None:
        if self.op is Op.ALU and self.addr_gen is not None:
            raise ValueError("ALU instructions take no address generator")
        if self.op in (Op.LOAD, Op.STORE) and self.addr_gen is None:
            raise ValueError(f"{self.op.value} instruction at pc={self.pc:#x} needs an address generator")

    @property
    def is_mem(self) -> bool:
        return self.op is not Op.ALU


def alu(pc: int) -> Instr:
    """Build an arithmetic instruction."""
    return Instr(Op.ALU, pc)


def load(pc: int, addr_gen: AddressGenerator, label: str = "") -> Instr:
    """Build a global-memory load."""
    return Instr(Op.LOAD, pc, addr_gen, label)


def store(pc: int, addr_gen: AddressGenerator, label: str = "") -> Instr:
    """Build a global-memory store."""
    return Instr(Op.STORE, pc, addr_gen, label)
