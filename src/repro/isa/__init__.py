"""Minimal SIMT instruction set used by the simulator.

A kernel is the same looped program executed by every warp (SIMT); loads
compute per-lane byte addresses from ``(global warp id, iteration, lane)``
through pluggable address generators.
"""

from repro.isa.address import (
    AddressGenerator,
    BroadcastAddress,
    IndirectAddress,
    IrregularAddress,
    StridedAddress,
)
from repro.isa.instructions import Instr, Op, alu, load, store
from repro.isa.program import KernelSpec

__all__ = [
    "AddressGenerator",
    "BroadcastAddress",
    "IndirectAddress",
    "IrregularAddress",
    "StridedAddress",
    "Instr",
    "KernelSpec",
    "Op",
    "alu",
    "load",
    "store",
]
