"""Warp programs and kernel specifications."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.isa.instructions import Instr, Op


@dataclass(frozen=True)
class KernelSpec:
    """A SIMT kernel: every warp runs ``body`` for ``iterations`` loops.

    Attributes:
        name: Kernel identifier (used in reports).
        body: Static instruction sequence of one loop iteration.
        iterations: Loop trip count (same for every warp).
        waves: Thread blocks executed per warp slot. When a warp finishes,
            its slot is refilled with the next wave's warp, modelling the
            block scheduler's occupancy refill — without it, greedy
            schedulers pay an artificial serial tail.
        fresh_waves: True when every wave processes fresh data (streaming
            kernels: refilled warps get new global IDs); False when waves
            re-walk the same data (iterative kernels such as KMeans, whose
            outer loop re-reads the same points).
    """

    name: str
    body: tuple[Instr, ...]
    iterations: int
    waves: int
    fresh_waves: bool

    def __init__(
        self,
        name: str,
        body: list[Instr] | tuple[Instr, ...],
        iterations: int,
        waves: int = 1,
        fresh_waves: bool = True,
    ):
        if iterations < 1:
            raise WorkloadError(f"kernel {name!r}: iterations must be >= 1")
        if waves < 1:
            raise WorkloadError(f"kernel {name!r}: waves must be >= 1")
        if not body:
            raise WorkloadError(f"kernel {name!r}: empty body")
        # The same PC may appear several times: that models an inner loop
        # re-executing one static load multiple times per outer iteration.
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "body", tuple(body))
        object.__setattr__(self, "iterations", iterations)
        object.__setattr__(self, "waves", waves)
        object.__setattr__(self, "fresh_waves", fresh_waves)

    @property
    def loads(self) -> tuple[Instr, ...]:
        """Static load instructions (unique PCs), in program order."""
        seen: set[int] = set()
        out = []
        for i in self.body:
            if i.op is Op.LOAD and i.pc not in seen:
                seen.add(i.pc)
                out.append(i)
        return tuple(out)

    @property
    def instructions_per_warp(self) -> int:
        """Dynamic warp-instruction count for one warp slot (all waves)."""
        return len(self.body) * self.iterations * self.waves

    def scaled(self, factor: float) -> "KernelSpec":
        """Return a copy with the trip count scaled by ``factor`` (min 1)."""
        return KernelSpec(
            self.name,
            self.body,
            max(1, round(self.iterations * factor)),
            self.waves,
            self.fresh_waves,
        )
